#!/usr/bin/env python3
"""Quickstart: analyze the paper's motivating example (Figure 1).

The program reads two servlet parameters, pushes them through a map,
invokes a method reflectively, wraps results in carrier objects, and
prints three of them — only one of which is actually tainted.  A precise
analysis reports exactly that one.

Run:  python examples/quickstart.py
"""

from repro import TAJ, TAJConfig
from repro.bench.micro import MOTIVATING
from repro.reporting import render_text


def main() -> None:
    taj = TAJ(TAJConfig.hybrid_unbounded())
    result = taj.analyze_sources([MOTIVATING])

    print(render_text(result.report, title="TAJ on the motivating "
                                           "program (paper Figure 1)"))
    print()
    print(f"analysis phases (s): modeling={result.times.modeling:.3f} "
          f"pointer={result.times.pointer_analysis:.3f} "
          f"sdg={result.times.sdg:.3f} taint={result.times.taint:.3f}")
    print(f"call-graph nodes: {result.cg_nodes}, "
          f"reflective calls resolved: "
          f"{result.stats['reflective_calls_resolved']}, "
          f"dictionary accesses modeled: "
          f"{result.stats['dictionary_accesses']}")

    assert result.issues == 1, "expected exactly the one BAD println"
    issue = result.report.issues[0]
    print()
    print("=> the single issue is the `writer.println(i1)` call: the")
    print("   Internal object is a taint carrier holding the fName")
    print("   parameter; the sanitized (i2) and untainted (i3) calls")
    print("   are correctly rejected.")
    print(f"   remediation: {issue.remediation} at {issue.lcp}")


if __name__ == "__main__":
    main()

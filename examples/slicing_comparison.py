#!/usr/bin/env python3
"""Compare the three thin-slicing strategies on programs that tell them
apart (paper §3.2 and §7).

Three probe programs:

1. the motivating example (Figure 1) — context-insensitive slicing
   cannot disambiguate the three reflective calls;
2. a cross-thread flow — CS thin slicing's heap threading misses it
   (the paper's unsoundness on multithreaded applications);
3. a cross-entrypoint heap flow — hybrid/CI's flow-insensitive heap
   reports it, CS's call-structure threading does not.

Run:  python examples/slicing_comparison.py
"""

from repro import TAJ, TAJConfig
from repro.bench.micro import MICRO_CASES, MOTIVATING

CROSS_ENTRY = """
class SharedRegistry {
  static String slot;
}
class StoreServlet extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    SharedRegistry.slot = req.getParameter("p");
  }
}
class RenderServlet extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(SharedRegistry.slot);
  }
}
"""

PROBES = [
    ("Figure 1 (reflection + containers + carrier)", MOTIVATING, None),
    ("cross-thread flow", MICRO_CASES["thread_flow"][0], None),
    ("cross-entrypoint heap flow", CROSS_ENTRY, None),
]

CONFIGS = [
    ("hybrid", TAJConfig.hybrid_unbounded),
    ("cs", lambda: TAJConfig.cs(max_state_units=None)),
    ("ci", TAJConfig.ci),
]


def main() -> None:
    header = f"{'probe':<44}" + "".join(f"{name:>9}"
                                        for name, _ in CONFIGS)
    print(header)
    print("-" * len(header))
    rows = {}
    for label, source, descriptor in PROBES:
        row = []
        for name, make in CONFIGS:
            result = TAJ(make()).analyze_sources(
                [source], deployment_descriptor=descriptor)
            row.append(result.issues)
        rows[label] = row
        print(f"{label:<44}" + "".join(f"{n:>9}" for n in row))

    print()
    print("reading the table:")
    print(" * Figure 1 has ONE real issue: hybrid and CS report 1;")
    print("   CI conflates the reflective id() calls and reports 3.")
    print(" * The thread flow is real: hybrid and CI report it; CS's")
    print("   sequential heap threading misses it (false negative).")
    print(" * The cross-entrypoint flow is only feasible across")
    print("   requests: the flow-insensitive heap (hybrid, CI) reports")
    print("   it; CS does not.")

    assert rows["Figure 1 (reflection + containers + carrier)"] == \
        [1, 1, 3]
    assert rows["cross-thread flow"] == [1, 0, 1]
    assert rows["cross-entrypoint heap flow"] == [1, 0, 1]


if __name__ == "__main__":
    main()

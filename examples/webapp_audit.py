#!/usr/bin/env python3
"""Audit a small realistic web application with the recommended
(fully-optimized) configuration.

The application below is a miniature blog: a Struts action renders
user profiles, a servlet searches posts against a database, another
serves file attachments, and an EJB session bean formats previews.  It
contains four real vulnerabilities (XSS via the Struts form, SQL
injection in search, path traversal in attachments, and an information
leak in the error handler) plus properly sanitized variants that a
precise analysis must not flag.

Run:  python examples/webapp_audit.py
"""

from repro import TAJ, TAJConfig
from repro.reporting import render_text

BLOG_APP = """
// ---- model objects ----------------------------------------------------
class Post {
  String title;
  String body;
}

class ProfileForm extends ActionForm {
  String displayName;
  String biography;
}

// ---- Struts action: renders a user profile ----------------------------
class ProfileAction extends Action {
  ActionForward execute(ActionMapping mapping, ActionForm form,
                        HttpServletRequest req, HttpServletResponse resp) {
    ProfileForm f = (ProfileForm) form;
    PrintWriter out = resp.getWriter();
    out.println("<h1>" + f.displayName + "</h1>");            // BAD: XSS
    out.println(Encoder.encodeForHTML(f.biography));          // OK
    return null;
  }
}

// ---- search servlet: SQL injection -------------------------------------
class SearchServlet extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String term = req.getParameter("q");
    Connection c = DriverManager.getConnection("jdbc:blog");
    Statement st = c.createStatement();
    st.executeQuery("SELECT * FROM posts WHERE title LIKE '"
                    + term + "'");                            // BAD: SQLi
    String safe = StringEscapeUtils.escapeSql(term);
    st.executeQuery("SELECT * FROM posts WHERE body LIKE '"
                    + safe + "'");                            // OK
  }
}

// ---- attachment servlet: path traversal ---------------------------------
class AttachmentServlet extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String name = req.getParameter("file");
    FileReader r = new FileReader("attachments/" + name);     // BAD: MFE
    String normalized = FilenameUtils.normalize(
        req.getParameter("thumb"));
    FileReader t = new FileReader(normalized);                // OK
  }
}

// ---- error handling: information leakage --------------------------------
class AdminServlet extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    try {
      Statement st = DriverManager.getConnection("jdbc:blog")
          .createStatement();
      st.executeUpdate("VACUUM");
    } catch (SQLException e) {
      resp.getWriter().println(e);                            // BAD: leak
    }
  }
}

// ---- EJB session bean reached through JNDI -------------------------------
class PreviewBean {
  String preview(String body) {
    StringBuilder sb = new StringBuilder();
    sb.append(body);
    sb.append("...");
    return sb.toString();
  }
}

class PreviewServlet extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    InitialContext ctx = new InitialContext();
    Object ref = ctx.lookup("java:comp/env/ejb/Preview");
    Object home = PortableRemoteObject.narrow(ref, "PreviewHome");
    PreviewBean bean = (PreviewBean) home.create();
    String p = bean.preview(req.getParameter("draft"));
    resp.getWriter().println(p);                              // BAD: XSS
  }
}
"""

DESCRIPTOR = {"java:comp/env/ejb/Preview": "PreviewBean"}


def main() -> None:
    taj = TAJ(TAJConfig.hybrid_optimized())
    result = taj.analyze_sources([BLOG_APP],
                                 deployment_descriptor=DESCRIPTOR)

    print(render_text(result.report, title="Audit of the mini blog "
                                           "application"))
    print()
    by_rule = {rule: len(issues)
               for rule, issues in result.report.by_rule().items()}
    print(f"issues by rule: {by_rule}")
    expected = {"XSS": 2, "SQLI": 1, "MALICIOUS_FILE": 1, "INFO_LEAK": 1}
    assert by_rule == expected, f"expected {expected}, got {by_rule}"
    print("=> all five planted vulnerabilities found, all four "
          "sanitized flows correctly rejected.")


if __name__ == "__main__":
    main()

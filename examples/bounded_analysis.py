#!/usr/bin/env python3
"""Bounded analysis (paper §6): analyzing a large application under a
fixed call-graph budget.

We generate the suite's budget-pressured benchmark (Webgoat) and sweep
a node budget with chaotic vs priority-driven construction, then show
what the fully-optimized configuration adds on top (whitelist code
reduction, heap-transition / flow-length / nested-depth bounds).

Run:  python examples/bounded_analysis.py
"""

from repro import TAJ, TAJConfig
from repro.bench import generate_suite, score_run
from repro.modeling import prepare
from repro.bench.suite import benign_lib_classes


def main() -> None:
    app = generate_suite(["Webgoat"])["Webgoat"]
    prepared = prepare(app.sources, app.deployment_descriptor)
    total_tp = sum(1 for p in app.planted if p.is_true_positive)
    print(f"benchmark: Webgoat — {total_tp} planted true positives, "
          f"{len(app.planted) - total_tp} sanitized/trap patterns")
    print()

    print(f"{'budget':<10}{'chaotic TP':>12}{'priority TP':>13}"
          f"{'optimized TP':>14}")
    whitelist = frozenset(benign_lib_classes(app))
    for budget in (120, 200, 320, None):
        row = []
        for config in (
                TAJConfig(name="chaotic", slicing="hybrid")
                .with_budget(max_cg_nodes=budget),
                TAJConfig(name="priority", slicing="hybrid",
                          prioritized=True)
                .with_budget(max_cg_nodes=budget),
                TAJConfig.hybrid_optimized(max_cg_nodes=budget)):
            if config.use_whitelist:
                from dataclasses import replace
                config = replace(config, whitelist_extra=whitelist)
            result = TAJ(config).analyze_prepared(prepared)
            row.append(score_run(app, result).tp)
        print(f"{str(budget):<10}{row[0]:>12}{row[1]:>13}{row[2]:>14}")

    print()
    print("what to see: under every constrained budget the priority-")
    print("driven scheme (§6.1) finds more true positives than chaotic")
    print("iteration, and the fully-optimized configuration recovers")
    print("more still — its whitelist code reduction stops benign")
    print("library classes from consuming the node budget (§7.2's")
    print("'more efficient use of the limited analysis budget').")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Report minimization with library call points (paper §5, Figure 3).

The servlet below produces several raw tainted flows from one source:
the same tainted value reaches two library sinks through one shared
rendering helper (the paper's p1/p2: same LCP, same remediation — ONE
report), through a different helper (different LCP — separate report),
and into a SQL sink (different issue type — separate report).

Run:  python examples/lcp_grouping.py
"""

from repro import TAJ, TAJConfig
from repro.reporting import render_text

APP = """
library class Widgets {
  static void emitTwice(PrintWriter out, String v) {
    out.println(v);            // n10
    out.print(v);              // n11 — same remediation as n10
  }
}

class App extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String v = req.getParameter("q");              // the single source
    PrintWriter out = resp.getWriter();

    // p1/p2: both flows enter library code at the SAME statement (the
    // emitTwice call) and need the same fix -> one equivalence class.
    Widgets.emitTwice(out, v);

    // p3: a different library call point -> its own report.
    out.println(v);

    // p5: same source, but a different issue type (SQLi) -> its own
    // report with a different remediation.
    DriverManager.getConnection("db").createStatement()
        .executeQuery("SELECT * FROM t WHERE q='" + v + "'");
  }
}
"""


def main() -> None:
    result = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources([APP])
    print(f"raw tainted flows found : {result.raw_flows}")
    print(f"issues after LCP grouping: {result.issues}")
    print()
    print(render_text(result.report, title="LCP-grouped report"))

    assert result.raw_flows > result.issues, "grouping must collapse"
    by_rule = {r: len(v) for r, v in result.report.by_rule().items()}
    assert by_rule == {"XSS": 2, "SQLI": 1}, by_rule
    grouped = [i for i in result.report.issues if i.grouped_flows > 1]
    assert grouped, "the emitTwice flows share one representative"
    print()
    print("=> the two flows through Widgets.emitTwice are one issue")
    print("   (same library call point, same remediation); the direct")
    print("   println and the SQL query stay separate.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cross-validate static findings with concrete execution.

`repro.interp` is a concrete jlang interpreter with dynamic taint tags —
the dynamic-analysis counterpart the paper contrasts with static taint
analysis (§8).  This example runs the motivating program both ways:

* statically (hybrid thin slicing) — one XSS issue;
* dynamically (real execution, including the reflective dispatch) — the
  same single sink receives tainted data at run time, confirming the
  static finding and the two rejections.

Run:  python examples/dynamic_validation.py
"""

from repro import TAJ, TAJConfig
from repro.bench.micro import MOTIVATING
from repro.interp import run_dynamic


def main() -> None:
    print("static analysis (hybrid thin slicing):")
    static = TAJ(TAJConfig.hybrid_unbounded()).analyze_sources(
        [MOTIVATING])
    for issue in static.report.issues:
        print(f"  [{issue.rule}] sink {issue.sink} "
              f"({issue.sink_method})")

    print()
    print("dynamic execution (concrete interpreter, taint tags):")
    summary = run_dynamic([MOTIVATING])
    for witness in summary.witnesses:
        print(f"  tainted sink in {witness.sink_method} via "
              f"{witness.display}; labels: {sorted(witness.labels)}")

    static_sinks = {i.sink.split("@")[0] for i in static.report.issues}
    dynamic_sinks = {w.sink_method for w in summary.witnesses}
    print()
    print(f"static sink methods : {sorted(static_sinks)}")
    print(f"dynamic sink methods: {sorted(dynamic_sinks)}")
    assert static_sinks == dynamic_sinks
    print("=> the static report is dynamically confirmed: exactly one")
    print("   of the three println calls receives tainted data, and it")
    print("   is the one the analysis flagged.")


if __name__ == "__main__":
    main()

"""Diagnostics for the jlang frontend."""

from __future__ import annotations


class SourceError(Exception):
    """A lexing, parsing, or lowering error with source position."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.message = message
        self.line = line
        self.col = col
        where = f" at {line}:{col}" if line else ""
        super().__init__(f"{message}{where}")


class LexError(SourceError):
    """Invalid character or unterminated literal."""


class ParseError(SourceError):
    """Token stream does not match the grammar."""


class LowerError(SourceError):
    """AST is grammatical but cannot be lowered (e.g. unknown name)."""

"""Hand-written lexer for jlang, the Java-like surface language.

jlang covers the subset of Java that TAJ's motivating examples and the
synthetic benchmark suite need: classes, interfaces, fields, methods,
arrays, strings, control flow, try/catch, casts, and `new`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexError

KEYWORDS = frozenset({
    "class", "interface", "extends", "implements", "library",
    "static", "native", "new", "return", "if", "else", "while", "for",
    "break", "continue", "try", "catch", "finally", "throw", "throws",
    "this", "null", "true", "false", "void", "int", "boolean",
    "public", "private", "protected", "final",
})

# Longest-match first.
SYMBOLS = [
    "==", "!=", "<=", ">=", "&&", "||", "+=", "++", "--", "-=",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "=", "+", "-", "*",
    "/", "%", "<", ">", "!", "&", "|",
]


@dataclass(frozen=True)
class Token:
    kind: str          # "id", "kw", "int", "string", "sym", "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind},{self.text!r}@{self.line}:{self.col})"


class Lexer:
    """Converts jlang source text into a token list."""

    def __init__(self, source: str, filename: str = "<string>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                        self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self.pos >= len(self.source):
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            tok = self._next_token()
            out.append(tok)
            if tok.kind == "eof":
                return out

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, col = self.line, self.col
        if self.pos >= len(self.source):
            return Token("eof", "", line, col)
        ch = self._peek()
        if ch.isalpha() or ch == "_" or ch == "$":
            start = self.pos
            while self._peek() and (self._peek().isalnum() or
                                    self._peek() in "_$"):
                self._advance()
            text = self.source[start:self.pos]
            kind = "kw" if text in KEYWORDS else "id"
            return Token(kind, text, line, col)
        if ch.isdigit():
            start = self.pos
            while self._peek().isdigit():
                self._advance()
            return Token("int", self.source[start:self.pos], line, col)
        if ch == '"':
            return self._string(line, col)
        for sym in SYMBOLS:
            if self.source.startswith(sym, self.pos):
                self._advance(len(sym))
                return Token("sym", sym, line, col)
        raise self._error(f"unexpected character {ch!r}")

    def _string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise self._error("unterminated string literal")
            if ch == '"':
                self._advance()
                return Token("string", "".join(chars), line, col)
            if ch == "\\":
                self._advance()
                esc = self._peek()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if esc not in mapping:
                    raise self._error(f"bad escape \\{esc}")
                chars.append(mapping[esc])
                self._advance()
            else:
                chars.append(ch)
                self._advance()


def tokenize(source: str, filename: str = "<string>") -> List[Token]:
    """Tokenize jlang source; convenience wrapper over :class:`Lexer`."""
    return Lexer(source, filename).tokens()

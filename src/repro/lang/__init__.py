"""jlang: the Java-like surface language the benchmarks are written in.

jlang stands in for Java bytecode in this reproduction; see DESIGN.md for
the substitution rationale.  The public entrypoints are
:func:`parse` (source → AST), :func:`lower_source` and
:func:`lower_sources` (source → IR program).
"""

from .errors import LexError, LowerError, ParseError, SourceError
from .lexer import Token, tokenize
from .lower import Lowerer, lower_source, lower_sources
from .parser import parse

__all__ = [
    "LexError", "Lowerer", "LowerError", "ParseError", "SourceError",
    "Token", "lower_source", "lower_sources", "parse", "tokenize",
]

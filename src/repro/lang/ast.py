"""AST node definitions for jlang.

The AST is deliberately small; anything surface-level that doesn't affect
taint-relevant data flow (access modifiers, checked exceptions) is parsed
and discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    line: int = field(default=0)


# -- expressions -----------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class Literal(Expr):
    value: object = None          # str, int, bool, or None (null)


@dataclass
class NameRef(Expr):
    name: str = ""


@dataclass
class ThisRef(Expr):
    pass


@dataclass
class FieldAccess(Expr):
    target: Optional[Expr] = None   # None only transiently during parsing
    field_name: str = ""


@dataclass
class IndexAccess(Expr):
    target: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class MethodCall(Expr):
    target: Optional[Expr] = None   # None => implicit this / same-class static
    method_name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewObject(Expr):
    class_name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewArrayExpr(Expr):
    element_type: str = ""
    length: Optional[Expr] = None
    initializer: Optional[List[Expr]] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Cast(Expr):
    type_name: str = ""
    operand: Optional[Expr] = None


# -- statements -------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    type_name: str = ""
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    target: Optional[Expr] = None   # NameRef, FieldAccess, or IndexAccess
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Throw(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class CatchClause(Node):
    exc_type: str = "Exception"
    var_name: str = "e"
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Try(Stmt):
    body: List[Stmt] = field(default_factory=list)
    catches: List[CatchClause] = field(default_factory=list)
    finally_body: List[Stmt] = field(default_factory=list)


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)


# -- declarations -------------------------------------------------------------

@dataclass
class FieldDeclNode(Node):
    type_name: str = ""
    name: str = ""
    is_static: bool = False


@dataclass
class ParamNode(Node):
    type_name: str = ""
    name: str = ""


@dataclass
class MethodDeclNode(Node):
    name: str = ""
    params: List[ParamNode] = field(default_factory=list)
    return_type: str = "void"
    body: Optional[List[Stmt]] = None   # None => native / abstract
    is_static: bool = False
    is_native: bool = False
    is_constructor: bool = False


@dataclass
class ClassDeclNode(Node):
    name: str = ""
    super_name: Optional[str] = None
    interfaces: List[str] = field(default_factory=list)
    is_interface: bool = False
    is_library: bool = False
    fields: List[FieldDeclNode] = field(default_factory=list)
    methods: List[MethodDeclNode] = field(default_factory=list)


@dataclass
class CompilationUnit(Node):
    classes: List[ClassDeclNode] = field(default_factory=list)

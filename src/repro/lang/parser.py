"""Recursive-descent parser for jlang.

Produces a :class:`~repro.lang.ast.CompilationUnit`.  ``for`` loops are
desugared to ``while`` at parse time; compound assignments and ``++`` are
desugared to plain assignments.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .errors import ParseError
from .lexer import Token, tokenize

_PRIMITIVE_TYPES = {"int", "boolean", "void"}
# Tokens that can start an expression: used by the cast heuristic.
_EXPR_START_SYMS = {"(", "!", "-"}


class Parser:
    """Parses a token stream into an AST."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _at_sym(self, text: str) -> bool:
        return self._at("sym", text)

    def _at_kw(self, text: str) -> bool:
        return self._at("kw", text)

    def _advance(self) -> Token:
        tok = self._peek()
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {tok.text!r}", tok.line, tok.col)
        return self._advance()

    def _accept_sym(self, text: str) -> bool:
        if self._at_sym(text):
            self._advance()
            return True
        return False

    def _accept_kw(self, text: str) -> bool:
        if self._at_kw(text):
            self._advance()
            return True
        return False

    # -- types ---------------------------------------------------------------

    def _at_type_start(self) -> bool:
        return self._peek().kind == "id" or self._peek().text in _PRIMITIVE_TYPES

    def _parse_type(self) -> str:
        tok = self._peek()
        if tok.kind == "id" or tok.text in _PRIMITIVE_TYPES:
            self._advance()
            name = tok.text
            while self._at_sym("[") and self._peek(1).text == "]":
                self._advance()
                self._advance()
                name += "[]"
            return name
        raise ParseError(f"expected a type, found {tok.text!r}",
                         tok.line, tok.col)

    # -- declarations ----------------------------------------------------------

    def parse_unit(self) -> ast.CompilationUnit:
        unit = ast.CompilationUnit(line=1)
        while not self._at("eof"):
            unit.classes.append(self._parse_class())
        return unit

    def _parse_class(self) -> ast.ClassDeclNode:
        line = self._peek().line
        is_library = self._accept_kw("library")
        while self._peek().text in ("public", "final"):
            self._advance()
        is_interface = False
        if self._accept_kw("interface"):
            is_interface = True
        else:
            self._expect("kw", "class")
        name = self._expect("id").text
        node = ast.ClassDeclNode(line=line, name=name,
                                 is_interface=is_interface,
                                 is_library=is_library)
        if self._accept_kw("extends"):
            node.super_name = self._expect("id").text
            if is_interface:
                # Interface extension list; treat extras as more interfaces.
                node.interfaces.append(node.super_name)
                node.super_name = None
                while self._accept_sym(","):
                    node.interfaces.append(self._expect("id").text)
        if self._accept_kw("implements"):
            node.interfaces.append(self._expect("id").text)
            while self._accept_sym(","):
                node.interfaces.append(self._expect("id").text)
        if node.super_name is None and not is_interface and name != "Object":
            node.super_name = "Object"
        self._expect("sym", "{")
        while not self._accept_sym("}"):
            self._parse_member(node)
        return node

    def _parse_member(self, cls: ast.ClassDeclNode) -> None:
        line = self._peek().line
        is_static = False
        is_native = False
        while True:
            if self._peek().text in ("public", "private", "protected", "final"):
                self._advance()
            elif self._accept_kw("static"):
                is_static = True
            elif self._accept_kw("native"):
                is_native = True
            else:
                break
        # Constructor: ClassName followed by '('.
        if self._at("id", cls.name) and self._peek(1).text == "(":
            self._advance()
            method = ast.MethodDeclNode(line=line, name="<init>",
                                        return_type="void",
                                        is_constructor=True)
            method.params = self._parse_params()
            self._skip_throws()
            method.body = self._parse_block()
            cls.methods.append(method)
            return
        type_name = self._parse_type()
        name_tok = self._expect("id")
        if self._at_sym("("):
            method = ast.MethodDeclNode(line=line, name=name_tok.text,
                                        return_type=type_name,
                                        is_static=is_static,
                                        is_native=is_native)
            method.params = self._parse_params()
            self._skip_throws()
            if self._accept_sym(";"):
                method.body = None
                method.is_native = True if not cls.is_interface else False
            else:
                method.body = self._parse_block()
            cls.methods.append(method)
        else:
            self._expect("sym", ";")
            cls.fields.append(ast.FieldDeclNode(
                line=line, type_name=type_name, name=name_tok.text,
                is_static=is_static))

    def _skip_throws(self) -> None:
        if self._accept_kw("throws"):
            self._expect("id")
            while self._accept_sym(","):
                self._expect("id")

    def _parse_params(self) -> List[ast.ParamNode]:
        self._expect("sym", "(")
        params: List[ast.ParamNode] = []
        if not self._at_sym(")"):
            while True:
                line = self._peek().line
                type_name = self._parse_type()
                name = self._expect("id").text
                params.append(ast.ParamNode(line=line, type_name=type_name,
                                            name=name))
                if not self._accept_sym(","):
                    break
        self._expect("sym", ")")
        return params

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> List[ast.Stmt]:
        self._expect("sym", "{")
        stmts: List[ast.Stmt] = []
        while not self._accept_sym("}"):
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if self._at_sym("{"):
            return ast.Block(line=tok.line, body=self._parse_block())
        if self._at_kw("if"):
            return self._parse_if()
        if self._at_kw("while"):
            return self._parse_while()
        if self._at_kw("for"):
            return self._parse_for()
        if self._at_kw("try"):
            return self._parse_try()
        if self._accept_kw("return"):
            value = None if self._at_sym(";") else self._parse_expr()
            self._expect("sym", ";")
            return ast.Return(line=tok.line, value=value)
        if self._accept_kw("throw"):
            value = self._parse_expr()
            self._expect("sym", ";")
            return ast.Throw(line=tok.line, value=value)
        if self._accept_kw("break"):
            self._expect("sym", ";")
            return ast.Break(line=tok.line)
        if self._accept_kw("continue"):
            self._expect("sym", ";")
            return ast.Continue(line=tok.line)
        if self._looks_like_var_decl():
            stmt = self._parse_var_decl()
            self._expect("sym", ";")
            return stmt
        stmt = self._parse_expr_or_assign()
        self._expect("sym", ";")
        return stmt

    def _looks_like_var_decl(self) -> bool:
        """Disambiguate ``Type name ...`` from an expression statement."""
        tok = self._peek()
        if tok.text in _PRIMITIVE_TYPES and tok.text != "void":
            return True
        if tok.kind != "id":
            return False
        # ID ID            -> decl (e.g. ``String s``)
        # ID [ ] ID        -> array decl
        nxt = self._peek(1)
        if nxt.kind == "id":
            return True
        if nxt.text == "[" and self._peek(2).text == "]":
            return self._peek(3).kind == "id"
        return False

    def _parse_var_decl(self) -> ast.Stmt:
        line = self._peek().line
        type_name = self._parse_type()
        name = self._expect("id").text
        init = None
        if self._accept_sym("="):
            init = self._parse_expr()
        return ast.VarDecl(line=line, type_name=type_name, name=name,
                           init=init)

    def _parse_expr_or_assign(self) -> ast.Stmt:
        line = self._peek().line
        expr = self._parse_expr()
        if self._at_sym("=") or self._at_sym("+=") or self._at_sym("-="):
            op = self._advance().text
            value = self._parse_expr()
            if op != "=":
                value = ast.Binary(line=line, op=op[0], left=expr, right=value)
            if not isinstance(expr, (ast.NameRef, ast.FieldAccess,
                                     ast.IndexAccess)):
                raise ParseError("invalid assignment target", line, 0)
            return ast.Assign(line=line, target=expr, value=value)
        if self._at_sym("++") or self._at_sym("--"):
            op = self._advance().text
            if not isinstance(expr, ast.NameRef):
                raise ParseError("invalid ++/-- target", line, 0)
            one = ast.Literal(line=line, value=1)
            return ast.Assign(
                line=line, target=expr,
                value=ast.Binary(line=line, op=op[0], left=expr, right=one))
        return ast.ExprStmt(line=line, expr=expr)

    def _parse_if(self) -> ast.Stmt:
        line = self._expect("kw", "if").line
        self._expect("sym", "(")
        cond = self._parse_expr()
        self._expect("sym", ")")
        then_body = self._stmt_as_body()
        else_body: List[ast.Stmt] = []
        if self._accept_kw("else"):
            else_body = self._stmt_as_body()
        return ast.If(line=line, cond=cond, then_body=then_body,
                      else_body=else_body)

    def _parse_while(self) -> ast.Stmt:
        line = self._expect("kw", "while").line
        self._expect("sym", "(")
        cond = self._parse_expr()
        self._expect("sym", ")")
        return ast.While(line=line, cond=cond, body=self._stmt_as_body())

    def _parse_for(self) -> ast.Stmt:
        """Desugar ``for (init; cond; update) body`` into a while loop."""
        line = self._expect("kw", "for").line
        self._expect("sym", "(")
        init: Optional[ast.Stmt] = None
        if not self._at_sym(";"):
            if self._looks_like_var_decl():
                init = self._parse_var_decl()
            else:
                init = self._parse_expr_or_assign()
        self._expect("sym", ";")
        cond: ast.Expr = ast.Literal(line=line, value=True)
        if not self._at_sym(";"):
            cond = self._parse_expr()
        self._expect("sym", ";")
        update: Optional[ast.Stmt] = None
        if not self._at_sym(")"):
            update = self._parse_expr_or_assign()
        self._expect("sym", ")")
        body = self._stmt_as_body()
        if update is not None:
            body = body + [update]
        loop = ast.While(line=line, cond=cond, body=body)
        outer: List[ast.Stmt] = []
        if init is not None:
            outer.append(init)
        outer.append(loop)
        return ast.Block(line=line, body=outer)

    def _parse_try(self) -> ast.Stmt:
        line = self._expect("kw", "try").line
        body = self._parse_block()
        node = ast.Try(line=line, body=body)
        while self._at_kw("catch"):
            cline = self._advance().line
            self._expect("sym", "(")
            exc_type = self._parse_type()
            var = self._expect("id").text
            self._expect("sym", ")")
            cbody = self._parse_block()
            node.catches.append(ast.CatchClause(
                line=cline, exc_type=exc_type, var_name=var, body=cbody))
        if self._accept_kw("finally"):
            node.finally_body = self._parse_block()
        if not node.catches and not node.finally_body:
            raise ParseError("try without catch or finally", line, 0)
        return node

    def _stmt_as_body(self) -> List[ast.Stmt]:
        stmt = self._parse_stmt()
        if isinstance(stmt, ast.Block):
            return stmt.body
        return [stmt]

    # -- expressions ----------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_logic()

    def _parse_logic(self) -> ast.Expr:
        left = self._parse_equality()
        while self._at_sym("&&") or self._at_sym("||"):
            tok = self._advance()
            right = self._parse_equality()
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=right)
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_relational()
        while self._at_sym("==") or self._at_sym("!="):
            tok = self._advance()
            right = self._parse_relational()
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=right)
        return left

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_additive()
        while self._peek().text in ("<", ">", "<=", ">=") and \
                self._peek().kind == "sym":
            tok = self._advance()
            right = self._parse_additive()
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while (self._at_sym("+") or self._at_sym("-")):
            tok = self._advance()
            right = self._parse_multiplicative()
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().text in ("*", "/", "%") and \
                self._peek().kind == "sym":
            tok = self._advance()
            right = self._parse_unary()
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if self._at_sym("!") or self._at_sym("-"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        if self._is_cast():
            self._expect("sym", "(")
            type_name = self._parse_type()
            self._expect("sym", ")")
            operand = self._parse_unary()
            return ast.Cast(line=tok.line, type_name=type_name,
                            operand=operand)
        return self._parse_postfix()

    def _is_cast(self) -> bool:
        """Heuristic: ``( Id )`` or ``( Id[] )`` followed by an expression
        start is a cast.  Casts to primitives are not supported (jlang has
        no narrowing conversions worth modeling)."""
        if not self._at_sym("("):
            return False
        if self._peek(1).kind != "id":
            return False
        idx = 2
        while self._peek(idx).text == "[" and self._peek(idx + 1).text == "]":
            idx += 2
        if self._peek(idx).text != ")":
            return False
        after = self._peek(idx + 1)
        if after.kind in ("id", "string", "int"):
            return True
        if after.kind == "kw" and after.text in ("this", "new", "null",
                                                 "true", "false"):
            return True
        return after.kind == "sym" and after.text in _EXPR_START_SYMS

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._at_sym("."):
                self._advance()
                name = self._expect("id").text
                if self._at_sym("("):
                    args = self._parse_args()
                    expr = ast.MethodCall(line=self._peek().line,
                                          target=expr, method_name=name,
                                          args=args)
                else:
                    expr = ast.FieldAccess(line=self._peek().line,
                                           target=expr, field_name=name)
            elif self._at_sym("["):
                self._advance()
                index = self._parse_expr()
                self._expect("sym", "]")
                expr = ast.IndexAccess(line=self._peek().line, target=expr,
                                       index=index)
            else:
                return expr

    def _parse_args(self) -> List[ast.Expr]:
        self._expect("sym", "(")
        args: List[ast.Expr] = []
        if not self._at_sym(")"):
            while True:
                args.append(self._parse_expr())
                if not self._accept_sym(","):
                    break
        self._expect("sym", ")")
        return args

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "string":
            self._advance()
            return ast.Literal(line=tok.line, value=tok.text)
        if tok.kind == "int":
            self._advance()
            return ast.Literal(line=tok.line, value=int(tok.text))
        if self._accept_kw("true"):
            return ast.Literal(line=tok.line, value=True)
        if self._accept_kw("false"):
            return ast.Literal(line=tok.line, value=False)
        if self._accept_kw("null"):
            return ast.Literal(line=tok.line, value=None)
        if self._accept_kw("this"):
            return ast.ThisRef(line=tok.line)
        if self._at_kw("new"):
            return self._parse_new()
        if tok.kind == "id":
            self._advance()
            if self._at_sym("("):
                args = self._parse_args()
                return ast.MethodCall(line=tok.line, target=None,
                                      method_name=tok.text, args=args)
            return ast.NameRef(line=tok.line, name=tok.text)
        if self._accept_sym("("):
            expr = self._parse_expr()
            self._expect("sym", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)

    def _parse_new(self) -> ast.Expr:
        line = self._expect("kw", "new").line
        type_name = self._parse_type()
        if type_name.endswith("[]"):
            # ``new T[] { a, b }`` — array literal.
            self._expect("sym", "{")
            elems: List[ast.Expr] = []
            if not self._at_sym("}"):
                while True:
                    elems.append(self._parse_expr())
                    if not self._accept_sym(","):
                        break
            self._expect("sym", "}")
            return ast.NewArrayExpr(line=line, element_type=type_name[:-2],
                                    initializer=elems)
        if self._at_sym("["):
            self._advance()
            length = self._parse_expr()
            self._expect("sym", "]")
            return ast.NewArrayExpr(line=line, element_type=type_name,
                                    length=length)
        args = self._parse_args()
        return ast.NewObject(line=line, class_name=type_name, args=args)


def parse(source: str, filename: str = "<string>") -> ast.CompilationUnit:
    """Parse jlang source text into a compilation unit."""
    return Parser(tokenize(source, filename)).parse_unit()

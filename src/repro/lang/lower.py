"""Lowering from the jlang AST to the three-address IR.

Expressions are flattened into temporaries (``%t0``, ``%t1`` ...);
structured control flow becomes a CFG of basic blocks.  The lowering of
``try``/``catch`` is deliberately conservative and simple: control may
branch to each catch head at try entry (any statement in the body may
throw), and thrown values are not routed to catch variables — caught
exceptions are instead treated as fresh objects, matching TAJ's synthetic
exception-source model (paper §4.1.2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..ir import (ARRAY_CONTENTS, ArrayLoad, ArrayStore, Assign, BasicBlock,
                  BinOp, Call, Cast, ClassDecl, Const, EnterCatch, FieldDecl,
                  Goto, If, Load, Method, New, NewArray, Param, Program,
                  Return, StaticLoad, StaticStore, Store, Throw, UnOp, Var,
                  parse_type)
from . import ast
from .errors import LowerError, SourceError
from .parser import parse

# Sentinel constant marking the synthetic exception-dispatch branches
# emitted for try/catch (see _lower_try).
EXC_DISPATCH = "<exc-dispatch>"


class _Scope:
    """A stack of lexical scopes mapping source names to IR variables."""

    def __init__(self) -> None:
        self._stack: List[Dict[str, Var]] = [{}]
        self._counts: Dict[str, int] = {}

    def push(self) -> None:
        self._stack.append({})

    def pop(self) -> None:
        self._stack.pop()

    def declare(self, name: str) -> Var:
        count = self._counts.get(name, 0)
        self._counts[name] = count + 1
        var = name if count == 0 else f"{name}${count}"
        self._stack[-1][name] = var
        return var

    def lookup(self, name: str) -> Optional[Var]:
        for scope in reversed(self._stack):
            if name in scope:
                return scope[name]
        return None


class MethodLowerer:
    """Lowers one method body into a CFG."""

    def __init__(self, owner: "Lowerer", cls: ast.ClassDeclNode,
                 decl: ast.MethodDeclNode, method: Method) -> None:
        self.owner = owner
        self.cls = cls
        self.decl = decl
        self.method = method
        self.scope = _Scope()
        self.types = method.var_types
        self.block: BasicBlock = method.new_block()
        self._temp = 0
        # (continue_target, break_target) stack.
        self._loops: List[Tuple[int, int]] = []

    # -- emission helpers ---------------------------------------------------

    def _fresh(self) -> Var:
        var = f"%t{self._temp}"
        self._temp += 1
        return var

    def _set_type(self, var: Var, type_name: Optional[str]) -> None:
        """Record a variable's type; first (declared) binding wins."""
        if var and type_name and var not in self.types:
            self.types[var] = type_name

    def _type_of(self, var: Var) -> Optional[str]:
        return self.types.get(var)

    def _emit(self, instr, line: int = 0):
        self.method.append(self.block, instr, line)
        return instr

    def _new_block(self) -> BasicBlock:
        return self.method.new_block()

    def _goto(self, target: BasicBlock, line: int = 0) -> None:
        if self.block.terminator is None:
            self._emit(Goto(target.bid), line)

    def _branch(self, cond: Var, then_b: BasicBlock, else_b: BasicBlock,
                line: int = 0) -> None:
        self._emit(If(cond, then_b.bid, else_b.bid), line)

    # -- entry ---------------------------------------------------------------

    def run(self) -> None:
        if not self.method.is_static:
            self.scope._stack[0]["this"] = "this"
            self._set_type("this", self.cls.name)
        for param in self.method.params:
            self.scope._stack[0][param.name] = param.name
            self._set_type(param.name, str(param.type))
        assert self.decl.body is not None
        self._lower_stmts(self.decl.body)
        if self.block.terminator is None:
            self._emit(Return(None))
        self.method.finish()

    # -- statements ------------------------------------------------------------

    def _lower_stmts(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            var = self.scope.declare(stmt.name)
            self._set_type(var, stmt.type_name)
            if stmt.init is not None:
                value = self._lower_expr(stmt.init)
                self._emit(Assign(var, value), stmt.line)
            else:
                self._emit(Const(var, None), stmt.line)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._lower_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.Block):
            self.scope.push()
            self._lower_stmts(stmt.body)
            self.scope.pop()
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.Return):
            value = self._lower_expr(stmt.value) if stmt.value else None
            self._emit(Return(value), stmt.line)
            self.block = self._new_block()
        elif isinstance(stmt, ast.Throw):
            value = self._lower_expr(stmt.value) if stmt.value else ""
            self._emit(Throw(value), stmt.line)
            self.block = self._new_block()
        elif isinstance(stmt, ast.Break):
            if not self._loops:
                raise LowerError("break outside loop", stmt.line)
            self._emit(Goto(self._loops[-1][1]), stmt.line)
            self.block = self._new_block()
        elif isinstance(stmt, ast.Continue):
            if not self._loops:
                raise LowerError("continue outside loop", stmt.line)
            self._emit(Goto(self._loops[-1][0]), stmt.line)
            self.block = self._new_block()
        elif isinstance(stmt, ast.Try):
            self._lower_try(stmt)
        else:
            raise LowerError(f"cannot lower {type(stmt).__name__}", stmt.line)

    def _lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        assert stmt.value is not None
        if isinstance(target, ast.NameRef):
            local = self.scope.lookup(target.name)
            value = self._lower_expr(stmt.value)
            if local is not None:
                self._emit(Assign(local, value), stmt.line)
                return
            owner = self.owner.field_owner(self.cls.name, target.name)
            if owner is not None:
                cls_name, is_static = owner
                if is_static:
                    self._emit(StaticStore(cls_name, target.name, value),
                               stmt.line)
                else:
                    self._emit(Store("this", target.name, value), stmt.line)
                return
            # Implicit declaration keeps generated benchmark code compact.
            var = self.scope.declare(target.name)
            self._set_type(var, self._type_of(value))
            self._emit(Assign(var, value), stmt.line)
        elif isinstance(target, ast.FieldAccess):
            assert target.target is not None
            static_cls = self._as_class_name(target.target)
            value = self._lower_expr(stmt.value)
            if static_cls is not None:
                self._emit(StaticStore(static_cls, target.field_name, value),
                           stmt.line)
            else:
                base = self._lower_expr(target.target)
                self._emit(Store(base, target.field_name, value), stmt.line)
        elif isinstance(target, ast.IndexAccess):
            assert target.target is not None
            base = self._lower_expr(target.target)
            index = self._lower_expr(target.index) if target.index else None
            value = self._lower_expr(stmt.value)
            self._emit(ArrayStore(base, value, index), stmt.line)
        else:
            raise LowerError("invalid assignment target", stmt.line)

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._lower_expr(stmt.cond) if stmt.cond else self._fresh()
        then_b = self._new_block()
        else_b = self._new_block()
        join_b = self._new_block()
        self._branch(cond, then_b, else_b, stmt.line)
        self.block = then_b
        self.scope.push()
        self._lower_stmts(stmt.then_body)
        self.scope.pop()
        self._goto(join_b)
        self.block = else_b
        self.scope.push()
        self._lower_stmts(stmt.else_body)
        self.scope.pop()
        self._goto(join_b)
        self.block = join_b

    def _lower_while(self, stmt: ast.While) -> None:
        head = self._new_block()
        self._goto(head, stmt.line)
        self.block = head
        cond = self._lower_expr(stmt.cond) if stmt.cond else self._fresh()
        body_b = self._new_block()
        exit_b = self._new_block()
        self._branch(cond, body_b, exit_b, stmt.line)
        self._loops.append((head.bid, exit_b.bid))
        self.block = body_b
        self.scope.push()
        self._lower_stmts(stmt.body)
        self.scope.pop()
        self._goto(head)
        self._loops.pop()
        self.block = exit_b

    def _lower_try(self, stmt: ast.Try) -> None:
        body_b = self._new_block()
        catch_heads = [self._new_block() for _ in stmt.catches]
        join_b = self._new_block()
        # Entry dispatch: a chain of opaque two-way branches gives the CFG
        # an edge into every catch head ("any statement may throw"); the
        # final fallthrough enters the try body.  The sentinel constant
        # lets the concrete interpreter (repro.interp) recognize these
        # branches: it takes the else edge normally and the then edge in
        # fault-injection mode.  Static analyses treat the condition as
        # opaque either way.
        for head in catch_heads:
            cond = self._fresh()
            self._emit(Const(cond, EXC_DISPATCH), stmt.line)
            nxt = self._new_block()
            self._branch(cond, head, nxt, stmt.line)
            self.block = nxt
        self._goto(body_b, stmt.line)
        self.block = body_b
        self.scope.push()
        self._lower_stmts(stmt.body)
        self.scope.pop()
        self._goto(join_b)
        for clause, head in zip(stmt.catches, catch_heads):
            self.block = head
            self.scope.push()
            var = self.scope.declare(clause.var_name)
            self._set_type(var, clause.exc_type)
            self._emit(EnterCatch(var, clause.exc_type), clause.line)
            self._lower_stmts(clause.body)
            self.scope.pop()
            self._goto(join_b)
        self.block = join_b
        if stmt.finally_body:
            self.scope.push()
            self._lower_stmts(stmt.finally_body)
            self.scope.pop()

    # -- expressions -------------------------------------------------------------

    def _as_class_name(self, expr: ast.Expr) -> Optional[str]:
        """If ``expr`` names a class (not shadowed by a local), return it."""
        if isinstance(expr, ast.NameRef) and \
                self.scope.lookup(expr.name) is None and \
                self.owner.is_class_name(expr.name):
            return expr.name
        return None

    def _lower_expr(self, expr: ast.Expr, want_value: bool = True) -> Var:
        if isinstance(expr, ast.Literal):
            var = self._fresh()
            self._emit(Const(var, expr.value), expr.line)
            if isinstance(expr.value, str):
                self._set_type(var, "String")
            elif isinstance(expr.value, bool):
                self._set_type(var, "boolean")
            elif isinstance(expr.value, int):
                self._set_type(var, "int")
            else:
                self._set_type(var, "Object")
            return var
        if isinstance(expr, ast.NameRef):
            local = self.scope.lookup(expr.name)
            if local is not None:
                return local
            owner = self.owner.field_owner(self.cls.name, expr.name)
            if owner is not None:
                cls_name, is_static = owner
                var = self._fresh()
                if is_static:
                    self._emit(StaticLoad(var, cls_name, expr.name),
                               expr.line)
                else:
                    self._emit(Load(var, "this", expr.name), expr.line)
                self._set_type(var, self.owner.field_type(cls_name,
                                                          expr.name))
                return var
            raise LowerError(
                f"unknown name {expr.name!r} in {self.cls.name}", expr.line)
        if isinstance(expr, ast.ThisRef):
            if self.method.is_static:
                raise LowerError("'this' in static method", expr.line)
            return "this"
        if isinstance(expr, ast.FieldAccess):
            assert expr.target is not None
            static_cls = self._as_class_name(expr.target)
            var = self._fresh()
            if static_cls is not None:
                self._emit(StaticLoad(var, static_cls, expr.field_name),
                           expr.line)
                self._set_type(var, self.owner.field_type(
                    static_cls, expr.field_name))
            else:
                base = self._lower_expr(expr.target)
                self._emit(Load(var, base, expr.field_name), expr.line)
                base_type = self._type_of(base)
                if base_type:
                    self._set_type(var, self.owner.field_type(
                        base_type, expr.field_name))
            return var
        if isinstance(expr, ast.IndexAccess):
            assert expr.target is not None
            base = self._lower_expr(expr.target)
            index = self._lower_expr(expr.index) if expr.index else None
            var = self._fresh()
            self._emit(ArrayLoad(var, base, index), expr.line)
            base_type = self._type_of(base)
            if base_type and base_type.endswith("[]"):
                self._set_type(var, base_type[:-2])
            return var
        if isinstance(expr, ast.MethodCall):
            return self._lower_call(expr, want_value)
        if isinstance(expr, ast.NewObject):
            return self._lower_new_object(expr)
        if isinstance(expr, ast.NewArrayExpr):
            return self._lower_new_array(expr)
        if isinstance(expr, ast.Binary):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            var = self._fresh()
            self._emit(BinOp(var, expr.op, left, right), expr.line)
            if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
                self._set_type(var, "boolean")
            elif expr.op == "+" and ("String" in (self._type_of(left),
                                                  self._type_of(right))):
                self._set_type(var, "String")
            else:
                self._set_type(var, "int")
            return var
        if isinstance(expr, ast.Unary):
            operand = self._lower_expr(expr.operand)
            var = self._fresh()
            self._emit(UnOp(var, expr.op, operand), expr.line)
            self._set_type(var, "boolean" if expr.op == "!" else "int")
            return var
        if isinstance(expr, ast.Cast):
            operand = self._lower_expr(expr.operand)
            var = self._fresh()
            self._emit(Cast(var, expr.type_name, operand), expr.line)
            self._set_type(var, expr.type_name)
            return var
        raise LowerError(f"cannot lower {type(expr).__name__}", expr.line)

    def _lower_call(self, expr: ast.MethodCall, want_value: bool) -> Var:
        args = [self._lower_expr(a) for a in expr.args]
        lhs = self._fresh() if want_value else None
        if expr.target is None:
            # Implicit call within the enclosing class.
            info = self.owner.method_owner(self.cls.name, expr.method_name,
                                           len(args))
            if info is not None and info[1]:
                call = Call(lhs, "static", info[0], expr.method_name, None,
                            args)
            elif self.method.is_static:
                cls_name = info[0] if info else self.cls.name
                call = Call(lhs, "static", cls_name, expr.method_name, None,
                            args)
            else:
                call = Call(lhs, "virtual", self.cls.name, expr.method_name,
                            "this", args)
        else:
            static_cls = self._as_class_name(expr.target)
            if static_cls is not None:
                call = Call(lhs, "static", static_cls, expr.method_name,
                            None, args)
            else:
                recv = self._lower_expr(expr.target)
                call = Call(lhs, "virtual", "", expr.method_name, recv, args)
        self._emit(call, expr.line)
        if lhs is None:
            return ""
        base_cls = call.class_name
        if call.kind == "virtual" and call.receiver:
            base_cls = self._type_of(call.receiver) or call.class_name
        if base_cls:
            self._set_type(lhs, self.owner.method_return_type(
                base_cls, call.method_name, len(call.args)))
        return lhs

    def _lower_new_object(self, expr: ast.NewObject) -> Var:
        var = self._fresh()
        self._set_type(var, expr.class_name)
        self._emit(New(var, expr.class_name), expr.line)
        args = [self._lower_expr(a) for a in expr.args]
        if self.owner.has_constructor(expr.class_name, len(args)) or args:
            self._emit(Call(None, "special", expr.class_name, "<init>",
                            var, args), expr.line)
        return var

    def _lower_new_array(self, expr: ast.NewArrayExpr) -> Var:
        var = self._fresh()
        self._set_type(var, expr.element_type + "[]")
        length = self._lower_expr(expr.length) if expr.length else None
        self._emit(NewArray(var, parse_type(expr.element_type), length),
                   expr.line)
        for elem in expr.initializer or []:
            value = self._lower_expr(elem)
            self._emit(ArrayStore(var, value), expr.line)
        return var


class Lowerer:
    """Lowers compilation units into a :class:`Program`.

    An existing program may be supplied so that units can reference
    classes lowered earlier (e.g. application code referring to the model
    library); name resolution consults both.
    """

    def __init__(self, program: Optional[Program] = None) -> None:
        self.program = program or Program()
        self._unit_classes: Dict[str, ast.ClassDeclNode] = {}

    # -- name resolution ---------------------------------------------------

    def is_class_name(self, name: str) -> bool:
        return name in self._unit_classes or name in self.program.classes

    def _super_of(self, name: str) -> Optional[str]:
        if name in self._unit_classes:
            return self._unit_classes[name].super_name
        cls = self.program.get_class(name)
        return cls.super_name if cls else None

    def field_owner(self, class_name: str,
                    fld: str) -> Optional[Tuple[str, bool]]:
        """Find (declaring class, is_static) for a field, walking supers."""
        seen: Set[str] = set()
        cur: Optional[str] = class_name
        while cur and cur not in seen:
            seen.add(cur)
            if cur in self._unit_classes:
                for f in self._unit_classes[cur].fields:
                    if f.name == fld:
                        return cur, f.is_static
            else:
                cls = self.program.get_class(cur)
                if cls and fld in cls.fields:
                    return cur, cls.fields[fld].is_static
            cur = self._super_of(cur)
        return None

    def method_owner(self, class_name: str, name: str,
                     arity: int) -> Optional[Tuple[str, bool]]:
        """Find (declaring class, is_static) for a method, walking supers."""
        seen: Set[str] = set()
        cur: Optional[str] = class_name
        while cur and cur not in seen:
            seen.add(cur)
            if cur in self._unit_classes:
                for m in self._unit_classes[cur].methods:
                    if m.name == name and len(m.params) == arity:
                        return cur, m.is_static
            else:
                cls = self.program.get_class(cur)
                if cls and cls.get_method(name, arity):
                    return cur, cls.get_method(name, arity).is_static
            cur = self._super_of(cur)
        return None

    def field_type(self, class_name: str, fld: str) -> Optional[str]:
        """Declared type name of a field, walking superclasses."""
        seen: Set[str] = set()
        cur: Optional[str] = class_name
        while cur and cur not in seen:
            seen.add(cur)
            if cur in self._unit_classes:
                for f in self._unit_classes[cur].fields:
                    if f.name == fld:
                        return f.type_name
            else:
                cls = self.program.get_class(cur)
                if cls and fld in cls.fields:
                    return str(cls.fields[fld].type)
            cur = self._super_of(cur)
        return None

    def method_return_type(self, class_name: str, name: str,
                           arity: int) -> Optional[str]:
        """Declared return type name of a method, walking superclasses."""
        seen: Set[str] = set()
        cur: Optional[str] = class_name
        while cur and cur not in seen:
            seen.add(cur)
            if cur in self._unit_classes:
                for m in self._unit_classes[cur].methods:
                    if m.name == name and len(m.params) == arity:
                        return m.return_type
            else:
                cls = self.program.get_class(cur)
                if cls:
                    method = cls.get_method(name, arity)
                    if method:
                        return str(method.return_type)
            cur = self._super_of(cur)
        return None

    def has_constructor(self, class_name: str, arity: int) -> bool:
        return self.method_owner(class_name, "<init>", arity) is not None

    # -- lowering ------------------------------------------------------------

    def add_unit(self, unit: ast.CompilationUnit) -> List[str]:
        """Register a unit's classes for name resolution before lowering.

        Returns the class names registered, so callers that quarantine
        broken units (``repro.resilience``) can map classes back to the
        source unit they came from.
        """
        names: List[str] = []
        for cls in unit.classes:
            if cls.name in self._unit_classes or \
                    cls.name in self.program.classes:
                raise LowerError(f"duplicate class {cls.name}", cls.line)
            self._unit_classes[cls.name] = cls
            names.append(cls.name)
        return names

    def lower_all(self, on_error: Optional[Callable[
            [str, SourceError], None]] = None) -> Program:
        """Lower every registered unit class into the program.

        With ``on_error``, a class whose body fails to lower is reported
        as ``on_error(class_name, exc)`` instead of aborting the batch;
        the caller is responsible for evicting the partially-lowered
        class (and its unit) from the program.
        """
        pending = list(self._unit_classes.values())
        for cls_node in pending:
            self.program.add_class(self._lower_class_shell(cls_node))
        for cls_node in pending:
            if on_error is None:
                self._lower_bodies(cls_node)
                continue
            try:
                self._lower_bodies(cls_node)
            except SourceError as exc:
                on_error(cls_node.name, exc)
        self._unit_classes.clear()
        return self.program

    def _lower_class_shell(self, node: ast.ClassDeclNode) -> ClassDecl:
        cls = ClassDecl(node.name, node.super_name, list(node.interfaces),
                        is_interface=node.is_interface,
                        is_library=node.is_library, line=node.line)
        for fld in node.fields:
            cls.add_field(FieldDecl(fld.name, parse_type(fld.type_name),
                                    fld.is_static))
        for decl in node.methods:
            params = [Param(p.name, parse_type(p.type_name))
                      for p in decl.params]
            method = Method(node.name, decl.name, params,
                            parse_type(decl.return_type),
                            is_static=decl.is_static,
                            is_native=decl.body is None and
                            not node.is_interface,
                            line=decl.line)
            if node.is_interface:
                method.is_native = True  # bodiless; never dispatched to
            cls.add_method(method)
        return cls

    def _lower_bodies(self, node: ast.ClassDeclNode) -> None:
        cls = self.program.get_class(node.name)
        assert cls is not None
        for decl in node.methods:
            if decl.body is None:
                continue
            method = cls.get_method(decl.name, len(decl.params))
            assert method is not None
            MethodLowerer(self, node, decl, method).run()


def lower_source(source: str, program: Optional[Program] = None,
                 filename: str = "<string>") -> Program:
    """Parse and lower jlang source, merging into ``program`` if given."""
    lowerer = Lowerer(program)
    lowerer.add_unit(parse(source, filename))
    return lowerer.lower_all()


def lower_sources(sources: List[str],
                  program: Optional[Program] = None) -> Program:
    """Parse and lower several units that may reference one another."""
    lowerer = Lowerer(program)
    for source in sources:
        lowerer.add_unit(parse(source))
    return lowerer.lower_all()

"""Command-line interface: ``python -m repro [options] file.jlang ...``

Analyzes jlang source files and prints (or JSON-dumps) the report.

    python -m repro app.jlang
    python -m repro --config ci --rules extended app.jlang lib.jlang
    python -m repro --json --descriptor ejb.json app.jlang
    python -m repro --dynamic app.jlang      # also run the interpreter
    python -m repro --trace t.json --metrics m.json app.jlang
    python -m repro --audit audit.json app.jlang

Observability (``docs/observability.md``): ``--trace`` writes a Chrome
``chrome://tracing``-loadable span trace (``--trace-jsonl`` the JSONL
flavor), ``--metrics`` a metrics-registry snapshot (counters, timer
percentiles, peak-memory gauges), ``--audit`` the per-flow provenance
audit, and ``--stats`` prints the solver kernel counters plus the
registry summary table.  ``--profile`` samples the run with the
phase-attributed profiler and writes a collapsed-stack flamegraph
file, ``--ledger`` appends one run-ledger record (diff history with
``python -m repro.obs.compare``), and ``--progress`` prints a live
heartbeat line to stderr while the analysis runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from .core import TAJ, TAJConfig
from .lang import lower_sources, parse
from .lang.errors import SourceError
from .obs import (Observability, append_record, record_from_result,
                  write_audit_json, write_chrome_trace, write_collapsed,
                  write_metrics_json, write_spans_jsonl)
from .reporting import render_metrics_table, render_text
from .taint import default_rules, extended_rules

CONFIG_FACTORIES = {
    "unbounded": TAJConfig.hybrid_unbounded,
    "prioritized": TAJConfig.hybrid_prioritized,
    "optimized": TAJConfig.hybrid_optimized,
    "cs": TAJConfig.cs,
    "ci": TAJConfig.ci,
    "summary": TAJConfig.summary,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TAJ-style static taint analysis for jlang sources "
                    "(PLDI 2009 reproduction).")
    parser.add_argument("files", nargs="+",
                        help="jlang source files to analyze together")
    parser.add_argument("--config", choices=sorted(CONFIG_FACTORIES),
                        default="optimized",
                        help="analysis configuration (default: optimized)")
    parser.add_argument("--strategy", choices=("hybrid", "cs", "ci",
                                               "summary"),
                        help="override the slicing strategy of the "
                             "chosen --config (e.g. run the optimized "
                             "preset on the summary engine)")
    parser.add_argument("--summary-cache", metavar="DIR",
                        help="persistent per-method summary cache for "
                             "the summary strategy: cold runs populate "
                             "DIR, warm runs on the same or overlapping "
                             "apps reuse it (implies --strategy "
                             "summary; foreign/corrupt caches are "
                             "detected and rebuilt, "
                             "docs/performance.md)")
    parser.add_argument("--rules", choices=("default", "extended"),
                        default="default",
                        help="security-rule set (extended adds open "
                             "redirect + response splitting)")
    parser.add_argument("--descriptor", metavar="JSON",
                        help="EJB deployment descriptor: JSON file "
                             "mapping JNDI names to bean classes")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    parser.add_argument("--sarif", action="store_true",
                        help="emit the report as SARIF 2.1.0")
    parser.add_argument("--dynamic", action="store_true",
                        help="also execute the program concretely and "
                             "report tainted sink events")
    parser.add_argument("--confirm", action="store_true",
                        help="replay each reported flow with partial "
                             "instrumentation and label it confirmed/"
                             "refuted/inconclusive "
                             "(docs/validation.md)")
    parser.add_argument("--confirm-fuel", type=int, default=200_000,
                        metavar="N",
                        help="interpreter step budget per confirmation "
                             "replay (default 200000)")
    parser.add_argument("--confirm-seed", type=int, default=1,
                        metavar="N",
                        help="payload seed for confirmation replays "
                             "(default 1)")
    parser.add_argument("--stats", action="store_true",
                        help="print solver kernel statistics "
                             "(propagations, cycle merges, phase times) "
                             "and the metrics-registry summary table")
    parser.add_argument("--trace", metavar="FILE",
                        help="write the span trace in Chrome trace-event "
                             "format (load in chrome://tracing)")
    parser.add_argument("--trace-jsonl", metavar="FILE",
                        help="write the span trace as JSONL "
                             "(one span per line)")
    parser.add_argument("--metrics", metavar="FILE",
                        help="write the metrics-registry snapshot as "
                             "JSON (enables peak-memory sampling)")
    parser.add_argument("--audit", metavar="FILE",
                        help="write the flow-provenance audit as JSON "
                             "(witness chain per reported flow)")
    parser.add_argument("--profile", metavar="FILE",
                        help="sample the run with the phase-attributed "
                             "profiler and write the collapsed-stack "
                             "file (render with flamegraph.pl)")
    parser.add_argument("--profile-interval", type=float,
                        default=0.004, metavar="SECONDS",
                        help="profiler sampling interval "
                             "(default 0.004)")
    parser.add_argument("--ledger", metavar="FILE",
                        help="append one run-ledger record (JSONL) for "
                             "this analysis; diff run history with "
                             "'python -m repro.obs.compare FILE'")
    parser.add_argument("--commit", metavar="SHA",
                        help="VCS commit id to record in the ledger "
                             "entry (the ledger never shells out to "
                             "git itself)")
    parser.add_argument("--progress", action="store_true",
                        help="print a live heartbeat line (phase, "
                             "worklist depth, rule/shard progress) to "
                             "stderr once per second")
    parser.add_argument("--max-cg-nodes", type=int, metavar="N",
                        help="override the call-graph node budget")
    parser.add_argument("--flow-length", type=int, metavar="N",
                        help="override the flow-length bound")
    parser.add_argument("--deadline", type=float, metavar="SECONDS",
                        help="wall-clock budget for the analysis; on "
                             "expiry the pipeline degrades and reports "
                             "partial results (docs/robustness.md)")
    parser.add_argument("--keep-going", action="store_true",
                        help="resilient mode: quarantine source files "
                             "that fail to compile and walk the "
                             "degradation ladder on budget/deadline "
                             "trips instead of aborting")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the taint sweep "
                             "(default 1 = serial; reports are "
                             "identical for every value)")
    parser.add_argument("--shard-grain", choices=("auto", "rule",
                                                  "entrypoint"),
                        default="auto",
                        help="parallel shard granularity: 'auto' "
                             "splits rules per entrypoint seed group "
                             "when semantics-preserving, 'rule' keeps "
                             "whole-rule shards, 'entrypoint' forces "
                             "the fine grain (only with --jobs > 1)")
    parser.add_argument("--checkpoint", metavar="DIR",
                        help="journal completed shards of the parallel "
                             "sweep under DIR; an interrupted run "
                             "restarted with the same DIR re-executes "
                             "only unfinished shards (--jobs > 1; "
                             "foreign/corrupt checkpoints are detected "
                             "and discarded, docs/robustness.md)")
    parser.add_argument("--max-shard-retries", type=int, default=2,
                        metavar="N",
                        help="failed attempts a shard may accumulate "
                             "before it is quarantined to a serial "
                             "in-parent re-run (default 2)")
    parser.add_argument("--max-pool-restarts", type=int, default=3,
                        metavar="N",
                        help="worker-pool rebuilds the run may spend on "
                             "crashes before quarantining every pending "
                             "shard (default 3)")
    parser.add_argument("--hang-seconds", type=float, metavar="SECONDS",
                        help="watchdog threshold: SIGKILL and retry a "
                             "worker whose shard has been in flight "
                             "this long (default: 4x the --deadline; "
                             "no deadline = watchdog off)")
    parser.add_argument("--fault-plan", metavar="FILE",
                        help="inject the scripted fault plan (JSON list "
                             "of {seam, at, action, ...} objects, "
                             "docs/robustness.md) into the run; exit "
                             "codes report the outcome as usual: 0 = "
                             "complete and clean, 1 = issues found or a "
                             "partial-* verdict (an absorbed fault), "
                             "2 = the run failed")
    return parser


def _frontend_diagnostics(paths: List[str],
                          sources: List[str]) -> List[str]:
    """Re-compile the corpus piecewise to attribute frontend errors.

    Lex/parse errors attribute exactly per file.  For lowering errors
    the program is regrown one file at a time; the file whose addition
    trips the error is reported (it may only be broken in combination
    with its predecessors, e.g. a duplicate class across files).
    """
    lines = []
    parsed = []
    for path, source in zip(paths, sources):
        try:
            parse(source)
            parsed.append((path, source))
        except SourceError as exc:
            kind = type(exc).__name__
            lines.append(f"{path}: [frontend] {kind}: {exc}")
    if not lines:
        for index in range(len(parsed)):
            try:
                lower_sources([src for _, src in parsed[:index + 1]])
            except SourceError as exc:
                kind = type(exc).__name__
                lines.append(f"{parsed[index][0]}: [frontend] "
                             f"{kind}: {exc}")
                break
    if not lines:
        lines.append("[frontend] SourceError: sources do not form a "
                     "consistent program (duplicate or conflicting "
                     "classes across files)")
    return lines


def _load_descriptor(path: Optional[str]) -> Optional[Dict[str, str]]:
    if path is None:
        return None
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise SystemExit("--descriptor must contain a JSON object")
    return {str(k): str(v) for k, v in data.items()}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    sources = []
    for path in args.files:
        with open(path, encoding="utf-8") as handle:
            sources.append(handle.read())
    descriptor = _load_descriptor(args.descriptor)

    config = CONFIG_FACTORIES[args.config]()
    if args.summary_cache:
        config = config.with_summary_cache(args.summary_cache)
    elif args.strategy is not None and args.strategy != config.slicing:
        from dataclasses import replace
        config = replace(config, slicing=args.strategy)
    overrides = {}
    if args.max_cg_nodes is not None:
        overrides["max_cg_nodes"] = args.max_cg_nodes
    if args.flow_length is not None:
        overrides["max_flow_length"] = args.flow_length
    if overrides:
        config = config.with_budget(**overrides)
    if args.deadline is not None or args.keep_going:
        config = config.with_resilience(deadline_seconds=args.deadline,
                                        resilient=args.keep_going)
    if args.jobs != 1:
        config = config.with_jobs(args.jobs,
                                  shard_grain=args.shard_grain)
    if args.checkpoint:
        config = config.with_checkpoint(args.checkpoint)
    if (args.max_shard_retries, args.max_pool_restarts,
            args.hang_seconds) != (2, 3, None):
        config = config.with_supervision(
            max_shard_retries=args.max_shard_retries,
            max_pool_restarts=args.max_pool_restarts,
            hang_seconds=args.hang_seconds)
    if args.confirm:
        config = config.with_confirm(fuel=args.confirm_fuel,
                                     seed=args.confirm_seed)
    if args.profile:
        config = config.with_profile(interval=args.profile_interval)
    plan = None
    if args.fault_plan:
        from .resilience import FaultPlan
        try:
            with open(args.fault_plan, encoding="utf-8") as handle:
                plan = FaultPlan.from_json(handle.read())
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"invalid fault plan {args.fault_plan}: {exc}",
                  file=sys.stderr)
            return 2
    rules = extended_rules() if args.rules == "extended" \
        else default_rules()

    obs = Observability(audit=args.audit is not None,
                        memory=args.metrics is not None,
                        progress=args.progress)
    if args.progress:
        obs.progress.start()
    try:
        result = TAJ(config, rules=rules, obs=obs,
                     faults=plan).analyze_sources(
            sources, deployment_descriptor=descriptor)
    except SourceError:
        # Strict mode (no --keep-going): a broken source aborts the
        # run.  Re-parse each file individually so every failure is
        # reported as a structured diagnostic with its file name.
        for line in _frontend_diagnostics(args.files, sources):
            print(line, file=sys.stderr)
        print("analysis failed: broken input (use --keep-going to "
              "quarantine broken files)", file=sys.stderr)
        return 2
    finally:
        obs.progress.stop()

    for diag in result.diagnostics:
        prefix = ""
        if diag.source_index is not None and \
                diag.source_index < len(args.files):
            prefix = f"{args.files[diag.source_index]}: "
        print(f"{prefix}{diag.render()}", file=sys.stderr)

    if args.trace:
        write_chrome_trace(obs.tracer, args.trace,
                           metadata={"config": config.name,
                                     "files": len(args.files)})
    if args.trace_jsonl:
        write_spans_jsonl(obs.tracer, args.trace_jsonl)
    if args.metrics:
        write_metrics_json(result.metrics, args.metrics)
    if args.audit:
        write_audit_json(obs.audit, args.audit)
    if args.profile and obs.profiler is not None:
        write_collapsed(obs.profiler.data, args.profile)
    if args.ledger:
        append_record(args.ledger,
                      record_from_result(result, config, sources,
                                         commit=args.commit))

    if args.sarif:
        from .reporting import render_sarif
        print(render_sarif(result.report, rules))
    elif args.json:
        payload = {
            "config": config.name,
            "issues": result.report.to_dicts() if result.report else [],
            "raw_flows": result.raw_flows,
            "call_graph_nodes": result.cg_nodes,
            "failed": result.failed,
            "truncated": result.truncated,
            "completeness": result.completeness,
            "seconds": round(result.times.total, 4),
        }
        if result.degradations:
            payload["degradations"] = [d.to_dict()
                                       for d in result.degradations]
        if result.diagnostics:
            payload["diagnostics"] = [d.to_dict()
                                      for d in result.diagnostics]
        if result.confirmation is not None:
            payload["confirmation"] = result.confirmation.to_payload()
        if args.stats:
            payload["stats"] = result.solver_stats()
        if result.profile is not None:
            payload["profile"] = result.profile
        print(json.dumps(payload, indent=2))
    else:
        if result.report is not None:
            print(render_text(result.report,
                              title=f"TAJ report ({config.name})"))
        else:
            print(f"TAJ report ({config.name}): no report — the run "
                  f"ended '{result.completeness}' before reporting "
                  f"({result.raw_flows} raw flows collected)")
        if result.completeness not in ("complete",):
            print(f"\ncompleteness: {result.completeness}")
            for deg in result.degradations:
                print(f"  degraded: {deg.phase} [{deg.trigger}] "
                      f"-> {deg.fallback}")
        if result.confirmation is not None:
            conf = result.confirmation
            counts = conf.counts()
            print(f"\ndynamic confirmation (seed {conf.seed}, "
                  f"{conf.replays} replays): "
                  + ", ".join(f"{counts[name]} {name}"
                              for name in counts))
            for verdict in conf.verdicts:
                detail = verdict.reason
                if verdict.fault_replay:
                    detail += ", fault-mode"
                print(f"  [{verdict.rule}] {verdict.source} -> "
                      f"{verdict.sink} ({verdict.sink_display}): "
                      f"{verdict.verdict} ({detail})")
        if result.failed:
            print(f"\nanalysis failed: {result.failure}")
        elif result.truncated:
            print("\nnote: a bound truncated the analysis "
                  "(results may be incomplete)")
        if args.stats:
            print("\nsolver statistics:")
            for name, value in result.solver_stats().items():
                if isinstance(value, float):
                    print(f"  {name:<26} {value:.4f}")
                else:
                    print(f"  {name:<26} {value}")
            print()
            print(render_metrics_table(result.metrics))
        if args.stats and result.profile is not None:
            prof = result.profile
            print(f"\nprofile ({prof['samples']} samples @ "
                  f"{prof['interval_seconds']}s):")
            for name, seconds in prof["phase_self_seconds"].items():
                print(f"  {name:<26} {seconds:.3f}s")
            for name, seconds in prof["hot_loop_seconds"].items():
                print(f"  [hot] {name:<20} {seconds:.3f}s")

    if args.dynamic:
        from .interp import run_dynamic
        summary = run_dynamic(sources, descriptor)
        print()
        print("dynamic execution:")
        if not summary.witnesses:
            print("  no tainted sink events observed")
        for witness in summary.witnesses:
            print(f"  tainted {witness.display} in "
                  f"{witness.sink_method} "
                  f"(labels: {', '.join(sorted(witness.labels))})")

    # Exit codes: 2 = the run failed (an essential phase died or a hard
    # budget aborted it); 1 = issues found, or the run was only partial
    # (a clean bill of health from a degraded run is not trustworthy);
    # 0 = complete run, no issues.
    if result.failed or result.completeness == "failed":
        return 2
    if result.issues or result.completeness != "complete":
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

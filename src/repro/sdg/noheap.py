"""The no-heap SDG, realized as a value-flow graph (VFG).

"A no-heap SDG [is] an SDG that elides all control- and data-dependence
edges reflecting flow through heap locations" (paper §3.2).  Local flow
is SSA def-use (flow-sensitive by construction); interprocedural flow is
parameter/return binding along the (context-collapsed) call graph, with
context sensitivity recovered later by RHS tabulation.

Static fields are the one exception to "no heap": they need no aliasing,
so static store→load edges are kept as pseudo-heap edges resolved by
field identity (exposed through the same load/store indexes the HSDG
uses for instance fields).

The builder also prepares every index the taint traversal needs:

* per-method local value edges, tagged with the mediating statement;
* call sites with resolved targets and value bindings;
* store/load sites grouped by field (for direct HSDG edges);
* per-method maps from a variable to the statements using it as a store
  value or as a call argument (for sink detection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..callgraph.graph import CallGraph
from ..ir import (ARRAY_CONTENTS, ArrayLoad, ArrayStore, Assign, BinOp,
                  Call, Cast, Const, EnterCatch, Instruction, Load, Method,
                  New, NewArray, Phi, Program, Return, Select, StaticLoad,
                  StaticStore, Store, StringOp, UnOp)
from .nodes import Fact, RET, Stmt, StmtRef

# Field marker for by-reference sources that taint an object's entire
# internal state (paper footnote 2); matches any field at aliased bases.
ANY_FIELD = "@any"


@dataclass
class LocalEdge:
    """A local def-use edge ``src -> dst`` mediated by ``stmt``."""

    dst: str
    stmt: Stmt


@dataclass
class CallSite:
    """A call statement with its resolved targets."""

    stmt: Stmt
    call: Call
    targets: List[str]            # callee method qnames with bodies
    native_targets: List[str]     # callee display names without bodies

    @property
    def key(self) -> Tuple[str, int]:
        return (self.stmt.ref.method, self.stmt.ref.iid)


@dataclass
class StoreSite:
    """A store statement: ``base.fld = value`` (or static / array)."""

    stmt: Stmt
    base: Optional[str]           # None for static stores
    fld: str
    value: str


@dataclass
class LoadSite:
    """A load statement: ``lhs = base.fld`` (or static / array)."""

    stmt: Stmt
    base: Optional[str]
    fld: str
    lhs: str


class NoHeapSDG:
    """VFG + indexes over the call-graph-reachable part of a program."""

    def __init__(self, program: Program, call_graph: CallGraph) -> None:
        self.program = program
        self.call_graph = call_graph
        # (method, var) -> outgoing local edges.
        self.local_succs: Dict[Fact, List[LocalEdge]] = {}
        # method -> var -> call sites using the var as argument/receiver
        # (with the positions it occupies).
        self.arg_uses: Dict[str, Dict[str, List[Tuple[CallSite,
                                                      List[int]]]]] = {}
        # method -> var -> store sites using it as the stored value.
        self.store_uses: Dict[str, Dict[str, List[StoreSite]]] = {}
        # field -> load sites (all reachable methods).
        self.loads_by_field: Dict[str, List[LoadSite]] = {}
        # field -> store sites.
        self.stores_by_field: Dict[str, List[StoreSite]] = {}
        # method -> its call sites.
        self.call_sites: Dict[str, List[CallSite]] = {}
        # method -> statements (for lookup by iid).
        self.stmts: Dict[StmtRef, Stmt] = {}
        # callee method qname -> call sites targeting it.
        self.callers_of: Dict[str, List[CallSite]] = {}
        # Call-site targets resolved from the call graph, context-collapsed.
        self._site_targets: Dict[Tuple[str, int], Set[str]] = {}
        self._build_site_targets()
        for qname in sorted(self._reachable_methods()):
            method = program.lookup_method(qname)
            if method is not None and not method.is_native:
                self._index_method(method)

    # -- construction -----------------------------------------------------------

    def _reachable_methods(self) -> Set[str]:
        return self.call_graph.reachable_methods() | \
            set(self.program.entrypoints)

    def _build_site_targets(self) -> None:
        for edge in self.call_graph.edges:
            self._site_targets.setdefault(
                (edge.caller.method, edge.call_iid), set()).add(
                    edge.callee.method)

    def _is_app(self, method: Method) -> bool:
        return self.program.is_application_method(method) and \
            not method.is_synthetic

    def _index_method(self, method: Method) -> None:
        qname = method.qname
        in_app = self._is_app(method)
        self.call_sites.setdefault(qname, [])
        self.arg_uses.setdefault(qname, {})
        self.store_uses.setdefault(qname, {})
        for instr in method.instructions():
            stmt = Stmt(StmtRef(qname, instr.iid), instr, in_app)
            self.stmts[stmt.ref] = stmt
            if isinstance(instr, (Assign, Cast, BinOp, UnOp, StringOp,
                                  Phi, Select)):
                defs = instr.defs()
                if defs:
                    for use in instr.value_uses():
                        self._local_edge(qname, use, defs[0], stmt)
            elif isinstance(instr, Return):
                if instr.value:
                    self._local_edge(qname, instr.value, RET, stmt)
            elif isinstance(instr, (Store, ArrayStore)):
                fld = instr.fld if isinstance(instr, Store) else \
                    ARRAY_CONTENTS
                site = StoreSite(stmt, instr.base, fld, instr.rhs)
                self.store_uses[qname].setdefault(instr.rhs, []).append(site)
                self.stores_by_field.setdefault(fld, []).append(site)
            elif isinstance(instr, StaticStore):
                fld = f"static:{instr.class_name}.{instr.fld}"
                site = StoreSite(stmt, None, fld, instr.rhs)
                self.store_uses[qname].setdefault(instr.rhs, []).append(site)
                self.stores_by_field.setdefault(fld, []).append(site)
            elif isinstance(instr, (Load, ArrayLoad)):
                fld = instr.fld if isinstance(instr, Load) else \
                    ARRAY_CONTENTS
                self.loads_by_field.setdefault(fld, []).append(
                    LoadSite(stmt, instr.base, fld, instr.lhs))
            elif isinstance(instr, StaticLoad):
                fld = f"static:{instr.class_name}.{instr.fld}"
                self.loads_by_field.setdefault(fld, []).append(
                    LoadSite(stmt, None, fld, instr.lhs))
            elif isinstance(instr, Call):
                self._index_call(method, instr, stmt)

    def _local_edge(self, method: str, src: str, dst: str,
                    stmt: Stmt) -> None:
        self.local_succs.setdefault(Fact(method, src), []).append(
            LocalEdge(dst, stmt))

    def _index_call(self, method: Method, call: Call, stmt: Stmt) -> None:
        qname = method.qname
        resolved = self._site_targets.get((qname, call.iid), set())
        targets: List[str] = []
        native_targets: List[str] = []
        for callee_qname in sorted(resolved):
            callee = self.program.lookup_method(callee_qname)
            if callee is None:
                continue
            if callee.is_native:
                native_targets.append(callee.display_name)
            else:
                targets.append(callee_qname)
        if not resolved:
            # Unresolved call (e.g. the callee was never analyzed, or the
            # target is a native we gave no summary): fall back to the
            # syntactic target for sink/sanitizer matching.
            callee = None
            if call.class_name:
                hierarchy_target = call.target_id()
                native_targets.append(hierarchy_target)
        site = CallSite(stmt, call, targets, native_targets)
        self.call_sites[qname].append(site)
        for target in targets:
            self.callers_of.setdefault(target, []).append(site)
        positions: Dict[str, List[int]] = {}
        for idx, arg in enumerate(call.args):
            positions.setdefault(arg, []).append(idx)
        if call.receiver:
            positions.setdefault(call.receiver, []).append(-1)
        for var, idxs in positions.items():
            self.arg_uses[qname].setdefault(var, []).append((site, idxs))

    # -- queries -------------------------------------------------------------

    def succs_of(self, fact: Fact) -> List[LocalEdge]:
        return self.local_succs.get(fact, [])

    def stores_using(self, method: str, var: str) -> List[StoreSite]:
        return self.store_uses.get(method, {}).get(var, [])

    def calls_using(self, method: str,
                    var: str) -> List[Tuple[CallSite, List[int]]]:
        return self.arg_uses.get(method, {}).get(var, [])

    def loads_of_field(self, fld: str) -> List[LoadSite]:
        if fld == ANY_FIELD:
            out: List[LoadSite] = []
            for sites in self.loads_by_field.values():
                out.extend(sites)
            return out
        return self.loads_by_field.get(fld, [])

    def stmt(self, ref: StmtRef) -> Optional[Stmt]:
        return self.stmts.get(ref)

    def bindings(self, site: CallSite,
                 target: str) -> List[Tuple[str, str]]:
        """(actual var, formal var) pairs for a call edge."""
        callee = self.program.lookup_method(target)
        if callee is None:
            return []
        pairs: List[Tuple[str, str]] = []
        if site.call.receiver and not callee.is_static:
            pairs.append((site.call.receiver, "this"))
        for actual, formal in zip(site.call.args, callee.param_names()):
            pairs.append((actual, formal))
        return pairs

    def return_bindings(self, site: CallSite,
                        target: str) -> List[Tuple[str, str]]:
        """(callee fact var, caller var) pairs for the return edge."""
        if site.call.lhs:
            return [(RET, site.call.lhs)]
        return []

"""Context-sensitive reachability over the no-heap SDG
(Reps-Horwitz-Sagiv tabulation, paper §3.2).

The engine is organized around *regions*.  A region is the set of facts
reachable inside one method from one entry fact:

* **balanced regions** ``(method, formal)`` — reached through a call
  edge; explored once and shared by every caller (these are the RHS
  summaries);
* **origin regions** ``(method, origin-id)`` — the demand-driven starts:
  a taint-source return value, or the target of a heap (store→load)
  transition.  Facts here may leave the method upward through *any*
  caller (unbalanced return), which is what makes the slice demand-driven
  from an arbitrary statement.

Interesting facts produce **hits**:

* ``sink``  — the fact is a vulnerable argument of a sink call;
* ``store`` — the fact is the stored value of a (static or instance)
  store statement: the HSDG driver turns this into direct heap edges and
  taint-carrier checks;
* ``exit``  — the fact is the method's return value: lifted at balanced
  callers as continued local flow (the RHS summary edge), and at origin
  regions as unbalanced returns to every caller.

Hits recorded in a balanced region are replayed to every (current and
future) incoming call edge, so per-origin traversals share all
exploration work.

Each fact carries small metadata, combined first-wins:

* ``steps`` — traversed-edge count relative to the region entry (feeds
  the flow-length bound of §6.2.2);
* ``crossing`` — the last application→library transition statement on
  the path (feeds LCP computation, §5);
* ``transitions`` — store→load heap hops on the witness path from the
  original taint source.  Witness-relative (not a slicer-global
  counter), so the value recorded on a flow never depends on what else
  was sliced alongside — a prerequisite for sharding a rule's seeds
  across workers without perturbing the report.

Per-rule behaviour (sanitizer cuts, sink detection) is injected via a
:class:`RuleAdapter`, so one engine serves every security rule.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (Callable, Deque, Dict, List, Optional, Set, Tuple,
                    TYPE_CHECKING)

from ..bounds import StateMeter
from .nodes import Fact, RET, Stmt, StmtRef

if TYPE_CHECKING:  # pragma: no cover — avoids a package import cycle
    from ..taint.rules import SecurityRule
from .noheap import CallSite, NoHeapSDG, StoreSite


@dataclass(frozen=True)
class RegionKey:
    """(method, entry): entry is a formal var or an origin id string."""

    method: str
    entry: str
    is_origin: bool = False


@dataclass
class Meta:
    """Path metadata relative to the region entry."""

    steps: int = 0
    crossing: Optional[StmtRef] = None
    transitions: int = 0

    def extend(self, steps: int = 1,
               crossing: Optional[StmtRef] = None) -> "Meta":
        return Meta(self.steps + steps,
                    crossing if crossing is not None else self.crossing,
                    self.transitions)


@dataclass
class Hit:
    """An interesting fact found inside a region."""

    kind: str                    # "sink" | "store" | "exit"
    stmt: Optional[Stmt]         # sink call / store statement
    store: Optional[StoreSite]   # for kind == "store"
    sink_display: Optional[str]  # matched sink method for kind == "sink"
    meta: Meta
    exit_var: str = RET          # for kind == "exit": which fact exits
                                 # (RET, or a CS heap-channel fact)
    # Store-base refinement (paper §4.1.1: the HSDG edge originates "in
    # the clone of the constructor corresponding to the allocation").
    # When the store's base pointer is a formal/this of its method, the
    # base is re-expressed as the matching actual at each call edge the
    # hit is replayed across; once it lands on an ordinary local,
    # ``eff_base`` pins (method, var) whose points-to set — precise at
    # the caller's allocation-site granularity — drives carrier checks
    # and direct heap edges.
    base_formal: Optional[str] = None
    eff_base: Optional[Tuple[str, str]] = None

    def signature(self) -> Tuple:
        ref = self.stmt.ref if self.stmt else None
        return (self.kind, ref, self.sink_display, self.exit_var,
                self.base_formal, self.eff_base)


@dataclass
class Incoming:
    """A call edge into a balanced region."""

    parent: RegionKey
    site: CallSite
    parent_meta: Meta            # meta of the actual at the call site
    crossing_at_call: Optional[StmtRef]


class RuleAdapter:
    """Per-rule classification of call sites, with caching."""

    def __init__(self, sdg: NoHeapSDG, rule: "SecurityRule") -> None:
        self.sdg = sdg
        self.rule = rule
        self._cache: Dict[Tuple[str, int], Tuple] = {}

    def classify(self, site: CallSite) -> Tuple[Optional[Tuple[str, ...]],
                                                bool, Optional[str]]:
        """Returns (vulnerable_params or None, is_sanitizer, sink_display).

        ``vulnerable_params`` of ``()`` means every parameter.
        """
        key = site.key
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        rule = self.rule
        sink_display: Optional[str] = None
        vulnerable: Optional[Tuple[int, ...]] = None
        sanitizer = False
        displays = list(site.native_targets)
        for target in site.targets:
            displays.append(target.rsplit("/", 1)[0])
        for display in displays:
            match = rule.sink_match(site.call, display)
            if match is not None:
                sink_display = match
                params = rule.sink_params(match)
                vulnerable = tuple(params) if params is not None else ()
            if rule.sanitizer_match_call(site.call, display) is not None:
                sanitizer = True
        result = (vulnerable if sink_display else None, sanitizer,
                  sink_display)
        self._cache[key] = result
        return result

    def is_sanitizer_strop(self, stmt: Stmt) -> bool:
        from ..ir import StringOp
        return isinstance(stmt.instr, StringOp) and \
            stmt.instr.method in self.rule.sanitizers


class Tabulator:
    """The region-based RHS engine."""

    def __init__(self, sdg: NoHeapSDG, adapter: RuleAdapter,
                 origin_handler: Callable[[str, Hit], None],
                 meter: Optional[StateMeter] = None,
                 skip_thread_edges: bool = False,
                 resilience: Optional[object] = None) -> None:
        self.sdg = sdg
        self.adapter = adapter
        self.origin_handler = origin_handler
        self.meter = meter
        self.skip_thread_edges = skip_thread_edges
        # Cooperative deadline / fault seam (repro.resilience), checked
        # once per worklist pop; DeadlineExceeded raised here unwinds to
        # the taint engine's per-rule ladder.
        self.resilience = resilience
        # region -> fact var -> Meta (first wins)
        self.facts: Dict[RegionKey, Dict[str, Meta]] = {}
        # region -> recorded hits
        self.hits: Dict[RegionKey, List[Hit]] = {}
        self._hit_sigs: Dict[RegionKey, Set[Tuple]] = {}
        # balanced region -> incoming call edges
        self.incomings: Dict[RegionKey, List[Incoming]] = {}
        self._replayed: Set[Tuple[int, int]] = set()  # (id(hit), id(inc))
        self._worklist: Deque[Tuple[RegionKey, str, Meta]] = deque()
        self._app_cache: Dict[str, bool] = {}

    # -- public API -----------------------------------------------------------

    def seed_origin(self, origin_id: str, method: str, var: str,
                    meta: Optional[Meta] = None) -> None:
        region = RegionKey(method, origin_id, is_origin=True)
        self._add_fact(region, var, meta or Meta())

    def run(self) -> None:
        resilience = self.resilience
        while self._worklist:
            if resilience is not None:
                resilience.check("tabulation.step", phase="taint")
            region, var, meta = self._worklist.popleft()
            self._process(region, var, meta)

    # -- helpers ----------------------------------------------------------------

    def _is_app_method(self, qname: str) -> bool:
        cached = self._app_cache.get(qname)
        if cached is None:
            method = self.sdg.program.lookup_method(qname)
            cached = bool(method) and \
                self.sdg.program.is_application_method(method) and \
                not method.is_synthetic
            self._app_cache[qname] = cached
        return cached

    def _add_fact(self, region: RegionKey, var: str, meta: Meta) -> None:
        known = self.facts.setdefault(region, {})
        if var in known:
            return
        known[var] = meta
        if self.meter is not None:
            self.meter.charge()
        self._worklist.append((region, var, meta))

    def _classify_base(self, method: str, base: Optional[str]
                       ) -> Tuple[Optional[str], Optional[Tuple[str, str]]]:
        """Split a store base into (unresolved formal, resolved base)."""
        if base is None:
            return None, None
        target = self.sdg.program.lookup_method(method)
        if target is not None and (base == "this" or
                                   base in target.param_names()):
            return base, None
        return None, (method, base)

    def _record_hit(self, region: RegionKey, hit: Hit) -> None:
        sigs = self._hit_sigs.setdefault(region, set())
        sig = hit.signature()
        if sig in sigs:
            return
        sigs.add(sig)
        self.hits.setdefault(region, []).append(hit)
        if region.is_origin:
            self._deliver_to_origin(region, hit)
        else:
            for incoming in self.incomings.get(region, []):
                self._replay(region, hit, incoming)

    def _deliver_to_origin(self, region: RegionKey, hit: Hit) -> None:
        if hit.kind == "exit":
            # Unbalanced return: flow proceeds to every caller.
            for site in self.sdg.callers_of.get(region.method, []):
                caller_region = RegionKey(site.stmt.method, region.entry,
                                          is_origin=True)
                if hit.exit_var != RET:
                    self._add_fact(caller_region, hit.exit_var,
                                   hit.meta.extend())
                elif site.call.lhs:
                    self._add_fact(caller_region, site.call.lhs,
                                   hit.meta.extend())
        else:
            self.origin_handler(region.entry, hit)

    def _replay(self, region: RegionKey, hit: Hit,
                incoming: Incoming) -> None:
        token = (id(hit), id(incoming))
        if token in self._replayed:
            return
        self._replayed.add(token)
        crossing = hit.meta.crossing or incoming.crossing_at_call or \
            incoming.parent_meta.crossing
        meta = Meta(incoming.parent_meta.steps + hit.meta.steps + 1,
                    crossing,
                    incoming.parent_meta.transitions + hit.meta.transitions)
        base_formal, eff_base = hit.base_formal, hit.eff_base
        if hit.kind == "store" and base_formal is not None and \
                eff_base is None:
            # Translate the formal base to the actual at this call edge.
            actual = None
            for act, formal in self.sdg.bindings(
                    incoming.site, region.method):
                if formal == base_formal:
                    actual = act
                    break
            if actual is not None:
                base_formal, eff_base = self._classify_base(
                    incoming.parent.method, actual)
            else:
                base_formal = None  # untranslatable: fall back to store
        lifted = Hit(hit.kind, hit.stmt, hit.store, hit.sink_display, meta,
                     hit.exit_var, base_formal, eff_base)
        if hit.kind == "exit":
            # RHS summary edge: continue in the caller — at the call-site
            # lhs for a returned value, or at the same heap-channel fact
            # for CS heap threading.
            if hit.exit_var != RET:
                self._add_fact(incoming.parent, hit.exit_var, meta)
            elif incoming.site.call.lhs:
                self._add_fact(incoming.parent, incoming.site.call.lhs,
                               meta)
        elif incoming.parent.is_origin:
            self._deliver_to_origin(incoming.parent, lifted)
        else:
            self._record_hit(incoming.parent, lifted)

    # -- fact processing ------------------------------------------------------------

    def _process(self, region: RegionKey, var: str, meta: Meta) -> None:
        method = region.method
        fact = Fact(method, var)
        if var.startswith("@f:") or var.startswith("@s:"):
            # CS heap-channel fact: besides flowing locally (below), the
            # heap state escapes to every caller.
            self._record_hit(region, Hit("exit", None, None, None,
                                         meta.extend(), exit_var=var))
        # 1. Local def-use edges (sanitizer StringOps cut the flow).
        for edge in self.sdg.succs_of(fact):
            if self.adapter.is_sanitizer_strop(edge.stmt):
                continue
            if edge.dst == RET:
                self._record_hit(region, Hit("exit", edge.stmt, None, None,
                                             meta.extend()))
            else:
                self._add_fact(region, edge.dst, meta.extend())
        # 2. Store statements using this fact as the stored value.
        for store in self.sdg.stores_using(method, var):
            base_formal, eff_base = self._classify_base(method, store.base)
            self._record_hit(region, Hit("store", store.stmt, store, None,
                                         meta.extend(),
                                         base_formal=base_formal,
                                         eff_base=eff_base))
        # 3. Call sites using this fact as argument or receiver.
        for site, positions in self.sdg.calls_using(method, var):
            self._process_call_use(region, var, meta, site, positions)

    def _process_call_use(self, region: RegionKey, var: str, meta: Meta,
                          site: CallSite, positions: List[int]) -> None:
        vulnerable, sanitizer, sink_display = self.adapter.classify(site)
        if sink_display is not None:
            if vulnerable == () or \
                    any(p in vulnerable for p in positions if p >= 0):
                self._record_hit(region, Hit(
                    "sink", site.stmt, None, sink_display, meta.extend()))
        if sanitizer:
            return
        if sink_display is not None:
            # Paper §3.2: no successor edges for sink call statements.
            return
        descended = False
        for target in site.targets:
            if self.skip_thread_edges and self._is_thread_edge(site, target):
                continue
            for actual, formal in self.sdg.bindings(site, target):
                if actual != var:
                    continue
                descended = True
                self._descend(region, meta, site, target, formal)
        if not descended and site.native_targets and site.call.lhs and \
                var != site.call.receiver and not var.startswith("@"):
            # Conservative default for unmodeled natives: args flow to
            # the return value.
            self._add_fact(region, site.call.lhs, meta.extend())

    def _is_thread_edge(self, site: CallSite, target: str) -> bool:
        return site.call.method_name == "start" and \
            target.endswith(".run/0")

    def _descend(self, region: RegionKey, meta: Meta, site: CallSite,
                 target: str, formal: str) -> None:
        callee_region = RegionKey(target, formal)
        crossing_at_call = None
        if site.stmt.in_application and not self._is_app_method(target):
            crossing_at_call = site.stmt.ref
        incoming = Incoming(region, site, meta, crossing_at_call)
        self.incomings.setdefault(callee_region, []).append(incoming)
        self._add_fact(callee_region, formal, Meta())
        for hit in list(self.hits.get(callee_region, [])):
            self._replay(callee_region, hit, incoming)

"""Direct (store→load) HSDG edges (paper §3.2).

"A direct edge connects a store to a load and represents a data
dependence computed by a preliminary pointer analysis" — i.e. the store
and load access the same field and their base pointers may alias.  These
edges realize the flow-insensitive heap half of hybrid thin slicing; the
flow- and context-sensitive local half is the tabulation engine.

Static fields need no aliasing: store and load match on field identity.
The ``@any`` field marker (by-reference sources, paper footnote 2)
matches loads of every field on an aliased base.

The may-alias test ``base_pts ∩ load_pts ≠ ∅`` runs once per
(store, load) pair per rule, which makes it one of slicing's hottest
predicates.  Against the optimised solver the context-collapsed sets
are cached as **bitset ints** and the test is a single big-int AND;
solvers without a dense ID space (the seed baseline) fall back to the
frozenset view so the differential pipeline still runs end to end.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..pointer.keys import InstanceKey
from .nodes import StmtRef
from .noheap import ANY_FIELD, LoadSite, NoHeapSDG, StoreSite


class DirectEdges:
    """Demand store→load matching over a pointer-analysis solution."""

    def __init__(self, sdg: NoHeapSDG, analysis: object) -> None:
        self.sdg = sdg
        self.analysis = analysis
        self._pts_cache: Dict[Tuple[str, str], FrozenSet[InstanceKey]] = {}
        self._bits_cache: Dict[Tuple[str, str], int] = {}
        # Bitset fast path (optimised solver only).
        self._bits_fn = getattr(analysis, "points_to_var_bits", None)

    def points_to(self, method: str, var: str) -> FrozenSet[InstanceKey]:
        """Context-collapsed points-to set of a local (cached)."""
        key = (method, var)
        cached = self._pts_cache.get(key)
        if cached is None:
            cached = frozenset(self.analysis.points_to_var(method, var))
            self._pts_cache[key] = cached
        return cached

    def points_to_bits(self, method: str, var: str) -> int:
        """Context-collapsed points-to set as a bitset (cached); only
        valid when the backing solver exposes a dense ID space."""
        key = (method, var)
        cached = self._bits_cache.get(key)
        if cached is None:
            cached = self._bits_fn(method, var)
            self._bits_cache[key] = cached
        return cached

    def loads_for_store(self, store: StoreSite,
                        eff_base: Optional[Tuple[str, str]] = None
                        ) -> List[LoadSite]:
        """All load statements the store may flow to.

        ``eff_base`` — an optional (method, var) whose points-to set
        replaces the store base's own: the clone-precise base resolved by
        hit replay (see :mod:`repro.sdg.tabulation`).
        """
        if store.base is None:
            # Static field: match by field identity.
            return list(self.sdg.loads_of_field(store.fld))
        base = eff_base if eff_base is not None \
            else (store.stmt.method, store.base)
        if self._bits_fn is not None:
            base_bits = self.points_to_bits(*base)
            if not base_bits:
                return []
            points_to_bits = self.points_to_bits
            return [load for load in self.sdg.loads_of_field(store.fld)
                    if load.base is not None
                    and base_bits & points_to_bits(load.stmt.method,
                                                   load.base)]
        base_pts = self.points_to(*base)
        if not base_pts:
            return []
        out: List[LoadSite] = []
        for load in self.sdg.loads_of_field(store.fld):
            if load.base is None:
                continue
            load_pts = self.points_to(load.stmt.method, load.base)
            if base_pts & load_pts:
                out.append(load)
        return out

    def loads_for_tainted_object(self, method: str,
                                 var: str) -> List[LoadSite]:
        """Loads of *any* field of objects aliased with ``var`` — used
        for by-reference sources that taint an object's whole state."""
        if self._bits_fn is not None:
            base_bits = self.points_to_bits(method, var)
            if not base_bits:
                return []
            points_to_bits = self.points_to_bits
            return [load for load in self.sdg.loads_of_field(ANY_FIELD)
                    if load.base is not None
                    and base_bits & points_to_bits(load.stmt.method,
                                                   load.base)]
        base_pts = self.points_to(method, var)
        if not base_pts:
            return []
        out: List[LoadSite] = []
        for load in self.sdg.loads_of_field(ANY_FIELD):
            if load.base is None:
                continue
            if base_pts & self.points_to(load.stmt.method, load.base):
                out.append(load)
        return out

    def all_store_sites(self) -> List[StoreSite]:
        out: List[StoreSite] = []
        for sites in self.sdg.stores_by_field.values():
            out.extend(sites)
        return out

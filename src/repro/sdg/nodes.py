"""Node vocabulary for the dependence graphs.

The no-heap SDG is represented as a *value-flow graph* (VFG) over facts:

* ``Fact(method, var)`` — an SSA value in a method (context-free; the
  RHS tabulation recovers context sensitivity by call/return matching);
* the special variable ``RET`` stands for a method's return value.

HSDG nodes are statements: ``StmtRef(method, iid)`` with the instruction
attached.  Store statements, load statements, and source/sink call
statements are the node kinds the paper's Figure 2 shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir import Instruction

RET = "<ret>"


@dataclass(frozen=True)
class Fact:
    """A value node of the no-heap SDG: an SSA variable in a method."""

    method: str
    var: str

    def __str__(self) -> str:
        return f"{self.method}::{self.var}"


@dataclass(frozen=True)
class StmtRef:
    """A statement node, identified by method qname and instruction id."""

    method: str
    iid: int

    def __str__(self) -> str:
        return f"{self.method}@{self.iid}"


@dataclass
class Stmt:
    """A statement node with its instruction and source classification."""

    ref: StmtRef
    instr: Instruction
    in_application: bool    # application vs library code (drives LCP, §5)

    @property
    def method(self) -> str:
        return self.ref.method

    @property
    def line(self) -> int:
        return self.instr.line

    def __hash__(self) -> int:
        return hash(self.ref)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Stmt) and self.ref == other.ref

"""Dependence graphs: the no-heap SDG, RHS tabulation, and HSDG edges."""

from .hsdg import DirectEdges
from .nodes import Fact, RET, Stmt, StmtRef
from .noheap import (ANY_FIELD, CallSite, LoadSite, LocalEdge, NoHeapSDG,
                     StoreSite)
from .tabulation import Hit, Incoming, Meta, RegionKey, RuleAdapter, \
    Tabulator

__all__ = [
    "ANY_FIELD", "CallSite", "DirectEdges", "Fact", "Hit", "Incoming",
    "LoadSite", "LocalEdge", "Meta", "NoHeapSDG", "RegionKey", "RET",
    "RuleAdapter", "Stmt", "StmtRef", "StoreSite", "Tabulator",
]

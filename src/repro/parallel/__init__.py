"""Persistent-worker parallel infrastructure for the taint sweep.

``repro.parallel`` turns the fork-per-sweep design of the original
``--jobs`` implementation into a pool that pays its setup cost once:

* :mod:`.shards` — the deterministic shard plan (per-entrypoint seed
  groups where safe, whole rules where budget semantics forbid
  splitting);
* :mod:`.snapshot` — the one-time serialized engine state (interned
  key table, bitset points-to, SDG) shipped to each worker at startup,
  under any multiprocessing start method;
* :mod:`.pool` — the executor wrapper: dynamic dispatch of shard
  indices, deterministic (shard-ordered) outcome collection;
* :mod:`.supervisor` — crash supervision: heartbeat watchdog, pool
  rebuild with backoff, shard retry budgets, poison-shard quarantine —
  what keeps one dead worker from killing the run;
* :mod:`.checkpoint` — the opt-in on-disk shard journal behind
  ``--checkpoint``: an interrupted sweep resumes re-running only the
  shards it never finished.

The taint engine (:mod:`repro.taint.engine`) is the only intended
consumer; ``docs/performance.md`` ("When parallelism pays") describes
the architecture and its cost model, ``docs/robustness.md`` the
supervision and checkpoint semantics.
"""

from .checkpoint import CheckpointJournal, plan_fingerprint
from .pool import PersistentWorkerPool, PoolLease, pick_start_method
from .shards import GRAINS, Shard, plan_shards, splittable
from .snapshot import (EngineSnapshot, SnapshotError, WorkerContext,
                       WorkerInitError)
from .supervisor import PoolSupervisor, SupervisionPolicy, SupervisionStats

__all__ = [
    "CheckpointJournal", "EngineSnapshot", "GRAINS",
    "PersistentWorkerPool", "PoolLease", "PoolSupervisor", "Shard",
    "SnapshotError",
    "SupervisionPolicy", "SupervisionStats", "WorkerContext",
    "WorkerInitError", "pick_start_method", "plan_fingerprint",
    "plan_shards", "splittable",
]

"""Shard planning for the parallel taint sweep.

A *shard* is the unit of work a pool worker executes: one security rule
restricted to a chunk of seed groups (a seed group is all taint sources
enumerated inside one containing method — the per-entrypoint grain), or
a whole rule when the rule cannot be split.

Why the seed group is a safe grain: a flow's identity
(:meth:`~repro.taint.flows.TaintFlow.key`) includes its source, and the
source is always the seed's statement — so flows partition exactly by
seed and disjoint seed shards can never collide in the dedupe.  Flow
metadata (steps, crossing, heap transitions) is witness-relative
(:class:`~repro.sdg.tabulation.Meta`), so what else is sliced alongside
a seed never changes its flows.  The union of a rule's seed-group
slices therefore equals the whole-rule slice.

What makes a rule unsplittable — shared mutable budget state:

* the **cs** strategy: one state meter spans the rule's whole slice
  (heap channels are charged up front), so splitting would change where
  the paper's OOM emulation trips;
* an armed ``max_state_units`` or ``max_heap_transitions`` budget: both
  are slicer-global counters, and per-shard counters would move the
  truncation point relative to the serial reference.

Those rules get one whole-rule shard (the reference semantics), which
is also what keeps serial and ``--jobs N`` reports byte-identical under
every budget configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..bounds import Budget
from ..slicing.base import enumerate_sources

GRAINS = ("auto", "rule", "entrypoint")

# Seed-group chunks per rule at the fine grain.  Bounding the shard
# count bounds the per-task dispatch overhead (one future + one pickled
# outcome per shard); 8 chunks per rule keeps any realistic --jobs busy
# while staying coarse enough that IPC never dominates.  The plan is
# still deterministic for every value (tests assert byte-identical
# reports across values).
MAX_SHARDS_PER_RULE = 8


@dataclass(frozen=True)
class Shard:
    """One pool task: ``rules[rule_index]`` restricted to the seeds
    whose containing methods are in ``groups`` (``None`` = every seed).
    ``index`` is the dense shard id — the deterministic merge order."""

    index: int
    rule_index: int
    rule: str
    groups: Optional[Tuple[str, ...]] = None


def splittable(strategy: str, budget: Budget) -> bool:
    """Whether per-seed-group shards preserve whole-rule semantics."""
    return (strategy != "cs"
            and budget.max_state_units is None
            and budget.max_heap_transitions is None)


def plan_shards(sdg, rules: List, strategy: str, budget: Budget,
                grain: str = "auto",
                max_shards_per_rule: int = MAX_SHARDS_PER_RULE
                ) -> List[Shard]:
    """Deterministic shard plan, rule-major, groups sorted by method.

    ``grain`` — ``"rule"`` forces whole-rule shards (PR 4 semantics),
    ``"entrypoint"`` forces seed-group shards where a rule has more
    than one group, ``"auto"`` picks seed groups exactly when
    :func:`splittable` holds.  At the fine grain a rule's sorted seed
    groups are cut into at most ``max_shards_per_rule`` contiguous
    chunks.  The plan depends only on the SDG, the rules, and the
    configuration — never on worker count or timing — and the merged
    report is identical for every chunk count (seed-shard unions are
    exact, see module docstring).
    """
    if grain not in GRAINS:
        raise ValueError(f"unknown shard grain {grain!r}")
    if max_shards_per_rule < 1:
        raise ValueError("max_shards_per_rule must be >= 1, got "
                         f"{max_shards_per_rule}")
    fine = grain == "entrypoint" or (grain == "auto"
                                     and splittable(strategy, budget))
    shards: List[Shard] = []
    for rule_index, rule in enumerate(rules):
        chunks: List[Optional[Tuple[str, ...]]] = [None]
        if fine:
            methods = sorted({seed.stmt.ref.method
                              for seed in enumerate_sources(sdg, rule)})
            if len(methods) > 1:
                count = min(len(methods), max_shards_per_rule)
                chunks = [tuple(methods[i * len(methods) // count:
                                        (i + 1) * len(methods) // count])
                          for i in range(count)]
        for groups in chunks:
            shards.append(Shard(len(shards), rule_index, rule.name,
                                groups))
    return shards

"""One-time serialized engine snapshot for the persistent worker pool.

The parent builds an :class:`EngineSnapshot` once per analysis run: the
interned instance-key table, the SDG, the direct (store→load) edges,
the heap graph, the rules, the budget/strategy/resilience
configuration, and the shard plan — one pickle blob.  Each pool worker
receives the blob exactly once, at process start, and answers any
number of shard tasks against the cached state (:class:`WorkerContext`).

Spawn safety: points-to sets are bitset ints whose bit positions are
dense instance-key IDs assigned at intern time
(:mod:`repro.pointer.keys`).  The blob therefore pickles the parent's
instance-key table *first*: unpickling re-interns the keys in table
order, so a fresh (spawned) process assigns every key the same index —
and every shipped bitset decodes to the same objects.  In a forked
process the inherited intern table already matches and re-interning is
an identity lookup, so one code path serves both start methods.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import os
import pickle
import signal
import time
from typing import List, Optional

from ..pointer import keys as _keys
from ..resilience.faults import Fault, WorkerCrashError


class SnapshotError(TypeError):
    """The engine's state cannot be serialized for worker shipping
    (e.g. a foreign solver family or a non-picklable injected clock).
    The engine falls back to the serial reference path."""


class WorkerInitError(SnapshotError):
    """Shard execution was attempted in a worker whose pool initializer
    never completed (``_WORKER_CONTEXT`` is ``None``).

    Without this the shard dies with a bare ``AttributeError`` on the
    ``None`` context — undiagnosable from the parent.  The supervisor
    treats it like a broken pool: rebuild and retry."""


# How long a scripted ``hang-worker`` wedges before giving up on the
# watchdog and exiting anyway — a backstop so an unsupervised pool (or a
# watchdog that is off) cannot deadlock a test run forever.
_HANG_LIMIT_SECONDS = 120.0


def execute_process_fault(fault: Fault) -> None:
    """Fire a matched ``kill-worker``/``hang-worker`` fault *in a worker
    process*.  In the parent (serial quarantine re-run, or a test
    calling :meth:`WorkerContext.run_shard` in-process) the crash is
    reported as :class:`~repro.resilience.WorkerCrashError` instead —
    actually dying would take the whole analysis with it."""
    if mp.parent_process() is None:
        raise WorkerCrashError(
            fault.message
            or f"scripted {fault.action} at {fault.seam}#{fault.at}")
    if fault.action == "kill-worker":
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault.action == "hang-worker":
        # Wedge without cooperating: no seam checks, no returns — only
        # the parent's heartbeat watchdog (or the backstop) ends this.
        limit = time.monotonic() + _HANG_LIMIT_SECONDS
        while time.monotonic() < limit:
            time.sleep(0.05)
        os._exit(3)


class EngineSnapshot:
    """The picklable one-time shipment: built once, sent to each worker
    at pool startup."""

    def __init__(self, engine, shards: List,
                 collect_metrics: bool = False) -> None:
        started = time.perf_counter()
        state = {
            "sdg": engine.sdg,
            "direct": engine.direct,
            "heap_graph": engine.heap_graph,
            "rules": list(engine.rules),
            "budget": engine.budget,
            "strategy": engine.strategy,
            "resilience": engine.resilience,
            "shards": shards,
            "collect_metrics": collect_metrics,
            # When the parent run carries a sampling profiler, workers
            # profile their shards at the same interval and ship the
            # samples home on the outcome (POSIX itimers are not
            # inherited across fork, so each worker installs its own).
            "profile_interval": _profile_interval(engine),
        }
        try:
            # The instance-key table rides first so bit positions
            # reconstruct identically in spawned workers (module doc).
            self.blob = pickle.dumps(
                (list(_keys._INSTANCE_KEYS), state),
                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise SnapshotError(str(exc)) from exc
        self.nbytes = len(self.blob)
        self.build_seconds = time.perf_counter() - started


def _profile_interval(engine) -> Optional[float]:
    """The parent profiler's sampling interval, or ``None`` when the
    run is not being profiled."""
    profiler = getattr(engine.obs, "profiler", None)
    if profiler is None or not getattr(profiler, "running", False):
        return None
    return profiler.interval


class WorkerContext:
    """Per-worker cached state: one engine rebuilt from the snapshot,
    reused for every shard this process is handed."""

    def __init__(self, blob: bytes) -> None:
        started = time.perf_counter()
        _table, state = pickle.loads(blob)
        # Deferred import: repro.taint.engine imports this package
        # lazily from its parallel path, so the module level here must
        # not import it back.
        from ..taint.engine import TaintEngine
        self.engine = TaintEngine(
            state["sdg"], state["direct"], state["heap_graph"],
            state["rules"], state["budget"],
            strategy=state["strategy"])
        self.shards = state["shards"]
        self.collect_metrics = state["collect_metrics"]
        self.profile_interval = state.get("profile_interval")
        # The shipped context is the pristine template; every shard
        # gets a fresh copy so ladder/fault/deadline bookkeeping is a
        # function of the shard alone, not of which worker ran what
        # before it — the determinism dynamic dispatch needs.
        self._resilience_template = state["resilience"]
        self._rules = state["rules"]
        self._seed_groups: dict = {}
        # A CS shard that walks the ladder disables the SDG's heap
        # channels in-place; remember the snapshot-time setting so the
        # next shard this worker runs starts from pristine state.
        self._channels_enabled = getattr(
            self.engine.sdg, "channels_enabled", None)
        self.init_seconds = time.perf_counter() - started
        self._first_shard = True

    def _seeds_for(self, rule_index: int, groups: tuple) -> List:
        """The rule's seeds restricted to a chunk of containing
        methods; enumerated once per rule per worker, then cached."""
        by_method = self._seed_groups.get(rule_index)
        if by_method is None:
            from ..slicing.base import enumerate_sources
            by_method = {}
            rule = self._rules[rule_index]
            for seed in enumerate_sources(self.engine.sdg, rule):
                by_method.setdefault(seed.stmt.ref.method,
                                     []).append(seed)
            self._seed_groups[rule_index] = by_method
        return [seed for method in groups
                for seed in by_method.get(method, [])]

    def run_shard(self, index: int, attempt: int = 0):
        shard = self.shards[index]
        template = self._resilience_template
        injector = template.injector if template is not None else None
        if injector is not None:
            # Scripted crash modes fire against the *template* injector
            # (positional matching — no per-shard counters to reset), so
            # a plan replays identically no matter which worker gets the
            # shard or how many retries preceded this attempt.
            fault = injector.process_fault("worker.shard", index, attempt)
            if fault is not None:
                if fault.action == "corrupt-outcome":
                    # Transport-level garbage: whatever compute would
                    # have produced is replaced by a non-ShardOutcome
                    # the parent must detect and retry.
                    return fault.message or f"corrupt-outcome:{index}"
                execute_process_fault(fault)
        self.engine.resilience = \
            copy.deepcopy(template) if template is not None else None
        if self._channels_enabled is not None:
            self.engine.sdg.channels_enabled = self._channels_enabled
        seeds = None
        if shard.groups is not None:
            seeds = self._seeds_for(shard.rule_index, shard.groups)
        rule = self._rules[shard.rule_index]
        from ..obs.profile import profile_shard
        profiler = profile_shard(self.profile_interval)
        try:
            outcome = self.engine._slice_shard(shard, rule, seeds,
                                               self.collect_metrics)
        finally:
            if profiler is not None:
                profiler.stop()
        if profiler is not None:
            outcome.profile = profiler.data
        shard_res = self.engine.resilience
        if (shard_res is not None and shard_res.deadline is not None
                and shard_res.deadline.tripped):
            # A forced (injected) expiry happened in *this* process; the
            # parent's clock never saw it, so it rides the outcome home.
            outcome.deadline_tripped = True
        outcome.pid = os.getpid()
        if self._first_shard:
            outcome.init_seconds = self.init_seconds
            self._first_shard = False
        return outcome

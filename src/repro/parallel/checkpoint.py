"""The opt-in shard checkpoint journal behind ``--checkpoint DIR``.

A parallel sweep over a big corpus can die halfway — machine reboot,
OOM kill of the *parent*, an operator ^C.  Cooperative resilience and
pool supervision can't help with that: the process that held the
partial results is gone.  The journal makes the results outlive it:
every completed :class:`~repro.taint.engine.ShardOutcome` is appended
to ``shards.jsonl`` (the outcome pickled with the snapshot protocol —
interned keys re-intern on load exactly as they do crossing a worker
boundary — then base64-wrapped into one JSON line), and a restarted run
re-executes only the shards with no journaled outcome.

Safety model — a checkpoint must never change *what* is computed, only
*whether* it is recomputed:

* ``meta.json`` pins a **fingerprint** (config knobs + corpus hash +
  rule names, built by the caller from :mod:`repro.obs.ledger`
  primitives) and a **plan hash** (the exact shard list).  A journal
  written by any other analysis — different sources, different knobs,
  different shard plan — is *foreign*: detected, discarded, and
  restarted from scratch rather than trusted.
* Appends are atomic at line granularity (one ``write`` of one
  newline-terminated line, same discipline as the run ledger); a
  parent killed mid-append leaves a truncated final line the reader
  skips (the tolerance contract of
  :func:`repro.obs.ledger.read_ledger`).
* A record that fails to unpickle is dropped (its shard simply
  re-runs); corruption can cost time, never correctness.

Only *completed* outcomes are journaled: a failed or degraded shard
re-runs on resume, so a transient crash in run 1 does not become a
permanent degradation replayed into every later run.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import pickle
from typing import Dict, List, Optional

from ..obs.ledger import sha256_fingerprint

CHECKPOINT_SCHEMA = 1
META_NAME = "meta.json"
SHARDS_NAME = "shards.jsonl"


def plan_fingerprint(shards: List) -> str:
    """Digest of the shard plan: shard count, per-shard rule and seed
    groups.  Any change to planning (grain, shards-per-rule, rule set)
    moves it, so a resumed run can never stitch outcomes from one plan
    into another."""
    return sha256_fingerprint([
        [shard.index, shard.rule_index, shard.rule,
         list(shard.groups) if shard.groups is not None else None]
        for shard in shards])


class CheckpointJournal:
    """One journal directory for one (config, corpus, rules) identity.

    Protocol: construct with the identity fingerprint, call
    :meth:`resume` with the current plan to learn which shards are
    already done, then :meth:`record` each fresh completed outcome.
    """

    def __init__(self, directory: str, fingerprint: str) -> None:
        self.directory = directory
        self.fingerprint = fingerprint
        self.meta_path = os.path.join(directory, META_NAME)
        self.shards_path = os.path.join(directory, SHARDS_NAME)
        # Resume diagnostics, surfaced via taint.pool.* counters and
        # the chaos harness.
        self.resumed = 0
        self.skipped = 0
        self.reset_reason: Optional[str] = None
        os.makedirs(directory, exist_ok=True)

    # -- resume --------------------------------------------------------------

    def resume(self, plan_hash: str, count: int) -> Dict[int, object]:
        """Outcomes journaled by a compatible previous run, keyed by
        shard index.  An absent, foreign, or corrupt journal resets the
        directory and returns ``{}`` — a full run, never a wrong one."""
        meta = self._load_meta()
        if meta is None:
            self._reset(plan_hash, count)
            return {}
        if (meta.get("schema") != CHECKPOINT_SCHEMA
                or meta.get("fingerprint") != self.fingerprint
                or meta.get("plan_hash") != plan_hash
                or meta.get("count") != count):
            self.reset_reason = (
                "foreign checkpoint (fingerprint/plan mismatch)"
                if meta.get("schema") == CHECKPOINT_SCHEMA
                else f"unsupported checkpoint schema {meta.get('schema')!r}")
            self._reset(plan_hash, count)
            return {}
        outcomes: Dict[int, object] = {}
        for row in self._read_rows():
            index = row.get("index")
            blob = row.get("blob")
            if not isinstance(index, int) or not (0 <= index < count) \
                    or not isinstance(blob, str):
                self.skipped += 1
                continue
            try:
                outcome = pickle.loads(
                    base64.b64decode(blob.encode("ascii")))
            except (binascii.Error, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError,
                    MemoryError, TypeError, ValueError):
                # Undecodable record: this shard just re-runs.
                self.skipped += 1
                continue
            if getattr(outcome, "index", None) != index \
                    or not getattr(outcome, "completed", False):
                self.skipped += 1
                continue
            outcomes[index] = outcome
        self.resumed = len(outcomes)
        return outcomes

    def _load_meta(self) -> Optional[Dict]:
        try:
            with open(self.meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) else None

    def _read_rows(self) -> List[Dict]:
        """Journal rows, with the run-ledger tail tolerance: a crash
        mid-append leaves an unterminated final line, which never
        finished existing and is skipped."""
        try:
            with open(self.shards_path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return []
        rows: List[Dict] = []
        lines = text.split("\n")
        truncated_tail = lines[-1].strip() != ""
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                if not (truncated_tail and lineno == len(lines)):
                    self.skipped += 1
                continue
            if isinstance(row, dict) \
                    and row.get("schema") == CHECKPOINT_SCHEMA:
                rows.append(row)
            else:
                self.skipped += 1
        return rows

    def _reset(self, plan_hash: str, count: int) -> None:
        for path in (self.shards_path,):
            try:
                os.remove(path)
            except OSError:
                pass
        meta = {"schema": CHECKPOINT_SCHEMA,
                "fingerprint": self.fingerprint,
                "plan_hash": plan_hash, "count": count}
        with open(self.meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, sort_keys=True)
            handle.write("\n")

    # -- append --------------------------------------------------------------

    def record(self, outcome) -> None:
        """Journal one completed outcome (one atomic line append).
        Incomplete/failed outcomes are not journaled — they must re-run
        on resume."""
        if not getattr(outcome, "completed", False):
            return
        blob = base64.b64encode(
            pickle.dumps(outcome,
                         protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")
        line = json.dumps({"schema": CHECKPOINT_SCHEMA,
                           "index": outcome.index, "blob": blob},
                          sort_keys=True)
        with open(self.shards_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

"""Crash supervision for the persistent worker pool.

:class:`~.pool.PersistentWorkerPool` executes; this module decides what
happens when execution *dies*.  A ``ProcessPoolExecutor`` has brutal
failure semantics: one SIGKILLed/OOM-killed/segfaulted worker (or a
failed initializer) breaks the whole executor, every outstanding future
raises ``BrokenProcessPool``, and — crucially — the executor cannot say
*which* shard killed the worker.  The supervisor reconstructs that
attribution from the shared heartbeat array (a shard whose start stamp
is set but whose outcome never arrived was in flight on some worker
when the pool died), then applies policy:

* **retry with backoff** — blamed shards are requeued against a rebuilt
  pool (the snapshot blob is cached, so a rebuild costs only process
  startup), after an exponential-backoff-with-jitter pause; the blame
  is necessarily a superset of the guilty shard (other shards running
  concurrently on sibling workers are blamed too), which is harmless:
  re-running a shard is deterministic, and the worst case is an
  innocent shard reaching quarantine — where the parent re-runs it with
  identical results.
* **hang watchdog** — workers stamp a monotonic start time per shard;
  a shard in flight longer than the policy's hang threshold gets its
  stamped worker pid SIGKILLed, converting an invisible wedge into an
  ordinary retryable crash.
* **quarantine** — a shard that crosses ``max_shard_retries`` failed
  attempts, or any shard still pending once ``max_pool_restarts`` pool
  rebuilds are spent, is handed back to the caller for a serial re-run
  in the parent (``TaintEngine._run_quarantined``), where the existing
  degradation ladder — not process supervision — decides its fate.
* **outcome validation** — a worker that returns something that is not
  a :class:`~repro.taint.engine.ShardOutcome` for its shard (scripted
  ``corrupt-outcome``, or real pickle corruption) is retried in place;
  the pool itself is healthy, only the payload was garbage.

Everything the supervisor does is bookkept in :class:`SupervisionStats`
and surfaced as ``taint.pool.*`` counters plus ``taint.pool.retry``
spans (``docs/robustness.md``), so a run that crashed and recovered is
distinguishable from one that never crashed — even though their reports
are byte-identical.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import random
import signal
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from .pool import PersistentWorkerPool, pick_start_method
from .snapshot import EngineSnapshot, WorkerInitError


@dataclass
class SupervisionPolicy:
    """Retry/restart/watchdog knobs (CLI: ``--max-shard-retries``,
    ``--max-pool-restarts``, ``--hang-seconds``)."""

    # Failed attempts a shard may accumulate beyond its first before it
    # is quarantined to the parent (2 retries = 3 total attempts).
    max_shard_retries: int = 2
    # Pool rebuilds the whole run may spend before every still-pending
    # shard is quarantined wholesale.
    max_pool_restarts: int = 3
    # Exponential backoff before rebuild N: min(cap, base * 2**N),
    # jittered to 50-100% so a crash loop cannot synchronize.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    # Hang threshold: explicit seconds, else this multiple of the run's
    # cooperative deadline (a shard is allowed to consume the whole
    # deadline — only a *multiple* of it proves the worker wedged).
    # Neither set -> the watchdog is off.
    hang_multiple: float = 4.0
    hang_seconds: Optional[float] = None
    # Parent poll cadence while blocked on the pool.
    heartbeat_interval: float = 0.05

    def hang_threshold(
            self, deadline_seconds: Optional[float]) -> Optional[float]:
        if self.hang_seconds is not None:
            return self.hang_seconds
        if deadline_seconds is not None:
            return self.hang_multiple * deadline_seconds
        return None

    def backoff(self, restart: int, rng: random.Random) -> float:
        base = min(self.backoff_cap, self.backoff_base * (2 ** restart))
        return base * (0.5 + 0.5 * rng.random())


@dataclass
class SupervisionStats:
    """What supervision cost: the honesty record behind a recovered run."""

    retries: int = 0           # shard re-submissions after a failure
    restarts: int = 0          # pool rebuilds
    hangs: int = 0             # workers reaped by the watchdog
    corrupt_outcomes: int = 0  # non-ShardOutcome payloads rejected
    quarantined: List[int] = field(default_factory=list)
    # One line per crash event, for diagnostics/debugging.
    events: List[str] = field(default_factory=list)


class _PoolBroken(Exception):
    """Internal control flow: the pool died; ``blamed`` are the shard
    indices that were in flight (heartbeat-stamped, no outcome)."""

    def __init__(self, kind: str, blamed: Set[int], detail: str) -> None:
        self.kind = kind  # "crash" | "hang" | "init"
        self.blamed = blamed
        self.detail = detail
        super().__init__(detail)


class PoolSupervisor:
    """Runs a shard set to completion across worker crashes.

    One supervisor per parallel sweep.  :meth:`run` returns
    ``(outcomes, quarantined)``: outcomes indexed by shard (``None``
    where quarantined), and the sorted quarantined indices the caller
    must re-run serially in the parent.  Cooperative faults (ordinary
    exceptions from a shard with no resilience context) propagate
    unchanged — supervision is for *process* death only, the legacy
    contract for everything else is untouched.
    """

    def __init__(self, snapshot: EngineSnapshot, jobs: int, count: int,
                 policy: Optional[SupervisionPolicy] = None,
                 start_method: Optional[str] = None,
                 deadline_seconds: Optional[float] = None,
                 tracer=None,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: Optional[random.Random] = None) -> None:
        self.snapshot = snapshot
        self.jobs = jobs
        self.count = count
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.start_method = pick_start_method(start_method)
        self.deadline_seconds = deadline_seconds
        self._tracer = tracer
        self._sleep = sleep
        # Jitter only — correctness never depends on it, so a fixed
        # seed keeps test runs reproducible without threading state.
        self._rng = rng if rng is not None else random.Random(0x7A9)
        self.stats = SupervisionStats()
        self.startup_seconds = 0.0
        # Two doubles per shard: monotonic start stamp + stamping pid.
        # A plain (lock-free) shared array: each slot has one writer at
        # a time and the parent only compares against coarse thresholds.
        self._heartbeat = mp.get_context(self.start_method).RawArray(
            "d", 2 * count)

    # -- pool lifecycle ------------------------------------------------------

    def _build_pool(self, generation: int) -> PersistentWorkerPool:
        pool = PersistentWorkerPool(
            self.snapshot, self.jobs, self.start_method,
            heartbeat=self._heartbeat, generation=generation)
        self.startup_seconds += pool.startup_seconds
        return pool

    def _clear_stamp(self, index: int) -> None:
        self._heartbeat[2 * index] = 0.0
        self._heartbeat[2 * index + 1] = 0.0

    def _started(self, index: int) -> bool:
        return self._heartbeat[2 * index] > 0.0

    # -- the supervision loop ------------------------------------------------

    def run(self, pending: Optional[List[int]] = None, on_outcome=None,
            on_result=None):
        """Drive ``pending`` shards (default: all) to completion.

        ``on_outcome(done, total)`` is the progress hook (completion
        order — display only); ``on_result(outcome)`` fires once per
        fresh valid outcome, in completion order — the checkpoint
        journal's append hook (order-independent by design: the journal
        keys by shard index)."""
        if pending is None:
            pending = list(range(self.count))
        pending = sorted(pending)
        # Exposed for the caller's quarantine re-run: the parent
        # attempt is attempt N+1, so a scripted crash bounded at N
        # attempts no longer matches there and the shard recovers.
        self.attempts = attempts = {index: 0 for index in pending}
        outcomes: List = [None] * self.count
        quarantined: List[int] = []
        policy = self.policy
        generation = 0
        pool = self._build_pool(generation)
        try:
            while pending:
                try:
                    self._drain(pool, pending, attempts, outcomes,
                                quarantined, on_outcome, on_result)
                    break  # every submitted shard resolved
                except _PoolBroken as broken:
                    pool.shutdown()
                    unfinished = [
                        index for index in attempts
                        if outcomes[index] is None
                        and index not in quarantined]
                    self.stats.events.append(
                        f"pool[gen {generation}] {broken.kind}: "
                        f"{broken.detail}")
                    for index in broken.blamed:
                        if index in attempts and outcomes[index] is None:
                            attempts[index] += 1
                    fresh_quarantine = [
                        index for index in unfinished
                        if attempts[index] > policy.max_shard_retries]
                    if self.stats.restarts >= policy.max_pool_restarts:
                        # Restart budget spent: everything still pending
                        # goes to the parent.  An initializer that dies
                        # every generation lands here with zero shards
                        # ever started.
                        fresh_quarantine = unfinished
                    for index in fresh_quarantine:
                        quarantined.append(index)
                        self.stats.quarantined.append(index)
                    pending = [index for index in unfinished
                               if index not in quarantined]
                    if not pending:
                        break
                    self.stats.retries += sum(
                        1 for index in pending if index in broken.blamed)
                    self.stats.restarts += 1
                    generation += 1
                    delay = policy.backoff(self.stats.restarts - 1,
                                           self._rng)
                    if self._tracer is not None:
                        with self._tracer.span(
                                "taint.pool.retry", kind=broken.kind,
                                generation=generation,
                                pending=len(pending),
                                quarantined=len(quarantined),
                                backoff_seconds=round(delay, 4)):
                            self._sleep(delay)
                            pool = self._build_pool(generation)
                    else:
                        self._sleep(delay)
                        pool = self._build_pool(generation)
        finally:
            pool.shutdown()
        quarantined.sort()
        return outcomes, quarantined

    def _drain(self, pool: PersistentWorkerPool, pending: List[int],
               attempts: Dict[int, int], outcomes: List,
               quarantined: List[int], on_outcome, on_result) -> None:
        """Submit ``pending`` and collect until done or the pool breaks."""
        # Deferred import: repro.taint.engine reaches this package
        # lazily from its parallel path, so module level here must not
        # import it back.
        from ..taint.engine import ShardOutcome
        policy = self.policy
        threshold = policy.hang_threshold(self.deadline_seconds)
        futures: Dict[object, int] = {}

        def _submit(index: int):
            self._clear_stamp(index)
            try:
                future = pool.submit(index, attempts[index])
            except (BrokenProcessPool, RuntimeError) as exc:
                raise _PoolBroken("crash", self._blamed(outcomes,
                                                        quarantined),
                                  f"submit failed: {exc}") from exc
            futures[future] = index
            return future

        for index in list(pending):
            _submit(index)
        pending.clear()
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done,
                                  timeout=policy.heartbeat_interval,
                                  return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                try:
                    out = future.result()
                except WorkerInitError as exc:
                    # The shard itself is blameless: it was dispatched
                    # into a context-less worker.
                    for other in not_done:
                        other.cancel()
                    raise _PoolBroken("init", set(), str(exc)) from exc
                except BrokenProcessPool as exc:
                    for other in not_done:
                        other.cancel()
                    raise _PoolBroken(
                        "crash", self._blamed(outcomes, quarantined),
                        str(exc) or "worker process died") from exc
                except Exception:
                    # Cooperative fault with no resilience context: the
                    # legacy contract — propagate, never retry.
                    for other in not_done:
                        other.cancel()
                    raise
                if (not isinstance(out, ShardOutcome)
                        or out.index != index):
                    # Healthy pool, garbage payload: retry in place.
                    self.stats.corrupt_outcomes += 1
                    attempts[index] += 1
                    self.stats.events.append(
                        f"shard {index}: corrupt outcome "
                        f"({type(out).__name__})")
                    if attempts[index] > policy.max_shard_retries:
                        quarantined.append(index)
                        self.stats.quarantined.append(index)
                    else:
                        self.stats.retries += 1
                        not_done.add(_submit(index))
                    continue
                outcomes[index] = out
                if on_result is not None:
                    on_result(out)
                if on_outcome is not None:
                    on_outcome(sum(1 for o in outcomes if o is not None),
                               self.count)
            if threshold is not None and not_done:
                self._reap_hung(futures, not_done, outcomes, threshold)

    # -- crash attribution ---------------------------------------------------

    def _blamed(self, outcomes: List, quarantined: List[int]) -> Set[int]:
        """Shards that were in flight when the pool broke: heartbeat
        stamp set, no outcome banked.  A superset of the guilty shard —
        per-future attribution is impossible once the executor breaks."""
        return {index for index in range(self.count)
                if outcomes[index] is None and index not in quarantined
                and self._started(index)}

    def _reap_hung(self, futures: Dict, not_done, outcomes: List,
                   threshold: float) -> None:
        """SIGKILL the worker of any in-flight shard stamped longer ago
        than ``threshold`` — converting the hang into a pool break the
        crash path handles."""
        now = time.monotonic()
        for future in not_done:
            index = futures[future]
            stamp = self._heartbeat[2 * index]
            if stamp <= 0.0 or now - stamp <= threshold:
                continue
            pid = int(self._heartbeat[2 * index + 1])
            self.stats.hangs += 1
            self.stats.events.append(
                f"shard {index}: hung {now - stamp:.2f}s "
                f"(> {threshold:.2f}s), killing pid {pid}")
            if pid > 0 and pid != os.getpid():
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
            for other in not_done:
                other.cancel()
            raise _PoolBroken("hang", {index},
                              f"shard {index} exceeded hang threshold "
                              f"{threshold:.2f}s")

"""The persistent worker pool behind the parallel taint sweep.

Lifecycle: the parent builds one :class:`~.snapshot.EngineSnapshot`,
starts ``jobs`` worker processes that each deserialize it exactly once
(pool initializer), then streams shard indices to the pool one task per
future — dynamic dispatch, so a giant shard never serializes the run
behind a static partition.  Completion order is nondeterministic;
:meth:`PersistentWorkerPool.run_shards` re-orders outcomes by shard
index before returning, which is what keeps the downstream merge
deterministic.

Start methods: ``fork`` is preferred (snapshot deserialization against
an inherited intern table is an identity re-intern), but the snapshot
protocol is spawn-safe (see :mod:`.snapshot`), so platforms without
``fork`` — or an explicit ``start_method="spawn"`` — work identically.

Crash supervision (:mod:`.supervisor`) rides on two extras threaded
through the pool initializer: a shared **heartbeat array** (two doubles
per shard: monotonic start stamp + worker pid, written by
:func:`_run_shard` just before compute, so the parent can tell started
shards from queued ones when the pool breaks, and reap hung workers by
pid) and a **generation** counter naming which pool rebuild a worker
belongs to (the ordinal scripted ``worker.init`` faults match on).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import List, Optional

from .snapshot import (EngineSnapshot, WorkerContext, WorkerInitError,
                       execute_process_fault)

# Per-process cache: each worker deserializes the snapshot once, in its
# pool initializer, and serves every subsequent shard from it.
_WORKER_CONTEXT: Optional[WorkerContext] = None
# Shared heartbeat array (None when unsupervised): slot 2i is the
# monotonic stamp of shard i's latest start, slot 2i+1 the stamping pid.
_HEARTBEAT = None
# Reload rendezvous (None when the pool was built without reload
# support): a Barrier(jobs) shipped through the pool initializer — the
# only channel that can carry a synchronization primitive to both fork
# and spawn workers.
_RELOAD_BARRIER = None


def _init_worker(blob: bytes, heartbeat=None, generation: int = 0,
                 reload_barrier=None) -> None:
    global _WORKER_CONTEXT, _HEARTBEAT, _RELOAD_BARRIER
    _HEARTBEAT = heartbeat
    _RELOAD_BARRIER = reload_barrier
    context = WorkerContext(blob)
    injector = (context._resilience_template.injector
                if context._resilience_template is not None else None)
    if injector is not None:
        # Scripted initializer crashes match on the pool generation:
        # ``attempts: 1`` kills generation 0's workers and lets the
        # rebuilt generation 1 through; ``attempts: -1`` poisons every
        # rebuild until the supervisor's restart budget runs out.
        fault = injector.process_fault("worker.init", generation,
                                       generation)
        if fault is not None and fault.action != "corrupt-outcome":
            execute_process_fault(fault)
    _WORKER_CONTEXT = context


def _run_shard(index: int, attempt: int = 0):
    if _WORKER_CONTEXT is None:
        # The pool initializer never completed in this process; without
        # this guard the shard dies with a bare AttributeError nobody
        # can attribute.  SnapshotError-family so the serial fallback
        # and the supervisor both classify it as pool infrastructure.
        raise WorkerInitError(
            f"shard {index} dispatched to pid {os.getpid()} whose pool "
            f"initializer failed: no worker context (snapshot "
            f"deserialization or initializer crash)")
    if _HEARTBEAT is not None:
        _HEARTBEAT[2 * index] = time.monotonic()
        _HEARTBEAT[2 * index + 1] = float(os.getpid())
    return _WORKER_CONTEXT.run_shard(index, attempt)


def _reload_worker(blob: bytes, timeout: float) -> int:
    """Swap this worker's context for a new snapshot.

    Every worker of the pool runs one of these concurrently and blocks
    at the shared barrier, which is what guarantees the executor hands
    exactly one reload task to each of the ``jobs`` workers (a free
    worker cannot take a second task while its first is still parked at
    the barrier).  The new context only installs after the barrier
    releases — a broken rendezvous (dead worker, timeout) leaves every
    worker on its old snapshot and surfaces as ``BrokenBarrierError``,
    which :meth:`PersistentWorkerPool.reload` turns into "rebuild the
    pool instead"."""
    global _WORKER_CONTEXT
    if _RELOAD_BARRIER is None:
        raise WorkerInitError(
            f"reload dispatched to pid {os.getpid()} of a pool built "
            f"without a reload barrier")
    context = WorkerContext(blob)
    _RELOAD_BARRIER.wait(timeout)
    _WORKER_CONTEXT = context
    return os.getpid()


def pick_start_method(requested: Optional[str] = None) -> str:
    """``requested`` if given, else fork when available, else spawn."""
    available = mp.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise ValueError(
                f"start method {requested!r} unavailable "
                f"(have: {', '.join(available)})")
        return requested
    return "fork" if "fork" in available else "spawn"


class PersistentWorkerPool:
    """``jobs`` long-lived workers, one snapshot shipment each."""

    def __init__(self, snapshot: EngineSnapshot, jobs: int,
                 start_method: Optional[str] = None,
                 heartbeat=None, generation: int = 0) -> None:
        self.snapshot = snapshot
        self.jobs = jobs
        self.start_method = pick_start_method(start_method)
        self.generation = generation
        self.reload_seconds = 0.0
        started = time.perf_counter()
        context = mp.get_context(self.start_method)
        # One reusable Barrier(jobs) shipped at worker startup; python
        # barriers reset after each full rendezvous, so the same object
        # serves every subsequent reload() of this pool.
        self._reload_barrier = context.Barrier(jobs)
        self._pool = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=_init_worker,
            initargs=(snapshot.blob, heartbeat, generation,
                      self._reload_barrier))
        self.startup_seconds = time.perf_counter() - started

    def reload(self, snapshot: EngineSnapshot,
               timeout: float = 60.0) -> bool:
        """Re-point every live worker at ``snapshot`` without paying
        process startup again.  ``jobs`` reload tasks rendezvous at the
        shared barrier (see :func:`_reload_worker`), so each worker
        swaps exactly once.  Returns False — with every worker still on
        the old snapshot — when the rendezvous fails (dead worker,
        broken pool, timeout); the caller should then rebuild."""
        started = time.perf_counter()
        futures = []
        pids = set()
        try:
            # submit itself raises on a broken or shut-down executor.
            for _ in range(self.jobs):
                futures.append(self._pool.submit(
                    _reload_worker, snapshot.blob, timeout))
            for future in futures:
                pids.add(future.result(timeout=timeout + 30.0))
        except Exception:
            for future in futures:
                future.cancel()
            return False
        if len(pids) != self.jobs:
            return False
        self.snapshot = snapshot
        self.reload_seconds = time.perf_counter() - started
        return True

    def submit(self, index: int, attempt: int = 0):
        """Submit one shard; returns the future.  The supervisor's
        entry point — it owns retry/rebuild policy, the pool only
        executes."""
        return self._pool.submit(_run_shard, index, attempt)

    def run_shards(self, count: int, on_outcome=None) -> List:
        """Run shards ``0..count-1``; outcomes return in shard order
        regardless of completion order.  A worker exception (a fault
        with no resilience context, mirroring the serial path) is
        re-raised after the remaining futures are cancelled.

        ``on_outcome``, when given, is called as
        ``on_outcome(done_count, total)`` after each completion — a
        progress hook (completion order, so for display only; it must
        not influence the merge)."""
        futures = {self.submit(index): index for index in range(count)}
        outcomes: List = [None] * count
        done = 0
        try:
            for future in as_completed(futures):
                outcomes[futures[future]] = future.result()
                done += 1
                if on_outcome is not None:
                    on_outcome(done, count)
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return outcomes

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class PoolLease:
    """One worker pool amortized across many runs/apps.

    ``acquire(snapshot)`` hands back a ready pool: the cached one
    re-pointed at the new snapshot via :meth:`PersistentWorkerPool
    .reload` when possible, a fresh build otherwise (first call, or a
    failed rendezvous — the broken pool is torn down first).  The lease
    tracks how often each path was taken (``builds`` / ``reloads``) so
    benchmarks can report amortization honestly.

    Leased pools are **unsupervised**: no heartbeat array, no
    :class:`~.supervisor.PoolSupervisor` retry/rebuild policy.  That is
    the deliberate trade — supervision sizes its heartbeat per run and
    shuts the pool down in its own ``finally``, which is exactly what
    reuse must avoid — so the lease path is for benchmarking and batch
    sweeps over a trusted corpus, not for crash-resilient production
    runs.
    """

    def __init__(self, jobs: int,
                 start_method: Optional[str] = None) -> None:
        self.jobs = jobs
        self.start_method = start_method
        self.pool: Optional[PersistentWorkerPool] = None
        self.builds = 0
        self.reloads = 0

    def acquire(self, snapshot: EngineSnapshot) -> PersistentWorkerPool:
        if self.pool is not None:
            if self.pool.reload(snapshot):
                self.reloads += 1
                return self.pool
            self.invalidate()
        self.pool = PersistentWorkerPool(snapshot, self.jobs,
                                         self.start_method)
        self.builds += 1
        return self.pool

    def invalidate(self) -> None:
        if self.pool is not None:
            pool, self.pool = self.pool, None
            pool.shutdown()

    def close(self) -> None:
        self.invalidate()

    def __enter__(self) -> "PoolLease":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Call-graph representation.

A node is a (method, context) pair — "a method in some calling context,
as determined by the context-sensitivity policy" (paper §6.1).  Edges are
labeled with the call-site instruction id in the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — avoids a package import cycle
    from ..pointer.contexts import Context


@dataclass(frozen=True)
class CGNode:
    """A method analyzed in a context."""

    method: str        # method qname
    context: "Context"

    def __str__(self) -> str:
        return f"{self.method}<{self.context}>"


@dataclass(frozen=True)
class CGEdge:
    """caller --[call site iid]--> callee."""

    caller: CGNode
    call_iid: int
    callee: CGNode


class CallGraph:
    """Nodes, edges, and adjacency of the on-the-fly call graph."""

    def __init__(self) -> None:
        self.nodes: Dict[CGNode, int] = {}      # node -> creation index
        self.edges: Set[CGEdge] = set()
        self._succs: Dict[CGNode, Set[CGNode]] = {}
        self._preds: Dict[CGNode, Set[CGNode]] = {}
        self.entrypoints: List[CGNode] = []
        # Per-method node index: method qname -> nodes (all contexts).
        self._by_method: Dict[str, List[CGNode]] = {}
        # Call-site resolution index: (caller, call iid) -> callees.
        self._by_site: Dict[Tuple[CGNode, int], List[CGNode]] = {}

    def add_node(self, node: CGNode) -> bool:
        """Add a node; returns True if it was new."""
        if node in self.nodes:
            return False
        self.nodes[node] = len(self.nodes)
        self._by_method.setdefault(node.method, []).append(node)
        return True

    def add_edge(self, caller: CGNode, call_iid: int,
                 callee: CGNode) -> bool:
        edge = CGEdge(caller, call_iid, callee)
        if edge in self.edges:
            return False
        self.edges.add(edge)
        self._succs.setdefault(caller, set()).add(callee)
        self._preds.setdefault(callee, set()).add(caller)
        self._by_site.setdefault((caller, call_iid), []).append(callee)
        return True

    def succs(self, node: CGNode) -> Set[CGNode]:
        return self._succs.get(node, set())

    def preds(self, node: CGNode) -> Set[CGNode]:
        return self._preds.get(node, set())

    def neighbors(self, node: CGNode) -> Set[CGNode]:
        return self.succs(node) | self.preds(node)

    def nodes_of_method(self, method: str) -> List[CGNode]:
        return self._by_method.get(method, [])

    def reachable_methods(self) -> Set[str]:
        return set(self._by_method)

    def node_count(self) -> int:
        return len(self.nodes)

    def edge_count(self) -> int:
        return len(self.edges)

    def callees_at(self, caller: CGNode, call_iid: int) -> List[CGNode]:
        """Possible targets of one call site in one caller node."""
        return self._by_site.get((caller, call_iid), [])

    def size_stats(self) -> Dict[str, int]:
        """Growth summary (the Table 2 size columns), in the shape the
        metrics registry records as ``callgraph.*`` gauges."""
        contexts_per_method = [len(nodes)
                               for nodes in self._by_method.values()]
        return {
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "entrypoints": len(self.entrypoints),
            "methods": len(self._by_method),
            "call_sites": len(self._by_site),
            "max_contexts_per_method": max(contexts_per_method,
                                           default=0),
        }

    def __iter__(self) -> Iterator[CGNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

"""Priority-driven call-graph construction (paper §6.1).

The ordering policy below implements the paper's scheme verbatim:

* **initial-assignment rule** — a new node gets priority 0 if it is a
  source node (its method invokes a taint source), else ``maxNodes``;
* when a node *n* is dequeued, the neighbourhood ``T_n`` is built from
  (1) its call-graph predecessors and successors and (2) nodes whose
  methods contain a load matching a store in *n*'s method (the two ends
  of a would-be direct HSDG edge, approximated by field-name matching
  while points-to information is still being built);
* **update rule** — ``π(t) := min(π(t), π(n)+1)`` for every ``t ∈ T_n``,
  propagated through neighbourhoods to a fixed point;
* the queue always yields a node with the smallest priority value.

The effect is the paper's *locality-of-taint* bias: constraint adding
starts at taint sources and grows outward, so under a node budget the
analyzed region is the one most likely to carry tainted flows.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from ..ir import ArrayLoad, ArrayStore, Call, Load, Method, Store
from .graph import CGNode

from ..pointer.ordering import OrderingPolicy


def method_store_fields(method: Method) -> Set[str]:
    fields: Set[str] = set()
    for instr in method.instructions():
        if isinstance(instr, Store):
            fields.add(instr.fld)
        elif isinstance(instr, ArrayStore):
            fields.add("@elems")
    return fields


def method_load_fields(method: Method) -> Set[str]:
    fields: Set[str] = set()
    for instr in method.instructions():
        if isinstance(instr, Load):
            fields.add(instr.fld)
        elif isinstance(instr, ArrayLoad):
            fields.add("@elems")
    return fields


class PriorityOrder(OrderingPolicy):
    """The §6.1 priority queue over pending call-graph nodes."""

    def __init__(self, source_methods: Set[str], max_nodes: int) -> None:
        """``source_methods`` — display names ("Class.name") of taint
        sources; a node is a *source node* if its method calls one.
        ``max_nodes`` — the call-graph budget, also the default priority.
        """
        self.source_methods = source_methods
        self.max_nodes = max_nodes
        self.priority: Dict[CGNode, int] = {}
        self._heap: List[Tuple[int, int, CGNode]] = []
        self._seq = 0
        self._pending: Set[CGNode] = set()
        self._store_fields: Dict[str, Set[str]] = {}
        self._load_fields: Dict[str, Set[str]] = {}
        self._is_source_node: Dict[str, bool] = {}
        # field name -> method qnames containing a load of that field
        self._loaders: Dict[str, Set[str]] = {}

    # -- classification ------------------------------------------------------

    def _method(self, qname: str) -> Optional[Method]:
        return self.solver.program.lookup_method(qname)

    def _source_node(self, qname: str) -> bool:
        cached = self._is_source_node.get(qname)
        if cached is not None:
            return cached
        method = self._method(qname)
        result = False
        if method is not None and not method.is_native:
            for instr in method.instructions():
                if isinstance(instr, Call) and \
                        self._call_targets_source(instr):
                    result = True
                    break
        self._is_source_node[qname] = result
        return result

    def _call_targets_source(self, call: Call) -> bool:
        if call.class_name and \
                f"{call.class_name}.{call.method_name}" in \
                self.source_methods:
            return True
        # Virtual calls with unknown static receiver class: match on the
        # method name component alone.
        return any(s.rsplit(".", 1)[-1] == call.method_name
                   for s in self.source_methods)

    def _fields(self, qname: str) -> Tuple[Set[str], Set[str]]:
        if qname not in self._store_fields:
            method = self._method(qname)
            if method is None or method.is_native:
                self._store_fields[qname] = set()
                self._load_fields[qname] = set()
            else:
                self._store_fields[qname] = method_store_fields(method)
                self._load_fields[qname] = method_load_fields(method)
            for fld in self._load_fields[qname]:
                self._loaders.setdefault(fld, set()).add(qname)
        return self._store_fields[qname], self._load_fields[qname]

    # -- OrderingPolicy ---------------------------------------------------------

    def on_node_created(self, node: CGNode) -> None:
        # Initial-assignment rule.
        if node not in self.priority:
            self.priority[node] = 0 if self._source_node(node.method) \
                else self.max_nodes
        self._fields(node.method)  # index its fields for matching
        self._pending.add(node)
        self._push(node)

    def _push(self, node: CGNode) -> None:
        heapq.heappush(self._heap,
                       (self.priority[node], self._seq, node))
        self._seq += 1

    def on_edge(self, caller: CGNode, callee: CGNode) -> None:
        """Propagate locality along a new call edge immediately: the
        callee is a neighbour of the caller, so the update rule
        π(callee) := min(π(callee), π(caller)+1) applies as soon as the
        edge exists (callees are created after their caller was
        dequeued, so waiting for the next dequeue would never see them).
        """
        base = self.priority.get(caller, self.max_nodes)
        self._ensure_priority(callee)
        new = min(self.priority[callee], base + 1)
        if new < self.priority[callee]:
            self.priority[callee] = new
            if callee in self._pending:
                self._push(callee)
            self._update_neighbourhood(callee)

    def _ensure_priority(self, node: CGNode) -> None:
        if node not in self.priority:
            self.priority[node] = 0 if self._source_node(node.method) \
                else self.max_nodes

    def pop(self) -> Optional[CGNode]:
        while self._heap:
            prio, _, node = heapq.heappop(self._heap)
            if node not in self._pending:
                continue  # already popped via a fresher entry
            if prio != self.priority.get(node, self.max_nodes):
                continue  # stale entry; a lower-priority one exists
            self._pending.discard(node)
            self._update_neighbourhood(node)
            return node
        return None

    def __bool__(self) -> bool:
        return bool(self._pending)

    # -- §6.1 steps 2-5 -----------------------------------------------------------

    def _neighbourhood(self, node: CGNode) -> Set[CGNode]:
        cg = self.solver.call_graph
        out: Set[CGNode] = set(cg.neighbors(node))
        stores, _ = self._fields(node.method)
        matched_methods: Set[str] = set()
        for fld in stores:
            matched_methods |= self._loaders.get(fld, set())
        for qname in matched_methods:
            out.update(cg.nodes_of_method(qname))
        out.discard(node)
        return out

    def _update_neighbourhood(self, node: CGNode) -> None:
        worklist = [node]
        while worklist:
            cur = worklist.pop()
            base = self.priority.get(cur, self.max_nodes)
            for t in self._neighbourhood(cur):
                if t not in self.priority:
                    self.priority[t] = 0 if self._source_node(t.method) \
                        else self.max_nodes
                new = min(self.priority[t], base + 1)
                if new < self.priority[t]:
                    self.priority[t] = new
                    if t in self._pending:
                        self._push(t)
                    worklist.append(t)

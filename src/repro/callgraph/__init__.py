"""Call graphs and the priority-driven construction scheme of §6.1."""

from .graph import CallGraph, CGEdge, CGNode
from .priority import PriorityOrder, method_load_fields, method_store_fields

__all__ = ["CallGraph", "CGEdge", "CGNode", "PriorityOrder",
           "method_load_fields", "method_store_fields"]

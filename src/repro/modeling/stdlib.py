"""The modeled Java library (paper §4).

TAJ does not analyze the real JDK or Java EE containers; it substitutes
synthetic models that preserve taint-relevant behaviour.  This module is
our equivalent: a jlang model library covering everything the benchmarks
touch, plus the registries that parametrize the context-sensitivity
policy (collection classes, factory methods).

Classes whose data flow matters (collections, servlet response plumbing,
exceptions, Struts bases) have real jlang bodies; opaque operations
(request parameters, JDBC execution, reflection primitives) are native
methods whose pointer behaviour comes from
:mod:`repro.modeling.natives` and whose taint behaviour comes from the
security rules.
"""

from __future__ import annotations

from typing import Set

from ..ir import Program
from ..lang import Lowerer, parse

# Classes treated as string carriers (paper §4.2.1).
STRING_CARRIERS: Set[str] = {"String", "StringBuffer", "StringBuilder"}

# Collection classes: unlimited-depth object sensitivity (paper §3.1).
COLLECTION_CLASSES: Set[str] = {
    "HashMap", "Hashtable", "MapEntry", "ArrayList", "Vector", "ListCell",
    "HttpSession", "LinkedList",
}

# Library factory methods: one level of call-string context (paper §3.1).
FACTORY_METHODS: Set[str] = {
    "Connection.createStatement",
    "Connection.prepareStatement",
    "DriverManager.getConnection",
    "Runtime.getRuntime",
    "HttpServletRequest.getSession",
    "WidgetFactory.create",
}

# Benign library classes excluded by the hand-written whitelist
# (code-reduction, paper §4.2.1).
WHITELISTED_CLASSES: Set[str] = {"Logger", "Metrics", "Assertions"}

# Dictionary accessors for the constant-key model (paper §4.2.1):
# display name -> (key argument index, value argument index or None).
DICT_PUTS = {
    "HashMap.put": (0, 1),
    "Hashtable.put": (0, 1),
    "Map.put": (0, 1),
    "HttpSession.setAttribute": (0, 1),
}
DICT_GETS = {
    "HashMap.get": 0,
    "Hashtable.get": 0,
    "Map.get": 0,
    "HttpSession.getAttribute": 0,
}
# Receiver classes participating in the dictionary model.
DICT_CLASSES: Set[str] = {"HashMap", "Hashtable", "Map", "HttpSession"}


STDLIB_SOURCE = r"""
library class Object {
  public String toString() { return ""; }
  public boolean equals(Object o) { return true; }
  public int hashCode() { return 0; }
}

// ---- string carriers: declarations only; calls on them are rewritten
// ---- into primitive StringOps by repro.modeling.strings.
library class String {
  native String concat(String s);
  native String substring(int a, int b);
  native String substring(int a);
  native String toUpperCase();
  native String toLowerCase();
  native String trim();
  native String replace(String a, String b);
  native String intern();
  native boolean equals(Object o);
  native boolean equalsIgnoreCase(String s);
  native boolean startsWith(String s);
  native boolean endsWith(String s);
  native boolean contains(String s);
  native int length();
  native int indexOf(String s);
  native String toString();
  native static String valueOf(Object o);
  native static String format(String fmt, Object a);
}

library class StringBuilder {
  native StringBuilder append(Object o);
  native StringBuilder insert(int i, Object o);
  native String toString();
  native int length();
}

library class StringBuffer {
  native StringBuffer append(Object o);
  native StringBuffer insert(int i, Object o);
  native String toString();
  native int length();
}

// ---- exceptions (paper §4.1.2) ------------------------------------------
library class Exception {
  String message;
  Exception() { }
  Exception(String m) { this.message = m; }
  String getMessage() { return this.message; }
  public String toString() { return this.getMessage(); }
  native void printStackTrace();
}
library class RuntimeException extends Exception {
  RuntimeException() { }
  RuntimeException(String m) { this.message = m; }
}
library class IOException extends Exception {
  IOException() { }
  IOException(String m) { this.message = m; }
}
library class SQLException extends Exception {
  SQLException() { }
}
library class ServletException extends Exception {
  ServletException() { }
}

// ---- collections: real bodies so the ablation without the constant-key
// ---- model exercises genuine heap flow through container internals.
library interface Map {
  Object put(Object k, Object v);
  Object get(Object k);
}
library class MapEntry {
  Object key;
  Object val;
  MapEntry next;
}
library class HashMap implements Map {
  MapEntry header;
  public Object put(Object k, Object v) {
    MapEntry e = new MapEntry();
    e.key = k;
    e.val = v;
    e.next = this.header;
    this.header = e;
    return null;
  }
  public Object get(Object k) {
    MapEntry e = this.header;
    Object out = null;
    while (e != null) {
      if (e.key == k) { out = e.val; }
      e = e.next;
    }
    return out;
  }
  public boolean containsKey(Object k) { return this.get(k) != null; }
}
library class Hashtable extends HashMap {
}
library interface List {
  boolean add(Object o);
  Object get(int i);
}
library class ArrayList implements List {
  Object[] data;
  ArrayList() { this.data = new Object[16]; }
  public boolean add(Object o) {
    this.data[0] = o;
    return true;
  }
  public Object get(int i) { return this.data[i]; }
  public int size() { return 0; }
}
library class Vector extends ArrayList {
  Vector() { this.data = new Object[16]; }
}
library class LinkedList implements List {
  ListCell head;
  public boolean add(Object o) {
    ListCell c = new ListCell();
    c.item = o;
    c.next = this.head;
    this.head = c;
    return true;
  }
  public Object get(int i) {
    ListCell c = this.head;
    return c.item;
  }
}
library class ListCell {
  Object item;
  ListCell next;
}

// ---- servlet API ------------------------------------------------------------
library class HttpSession {
  HashMap attrs;
  HttpSession() { this.attrs = new HashMap(); }
  void setAttribute(String k, Object v) { this.attrs.put(k, v); }
  Object getAttribute(String k) { return this.attrs.get(k); }
}
library class Cookie {
  native String getName();
  native String getValue();
}
library class HttpServletRequest {
  native String getParameter(String name);
  native String getHeader(String name);
  native String getQueryString();
  native String getRequestURI();
  native HttpSession getSession();
  native Cookie[] getCookies();
  native BufferedReader getReader();
}
library class PrintWriter {
  native void println(Object o);
  native void print(Object o);
  native void write(String s);
  native void flush();
}
library class JspWriter extends PrintWriter {
}
library class HttpServletResponse {
  PrintWriter writer;
  HttpServletResponse() { this.writer = new PrintWriter(); }
  PrintWriter getWriter() { return this.writer; }
  native void sendError(int code, String message);
  native void addHeader(String name, String value);
  native void sendRedirect(String url);
}
library class HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) { }
  void doPost(HttpServletRequest req, HttpServletResponse resp) { }
}
library class BufferedReader {
  native String readLine();
  native void close();
}

// ---- JDBC ---------------------------------------------------------------------
library class DriverManager {
  native static Connection getConnection(String url);
}
library class Connection {
  native Statement createStatement();
  native PreparedStatement prepareStatement(String query);
}
library class Statement {
  native ResultSet executeQuery(String query);
  native int executeUpdate(String query);
  native boolean execute(String query);
}
library class PreparedStatement extends Statement {
  native void setString(int index, String value);
  native ResultSet executeQuery();
}
library class ResultSet {
  native String getString(String column);
  native boolean next();
}

// ---- IO / process ---------------------------------------------------------------
library class File {
  File(String path) { }
}
library class FileReader {
  FileReader(String path) { }
  native String read();
}
library class FileWriter {
  FileWriter(String path) { }
  native void write(String s);
}
library class FileInputStream {
  FileInputStream(String path) { }
}
library class RandomAccessFile {
  RandomAccessFile(String path) { }
  native void readFully(Object[] buffer);
}
library class Runtime {
  native static Runtime getRuntime();
  native Process exec(String command);
}
library class Process {
}
library class System {
  native static String getProperty(String key);
  native static int currentTimeMillis();
}

// ---- threads and privileged actions (native-heavy APIs, paper §4.2.3) -----
library interface Runnable {
  void run();
}
library class Thread {
  Runnable target;
  Thread() { }
  Thread(Runnable r) { this.target = r; }
  native void start();
  void run() {
    Runnable r = this.target;
    if (r != null) { r.run(); }
  }
}
library interface PrivilegedAction {
  Object run();
}
library class AccessController {
  native static Object doPrivileged(PrivilegedAction action);
}

// ---- reflection (paper §4.2.3) ------------------------------------------------
library class Class {
  native static Class forName(String name);
  native Method[] getMethods();
  native Method getMethod(String name);
  native Object newInstance();
}
library class Method {
  native String getName();
  native Object invoke(Object receiver, Object[] args);
}

// ---- sanitizers and misc statics ----------------------------------------------
library class URLEncoder {
  native static String encode(String s);
}
library class StringEscapeUtils {
  native static String escapeHtml(String s);
  native static String escapeSql(String s);
}
library class FilenameUtils {
  native static String normalize(String path);
}
library class MessageSanitizer {
  native static String scrub(String message);
}
library class Encoder {
  native static String encodeForHTML(String s);
}
library class URLValidator {
  native static String validate(String url);
}
library class HeaderSanitizer {
  native static String strip(String value);
}
library class Codec {
  native static String encodeForSQL(String s);
}
library class Date {
  native static String getDate();
}
library class Integer {
  native static String toString(int i);
  native static int parseInt(String s);
}
library class Math {
  native static int random();
}
library class TaintSupport {
  native static String source();
  native static void sink(Object o);
}

// ---- whitelisted (benign but polluting if analyzed, paper §4.2.1) ------------
library class Logger {
  static Object last;
  static void log(Object o) {
    Logger.last = o;
  }
  static Object recent() { return Logger.last; }
}
library class Metrics {
  static Object probe;
  static void count(String name, Object witness) {
    Metrics.probe = witness;
  }
}
library class Assertions {
  static void check(boolean cond, Object detail) {
    Logger.log(detail);
  }
}

// ---- Struts (paper §4.2.2) ---------------------------------------------------
library class ActionForm {
}
library class ActionMapping {
  native ActionForward findForward(String name);
}
library class ActionForward {
}
library class Action {
  ActionForward execute(ActionMapping mapping, ActionForm form,
                        HttpServletRequest req, HttpServletResponse resp) {
    return null;
  }
}

// ---- EJB / JNDI (paper §4.2.2) -------------------------------------------------
library class InitialContext {
  InitialContext() { }
  native Object lookup(String name);
}
library class PortableRemoteObject {
  native static Object narrow(Object ref, String homeInterface);
}
"""


def load_stdlib(program: Program = None) -> Program:
    """Lower the model library into ``program`` (or a fresh one)."""
    lowerer = Lowerer(program)
    lowerer.add_unit(parse(STDLIB_SOURCE, "<stdlib>"))
    return lowerer.lower_all()

"""Synthetic pointer summaries for native library methods (paper §4.2.3).

Native methods have no analyzable body; each registered handler applies
the method's taint-relevant pointer behaviour directly to the solver
state.  "Failure to analyze these methods would render the analysis
useless" — the classic examples the paper names, ``Thread.start`` and
``AccessController.doPrivileged``, are both modeled here by dispatching
to the appropriate ``run`` method.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..callgraph.graph import CGNode
from ..ir import Call, Method
from ..pointer.keys import InstanceKey
from ..ir import ARRAY_CONTENTS

Handler = Callable[["object", CGNode, Call, Method,
                    Optional[InstanceKey]], None]


class NativeSummaries:
    """Registry mapping native method display names to handlers."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Handler] = {}

    def register(self, display: str, handler: Handler) -> None:
        self._handlers[display] = handler

    def apply(self, solver, caller: CGNode, call: Call, callee: Method,
              receiver: Optional[InstanceKey]) -> None:
        handler = self._handlers.get(callee.display_name)
        if handler is not None:
            handler(solver, caller, call, callee, receiver)

    def handles(self, display: str) -> bool:
        return display in self._handlers


# -- handler factories ---------------------------------------------------------
#
# Handlers build pointer keys through the solver's key factories
# (``make_alloc`` / ``make_local`` / ``make_field``) rather than the key
# classes directly: the optimised solver and the preserved seed baseline
# use different key families, and each solver's tables must only ever
# hold its own.

def returns_new(class_name: str) -> Handler:
    """Return a fresh object allocated at the call site."""

    def handler(solver, caller, call, callee, receiver) -> None:
        if not call.lhs:
            return
        ikey = solver.make_alloc(caller.method, call.iid, class_name)
        solver.add_pts(
            solver.make_local(caller.method, caller.context, call.lhs),
            {ikey})

    return handler


def returns_new_array_of(elem_class: str) -> Handler:
    """Return a fresh array containing one fresh element object."""

    def handler(solver, caller, call, callee, receiver) -> None:
        if not call.lhs:
            return
        arr = solver.make_alloc(caller.method, call.iid, f"{elem_class}[]")
        elem = solver.make_alloc(caller.method, call.iid, elem_class)
        solver.add_pts(
            solver.make_local(caller.method, caller.context, call.lhs),
            {arr})
        solver.add_pts(solver.make_field(arr, ARRAY_CONTENTS), {elem})

    return handler


def returns_arg(index: int) -> Handler:
    """Return the ``index``-th argument unchanged (e.g. ``narrow``)."""

    def handler(solver, caller, call, callee, receiver) -> None:
        if not call.lhs or index >= len(call.args):
            return
        make_local = solver.make_local
        solver.add_copy_edge(
            make_local(caller.method, caller.context, call.args[index]),
            make_local(caller.method, caller.context, call.lhs))

    return handler


def returns_receiver() -> Handler:
    def handler(solver, caller, call, callee, receiver) -> None:
        if call.lhs and receiver is not None:
            solver.add_pts(
                solver.make_local(caller.method, caller.context, call.lhs),
                {receiver})

    return handler


def dispatches_run_on_receiver() -> Handler:
    """``Thread.start`` → virtual dispatch to ``receiver.run()``."""

    def handler(solver, caller, call, callee, receiver) -> None:
        if receiver is None:
            return
        target = solver.hierarchy.dispatch(receiver.class_name, "run", 0)
        if target is None:
            return
        synthetic = Call(None, "virtual", "", "run", call.receiver, [])
        synthetic.iid = call.iid
        solver._bind_call(caller, synthetic, target, receiver)

    return handler


def dispatches_run_on_arg(index: int) -> Handler:
    """``AccessController.doPrivileged(a)`` → dispatch to ``a.run()``."""

    def handler(solver, caller, call, callee, receiver) -> None:
        if index >= len(call.args):
            return
        arg_key = solver.make_local(caller.method, caller.context,
                                    call.args[index])
        synthetic = Call(call.lhs, "virtual", "", "run",
                         call.args[index], [])
        synthetic.iid = call.iid
        # Register a watcher so late-arriving points-to facts dispatch too.
        solver.register_call_watch(arg_key, caller, synthetic)

    return handler


def default_natives() -> NativeSummaries:
    """The standard registry for the modeled library."""
    natives = NativeSummaries()
    natives.register("HttpServletRequest.getSession",
                     returns_new("HttpSession"))
    natives.register("HttpServletRequest.getCookies",
                     returns_new_array_of("Cookie"))
    natives.register("HttpServletRequest.getReader",
                     returns_new("BufferedReader"))
    natives.register("DriverManager.getConnection",
                     returns_new("Connection"))
    natives.register("Connection.createStatement", returns_new("Statement"))
    natives.register("Connection.prepareStatement",
                     returns_new("PreparedStatement"))
    natives.register("Statement.executeQuery", returns_new("ResultSet"))
    natives.register("PreparedStatement.executeQuery",
                     returns_new("ResultSet"))
    natives.register("Runtime.getRuntime", returns_new("Runtime"))
    natives.register("Runtime.exec", returns_new("Process"))
    natives.register("PortableRemoteObject.narrow", returns_arg(0))
    natives.register("Thread.start", dispatches_run_on_receiver())
    natives.register("AccessController.doPrivileged",
                     dispatches_run_on_arg(0))
    # Unresolved reflection falls back to opaque objects; the reflection
    # model pass (§4.2.3) rewrites the resolvable cases before analysis.
    natives.register("Class.forName", returns_new("Class"))
    natives.register("Class.getMethods", returns_new_array_of("Method"))
    natives.register("Class.getMethod", returns_new("Method"))
    return natives

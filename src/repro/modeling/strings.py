"""String-carrier modeling (paper §4.2.1).

Rewrites every call on a string carrier (``String``, ``StringBuffer``,
``StringBuilder``) into a primitive :class:`~repro.ir.StringOp` so that

* string values never enter the heap during pointer analysis, and
* taint flows through string manipulation as direct local def-use.

Builder mutators (``append``/``insert``) reassign the receiver variable,
which is why this pass runs **before** SSA construction: SSA then
versions the receiver naturally and a later ``toString`` sees the
appended value.  The known approximation (shared with TAJ's model):
mutation through a second alias of the same builder is not observed.
"""

from __future__ import annotations

from typing import List

from ..ir import (Assign, Call, Const, Instruction, Method, New, Program,
                  StringOp)
from .stdlib import STRING_CARRIERS

# Static methods rewritten into StringOps: (class, method).
_STATIC_STRING_OPS = {
    ("String", "valueOf"),
    ("String", "format"),
}

_MUTATORS = {"append", "insert"}


def _is_carrier_static(call: Call) -> bool:
    return call.kind == "static" and \
        (call.class_name, call.method_name) in _STATIC_STRING_OPS


def rewrite_method(method: Method) -> int:
    """Rewrite string-carrier operations in one method; returns count."""
    if method.is_native:
        return 0
    rewritten = 0
    counter = 0

    def fresh() -> str:
        nonlocal counter
        var = f"%str{counter}"
        counter += 1
        return var

    for block in method.blocks.values():
        out: List[Instruction] = []
        for instr in block.instrs:
            if isinstance(instr, New) and \
                    instr.class_name in STRING_CARRIERS:
                # Allocation of a carrier becomes an empty string value;
                # the constructor call (rewritten below) redefines it.
                const = Const(instr.lhs, "")
                const.iid = instr.iid
                const.line = instr.line
                out.append(const)
                rewritten += 1
                continue
            if not isinstance(instr, Call):
                out.append(instr)
                continue
            recv_type = (method.type_of(instr.receiver)
                         if instr.receiver else None)
            if instr.kind == "special" and \
                    instr.class_name in STRING_CARRIERS:
                # Constructor: receiver var takes the constructed value.
                op = StringOp(instr.receiver,
                              f"{instr.class_name}.<init>",
                              list(instr.args))
                op.iid = instr.iid
                op.line = instr.line
                out.append(op)
                rewritten += 1
                continue
            if instr.kind == "virtual" and recv_type in STRING_CARRIERS:
                display = f"{recv_type}.{instr.method_name}"
                args = [instr.receiver] + list(instr.args)
                mutator = (instr.method_name in _MUTATORS and
                           recv_type in ("StringBuffer", "StringBuilder"))
                if mutator and instr.receiver != "this":
                    tmp = fresh()
                    method.var_types.setdefault(tmp, recv_type)
                    op = StringOp(tmp, display, args)
                    op.iid = instr.iid
                    op.line = instr.line
                    out.append(op)
                    back = Assign(instr.receiver, tmp)
                    back.iid = method.fresh_iid()
                    back.line = instr.line
                    out.append(back)
                    if instr.lhs:
                        fwd = Assign(instr.lhs, tmp)
                        fwd.iid = method.fresh_iid()
                        fwd.line = instr.line
                        out.append(fwd)
                else:
                    op = StringOp(instr.lhs, display, args)
                    op.iid = instr.iid
                    op.line = instr.line
                    out.append(op)
                rewritten += 1
                continue
            if _is_carrier_static(instr):
                op = StringOp(instr.lhs,
                              f"{instr.class_name}.{instr.method_name}",
                              list(instr.args))
                op.iid = instr.iid
                op.line = instr.line
                out.append(op)
                rewritten += 1
                continue
            out.append(instr)
        block.instrs = out
    return rewritten


def rewrite_program(program: Program) -> int:
    """Apply the string-carrier rewrite to every method."""
    total = 0
    for method in program.methods():
        total += rewrite_method(method)
    return total

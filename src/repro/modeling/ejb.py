"""EJB remote-invocation modeling (paper §4.2.2).

Resolving ``home.create()``/``obj.m2()`` through a real Java EE container
would require analyzing thousands of container methods.  TAJ instead
consults the deployment descriptor and generates an *analyzable artifact*
whose semantics stand in for the container: the JNDI lookup returns an
artifact home whose ``create`` allocates the bean class directly.

Concretely, for

    Object ref = ctx.lookup("java:comp/env/ejb/EB2");   // descriptor: -> EB2Bean
    EB2Home home = (EB2Home) PortableRemoteObject.narrow(ref, "EB2Home");
    EB2 obj = home.create();
    obj.m2();

the pass replaces the ``lookup`` call with an allocation of the generated
class ``$EJBHome$EB2Bean { EB2Bean create() { return new EB2Bean(); } }``.
``narrow`` already returns its argument (native summary), the cast passes
the object through, ``create`` dispatches into the artifact, and ``m2``
dispatches to the bean implementation — no container code analyzed,
exactly the portability/precision/scalability argument of the paper.

Runs after SSA + constant propagation (lookup keys must be constants).
Artifact classes are returned so the pipeline can push them through the
remaining passes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir import Call, Instruction, Method, New, Program
from ..lang import Lowerer, parse
from ..ssa import ConstantValues


def _artifact_name(bean_class: str) -> str:
    return f"$EJBHome${bean_class}"


class EJBModel:
    """Deployment-descriptor-driven EJB call resolution."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.generated: List[str] = []
        self._made: Set[str] = set()
        self.resolved = 0

    def _ensure_artifact(self, bean_class: str) -> Optional[str]:
        if self.program.get_class(bean_class) is None:
            return None
        name = _artifact_name(bean_class)
        if name in self._made or self.program.get_class(name) is not None:
            return name
        source = (
            f"library class {name} {{\n"
            f"  {bean_class} create() {{ return new {bean_class}(); }}\n"
            f"}}\n"
        )
        lowerer = Lowerer(self.program)
        lowerer.add_unit(parse(source, "<ejb-model>"))
        lowerer.lower_all()
        self._made.add(name)
        self.generated.append(name)
        return name

    def rewrite_method(self, method: Method,
                       constants: ConstantValues) -> int:
        if method.is_native:
            return 0
        descriptor = self.program.deployment_descriptor
        if not descriptor:
            return 0
        count = 0
        for block in method.blocks.values():
            out: List[Instruction] = []
            for instr in block.instrs:
                if isinstance(instr, Call) and instr.kind == "virtual" and \
                        instr.method_name == "lookup" and \
                        instr.arity == 1 and instr.lhs and \
                        method.type_of(instr.receiver or "") == \
                        "InitialContext":
                    key = constants.string_constant_of(instr.args[0])
                    bean = descriptor.get(key) if key is not None else None
                    artifact = self._ensure_artifact(bean) if bean else None
                    if artifact is not None:
                        alloc = New(instr.lhs, artifact)
                        alloc.iid = instr.iid
                        alloc.line = instr.line
                        out.append(alloc)
                        count += 1
                        continue
                out.append(instr)
            block.instrs = out
        self.resolved += count
        return count

    def rewrite_program(
            self, constants_by_method: Dict[str, ConstantValues]) -> int:
        for method in list(self.program.methods()):
            constants = constants_by_method.get(method.qname)
            if constants is not None:
                self.rewrite_method(method, constants)
        return self.resolved

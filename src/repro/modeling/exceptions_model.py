"""Exception modeling for information-leakage detection (paper §4.1.2).

For every caught exception TAJ synthesizes a call to ``getMessage`` and
marks it as a source.  We insert, right after each ``EnterCatch``:

    %exmsg = e.getMessage()        // a registered INFO_LEAK source
    e.message = %exmsg             // the exception becomes a taint carrier

The second statement makes ``resp.getWriter().println(e)`` — the
(unfortunately) common idiom from the paper — reach the sink via
taint-carrier detection, while a direct ``println(e.getMessage())`` flows
through plain local tracking.

Runs before SSA construction.
"""

from __future__ import annotations

from typing import List

from ..ir import Call, EnterCatch, Instruction, Method, Program, Store


def rewrite_method(method: Method) -> int:
    if method.is_native:
        return 0
    inserted = 0
    counter = 0
    for block in method.blocks.values():
        out: List[Instruction] = []
        for instr in block.instrs:
            out.append(instr)
            if isinstance(instr, EnterCatch):
                tmp = f"%exmsg{counter}"
                counter += 1
                method.var_types.setdefault(tmp, "String")
                call = Call(tmp, "virtual", "Exception", "getMessage",
                            instr.lhs, [])
                call.iid = method.fresh_iid()
                call.line = instr.line
                store = Store(instr.lhs, "message", tmp)
                store.iid = method.fresh_iid()
                store.line = instr.line
                out.extend([call, store])
                inserted += 1
        block.instrs = out
    return inserted


def rewrite_program(program: Program) -> int:
    """Insert synthetic exception sources program-wide (skip the model
    library itself: catches inside library code are not user-observable
    leak points)."""
    total = 0
    for cls in program.application_classes():
        for method in cls.methods.values():
            total += rewrite_method(method)
    return total

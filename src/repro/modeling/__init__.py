"""Code-modeling techniques (paper §4): the synthetic models that make
analysis of web applications tractable and precise."""

from .collections_model import DictionaryModel
from .ejb import EJBModel
from .natives import NativeSummaries, default_natives
from .pipeline import ModelOptions, PreparedProgram, prepare
from .stdlib import (COLLECTION_CLASSES, DICT_CLASSES, FACTORY_METHODS,
                     STRING_CARRIERS, WHITELISTED_CLASSES, load_stdlib)
from .struts import EntrypointSynthesizer, synthesize_entrypoints
from .whitelist import default_whitelist, validate_whitelist

__all__ = [
    "COLLECTION_CLASSES", "DICT_CLASSES", "DictionaryModel", "EJBModel",
    "EntrypointSynthesizer", "FACTORY_METHODS", "ModelOptions",
    "NativeSummaries", "PreparedProgram", "STRING_CARRIERS",
    "WHITELISTED_CLASSES", "default_natives", "default_whitelist",
    "load_stdlib", "prepare", "synthesize_entrypoints",
    "validate_whitelist",
]

"""Constant-key dictionary modeling (paper §4.2.1).

Web applications overwhelmingly access hash structures with keys that
resolve to compile-time constants.  TAJ exploits this: a ``put``/``get``
(or ``setAttribute``/``getAttribute``) whose key is a constant becomes a
synthetic field access on the dictionary object itself:

    m.put("fName", t1)      =>   m.@key:fName = t1
    m.get("fName")          =>   load of m.@key:fName (+ the wildcard)

Accesses with unresolvable keys use the wildcard field ``@key:?``; a
read additionally selects among every constant key observed for the same
dictionary kind, preserving soundness:

* constant put  -> writes ``@key:k``
* wildcard put  -> writes ``@key:?``
* constant get  -> reads ``@key:k`` and ``@key:?``
* wildcard get  -> reads every known ``@key:*`` and ``@key:?``

Runs after SSA construction (it needs constant propagation); the
replacement instructions keep SSA form (fresh single-assignment temps).
When disabled (ablation), dictionary traffic flows through the real
collection bodies in the model library instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir import (Call, Const, Instruction, Load, Method, Program, Select,
                  Store)
from ..ssa import ConstantValues
from .stdlib import DICT_CLASSES

_PUT_NAMES = {"put": 2, "setAttribute": 2}
_GET_NAMES = {"get": 1, "getAttribute": 1}

WILDCARD = "?"


def _dict_kind(recv_type: str) -> str:
    """Dictionary kind for key-universe grouping."""
    return "session" if recv_type == "HttpSession" else "map"


def _match(method: Method, instr: Instruction) -> Optional[str]:
    """If ``instr`` is a dictionary access, return its kind."""
    if not isinstance(instr, Call) or instr.kind != "virtual" or \
            not instr.receiver:
        return None
    recv_type = method.type_of(instr.receiver)
    if recv_type not in DICT_CLASSES:
        return None
    if instr.method_name in _PUT_NAMES and \
            instr.arity == _PUT_NAMES[instr.method_name]:
        return _dict_kind(recv_type)
    if instr.method_name in _GET_NAMES and \
            instr.arity == _GET_NAMES[instr.method_name]:
        return _dict_kind(recv_type)
    return None


class DictionaryModel:
    """Two-pass constant-key rewriter over a whole program."""

    def __init__(self) -> None:
        # dictionary kind -> constant keys observed anywhere.
        self.keys_by_kind: Dict[str, Set[str]] = {}
        self.rewritten = 0

    # -- pass 1: collect the constant-key universe -------------------------

    def collect(self, method: Method, constants: ConstantValues) -> None:
        if method.is_native:
            return
        for instr in method.instructions():
            kind = _match(method, instr)
            if kind is None:
                continue
            key = constants.string_constant_of(instr.args[0])
            if key is not None:
                self.keys_by_kind.setdefault(kind, set()).add(key)

    # -- pass 2: rewrite ------------------------------------------------------

    def rewrite(self, method: Method, constants: ConstantValues) -> int:
        if method.is_native:
            return 0
        count = 0
        for block in method.blocks.values():
            out: List[Instruction] = []
            for instr in block.instrs:
                kind = _match(method, instr)
                if kind is None:
                    out.append(instr)
                    continue
                assert isinstance(instr, Call)
                key = constants.string_constant_of(instr.args[0])
                if instr.method_name in _PUT_NAMES:
                    out.extend(self._lower_put(method, instr, key))
                else:
                    out.extend(self._lower_get(method, instr, key, kind))
                count += 1
            block.instrs = out
        self.rewritten += count
        return count

    def _lower_put(self, method: Method, call: Call,
                   key: Optional[str]) -> List[Instruction]:
        fld = f"@key:{key if key is not None else WILDCARD}"
        store = Store(call.receiver, fld, call.args[1])
        store.iid = call.iid
        store.line = call.line
        instrs: List[Instruction] = [store]
        if call.lhs:
            # ``put`` returns the previous value; model as null.
            const = Const(call.lhs, None)
            const.iid = method.fresh_iid()
            const.line = call.line
            instrs.append(const)
        return instrs

    def _lower_get(self, method: Method, call: Call, key: Optional[str],
                   kind: str) -> List[Instruction]:
        if key is not None:
            fields = [f"@key:{key}", f"@key:{WILDCARD}"]
        else:
            known = sorted(self.keys_by_kind.get(kind, ()))
            fields = [f"@key:{k}" for k in known] + [f"@key:{WILDCARD}"]
        if not call.lhs:
            return []
        instrs: List[Instruction] = []
        temps: List[str] = []
        for idx, fld in enumerate(fields):
            tmp = f"%dk{call.iid}_{idx}"
            load = Load(tmp, call.receiver, fld)
            load.iid = call.iid if idx == 0 else method.fresh_iid()
            load.line = call.line
            instrs.append(load)
            temps.append(tmp)
        select = Select(call.lhs, temps)
        select.iid = method.fresh_iid()
        select.line = call.line
        instrs.append(select)
        return instrs


def rewrite_program(program: Program,
                    constants_by_method: Dict[str, ConstantValues]) -> int:
    """Run both passes over every method with available constants."""
    model = DictionaryModel()
    for method in program.methods():
        constants = constants_by_method.get(method.qname)
        if constants is not None:
            model.collect(method, constants)
    for method in program.methods():
        constants = constants_by_method.get(method.qname)
        if constants is not None:
            model.rewrite(method, constants)
    return model.rewritten

"""The front half of the TAJ pipeline: parse, lower, and apply models.

Order matters and mirrors the design notes in each pass:

1. load the model library, lower application sources, record the
   deployment descriptor;
2. synthesize framework entrypoint roots (jlang generation — must happen
   before IR rewrites so roots flow through them too);
3. exception-source insertion (pre-SSA);
4. string-carrier rewrite (pre-SSA: builder mutators reassign locals);
5. SSA construction + constant propagation;
6. reflection resolution (needs constants);
7. constant-key dictionary rewrite (needs constants);
8. EJB artifact generation (needs constants; new classes are pushed
   through steps 4–5 themselves);
9. structural validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir import Program, validate_program
from ..lang import Lowerer, parse
from ..obs import DISABLED, Observability
from ..ssa import ConstantValues, SSAInfo, to_ssa
from . import (collections_model, exceptions_model, reflection, strings,
               struts)
from .ejb import EJBModel
from .stdlib import load_stdlib
from .whitelist import default_whitelist, validate_whitelist


@dataclass
class ModelOptions:
    """Which model passes to apply (Table 1: all evaluated configurations
    use the synthetic models; ablations flip these off)."""

    frameworks: bool = True
    exceptions: bool = True
    strings: bool = True
    reflection: bool = True
    collections: bool = True
    ejb: bool = True
    whitelist: bool = True

    @staticmethod
    def none() -> "ModelOptions":
        return ModelOptions(frameworks=True, exceptions=False,
                            strings=False, reflection=False,
                            collections=False, ejb=False, whitelist=False)


@dataclass
class PreparedProgram:
    """A fully modeled, SSA-form program ready for pointer analysis."""

    program: Program
    ssa: Dict[str, SSAInfo] = field(default_factory=dict)
    constants: Dict[str, ConstantValues] = field(default_factory=dict)
    whitelist: Set[str] = field(default_factory=set)
    stats: Dict[str, int] = field(default_factory=dict)


def prepare(app_sources: List[str],
            deployment_descriptor: Optional[Dict[str, str]] = None,
            options: Optional[ModelOptions] = None,
            extra_entrypoints: Optional[List[str]] = None,
            obs: Optional[Observability] = None) -> PreparedProgram:
    """Build a :class:`PreparedProgram` from jlang application sources.

    Each model pass runs inside a ``modeling.*`` tracer span, and the
    pass counters are absorbed into the metrics registry (prefixed
    ``modeling.``) in addition to the returned ``stats`` dict.
    """
    options = options or ModelOptions()
    obs = obs or DISABLED
    tracer = obs.tracer
    with tracer.span("modeling.lower", sources=len(app_sources)):
        program = load_stdlib()
        if app_sources:
            lowerer = Lowerer(program)
            for source in app_sources:
                lowerer.add_unit(parse(source))
            lowerer.lower_all()
    if deployment_descriptor:
        program.deployment_descriptor.update(deployment_descriptor)
    for entry in extra_entrypoints or []:
        if entry not in program.entrypoints:
            program.entrypoints.append(entry)

    stats: Dict[str, int] = {}
    if options.frameworks:
        with tracer.span("modeling.frameworks"):
            roots = struts.synthesize_entrypoints(program)
        stats["entrypoint_roots"] = len(roots)
    if options.exceptions:
        with tracer.span("modeling.exceptions"):
            stats["exception_sources"] = \
                exceptions_model.rewrite_program(program)
    if options.strings:
        with tracer.span("modeling.strings"):
            stats["string_ops"] = strings.rewrite_program(program)

    ssa_by: Dict[str, SSAInfo] = {}
    constants: Dict[str, ConstantValues] = {}
    with tracer.span("modeling.ssa") as span:
        for method in program.methods():
            info = to_ssa(method)
            ssa_by[method.qname] = info
            if not method.is_native:
                constants[method.qname] = ConstantValues(method, info)
        span.set(methods=len(ssa_by))

    if options.reflection:
        with tracer.span("modeling.reflection"):
            stats["reflective_calls_resolved"] = \
                reflection.rewrite_program(program, ssa_by, constants)
    if options.collections:
        with tracer.span("modeling.collections"):
            stats["dictionary_accesses"] = \
                collections_model.rewrite_program(program, constants)
    if options.ejb and program.deployment_descriptor:
        with tracer.span("modeling.ejb"):
            model = EJBModel(program)
            stats["ejb_calls_resolved"] = model.rewrite_program(constants)
            for name in model.generated:
                cls = program.get_class(name)
                for method in cls.methods.values():
                    if options.strings:
                        strings.rewrite_method(method)
                    info = to_ssa(method)
                    ssa_by[method.qname] = info
                    if not method.is_native:
                        constants[method.qname] = ConstantValues(method,
                                                                 info)

    with tracer.span("modeling.validate"):
        validate_program(program)
        whitelist = (validate_whitelist(program, default_whitelist())
                     if options.whitelist else set())
    obs.metrics.merge_counters(stats, prefix="modeling.")
    return PreparedProgram(program=program, ssa=ssa_by,
                           constants=constants, whitelist=whitelist,
                           stats=stats)

"""The front half of the TAJ pipeline: parse, lower, and apply models.

Order matters and mirrors the design notes in each pass:

1. load the model library, lower application sources, record the
   deployment descriptor;
2. synthesize framework entrypoint roots (jlang generation — must happen
   before IR rewrites so roots flow through them too);
3. exception-source insertion (pre-SSA);
4. string-carrier rewrite (pre-SSA: builder mutators reassign locals);
5. SSA construction + constant propagation;
6. reflection resolution (needs constants);
7. constant-key dictionary rewrite (needs constants);
8. EJB artifact generation (needs constants; new classes are pushed
   through steps 4–5 themselves);
9. structural validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir import Program, validate_program
from ..lang import Lowerer, parse
from ..lang.errors import SourceError
from ..obs import DISABLED, Observability
from ..resilience import DeadlineExceeded
from ..ssa import ConstantValues, SSAInfo, to_ssa
from . import (collections_model, exceptions_model, reflection, strings,
               struts)
from .ejb import EJBModel
from .stdlib import load_stdlib
from .whitelist import default_whitelist, validate_whitelist


@dataclass
class ModelOptions:
    """Which model passes to apply (Table 1: all evaluated configurations
    use the synthetic models; ablations flip these off)."""

    frameworks: bool = True
    exceptions: bool = True
    strings: bool = True
    reflection: bool = True
    collections: bool = True
    ejb: bool = True
    whitelist: bool = True

    @staticmethod
    def none() -> "ModelOptions":
        return ModelOptions(frameworks=True, exceptions=False,
                            strings=False, reflection=False,
                            collections=False, ejb=False, whitelist=False)


@dataclass
class PreparedProgram:
    """A fully modeled, SSA-form program ready for pointer analysis."""

    program: Program
    ssa: Dict[str, SSAInfo] = field(default_factory=dict)
    constants: Dict[str, ConstantValues] = field(default_factory=dict)
    whitelist: Set[str] = field(default_factory=set)
    stats: Dict[str, int] = field(default_factory=dict)


def _lower_units(program: Program, app_sources: List[str],
                 resilience, obs: Observability) -> int:
    """Parse + lower the application units into ``program``.

    With an active quarantining resilience context, a unit whose parse
    or lowering fails is *skipped*: a structured diagnostic is recorded,
    every class the unit contributed is evicted, and the remaining units
    are still analyzed.  Returns the number of quarantined units.
    """
    quarantine = resilience is not None and resilience.active and \
        resilience.quarantine
    lowerer = Lowerer(program)
    unit_of: Dict[str, int] = {}    # class name -> source-unit index
    failed_units: set = set()
    for index, source in enumerate(app_sources):
        try:
            if resilience is not None:
                # Fault seam: may corrupt the source text, trip the
                # deadline, or raise a scripted exception.
                source = resilience.corrupt("frontend.source", source)
            names = lowerer.add_unit(parse(source))
        except DeadlineExceeded:
            raise
        except Exception as exc:
            if not quarantine:
                raise
            resilience.quarantine_source(exc, index)
            failed_units.add(index)
            continue
        for name in names:
            unit_of[name] = index

    def on_error(class_name: str, exc: SourceError) -> None:
        index = unit_of.get(class_name)
        resilience.quarantine_source(exc, index, class_name=class_name)
        if index is not None:
            failed_units.add(index)

    lowerer.lower_all(on_error=on_error if quarantine else None)
    # Evict every class contributed by a quarantined unit, including
    # sibling classes whose own bodies lowered fine: the unit is the
    # compilation boundary, so it is quarantined as a whole.
    for name, index in unit_of.items():
        if index in failed_units:
            program.classes.pop(name, None)
    if failed_units:
        obs.metrics.inc("resilience.quarantined_sources",
                        len(failed_units))
    return len(failed_units)


def prepare(app_sources: List[str],
            deployment_descriptor: Optional[Dict[str, str]] = None,
            options: Optional[ModelOptions] = None,
            extra_entrypoints: Optional[List[str]] = None,
            obs: Optional[Observability] = None,
            resilience=None) -> PreparedProgram:
    """Build a :class:`PreparedProgram` from jlang application sources.

    Each model pass runs inside a ``modeling.*`` tracer span, and the
    pass counters are absorbed into the metrics registry (prefixed
    ``modeling.``) in addition to the returned ``stats`` dict.  An
    optional :class:`~repro.resilience.ResilienceContext` arms the
    ``frontend.source`` / ``modeling.pass`` fault seams, the cooperative
    deadline, and per-source quarantine.
    """
    options = options or ModelOptions()
    obs = obs or DISABLED
    tracer = obs.tracer

    def seam() -> None:
        if resilience is not None:
            resilience.check("modeling.pass", phase="modeling")

    quarantined = 0
    with tracer.span("modeling.lower", sources=len(app_sources)):
        program = load_stdlib()
        if app_sources:
            quarantined = _lower_units(program, app_sources, resilience,
                                       obs)
    if deployment_descriptor:
        program.deployment_descriptor.update(deployment_descriptor)
    for entry in extra_entrypoints or []:
        if entry not in program.entrypoints:
            program.entrypoints.append(entry)

    stats: Dict[str, int] = {}
    if quarantined:
        stats["quarantined_sources"] = quarantined
    if options.frameworks:
        seam()
        with tracer.span("modeling.frameworks"):
            roots = struts.synthesize_entrypoints(program)
        stats["entrypoint_roots"] = len(roots)
    if options.exceptions:
        seam()
        with tracer.span("modeling.exceptions"):
            stats["exception_sources"] = \
                exceptions_model.rewrite_program(program)
    if options.strings:
        seam()
        with tracer.span("modeling.strings"):
            stats["string_ops"] = strings.rewrite_program(program)

    ssa_by: Dict[str, SSAInfo] = {}
    constants: Dict[str, ConstantValues] = {}
    seam()
    with tracer.span("modeling.ssa") as span:
        for method in program.methods():
            info = to_ssa(method)
            ssa_by[method.qname] = info
            if not method.is_native:
                constants[method.qname] = ConstantValues(method, info)
        span.set(methods=len(ssa_by))

    if options.reflection:
        seam()
        with tracer.span("modeling.reflection"):
            stats["reflective_calls_resolved"] = \
                reflection.rewrite_program(program, ssa_by, constants)
    if options.collections:
        seam()
        with tracer.span("modeling.collections"):
            stats["dictionary_accesses"] = \
                collections_model.rewrite_program(program, constants)
    if options.ejb and program.deployment_descriptor:
        seam()
        with tracer.span("modeling.ejb"):
            model = EJBModel(program)
            stats["ejb_calls_resolved"] = model.rewrite_program(constants)
            for name in model.generated:
                cls = program.get_class(name)
                for method in cls.methods.values():
                    if options.strings:
                        strings.rewrite_method(method)
                    info = to_ssa(method)
                    ssa_by[method.qname] = info
                    if not method.is_native:
                        constants[method.qname] = ConstantValues(method,
                                                                 info)

    seam()
    with tracer.span("modeling.validate"):
        validate_program(program)
        whitelist = (validate_whitelist(program, default_whitelist())
                     if options.whitelist else set())
    obs.metrics.merge_counters(stats, prefix="modeling.")
    return PreparedProgram(program=program, ssa=ssa_by,
                           constants=constants, whitelist=whitelist,
                           stats=stats)

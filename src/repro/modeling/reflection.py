"""Reflection modeling (paper §4.2.3).

"When the value of an argument to a reflection API can be inferred (for
example, when it is constant), the system synthesizes a relevant
abstraction in place of the reflective call."

This pass runs after SSA construction and constant propagation.  Per
method it computes a small abstract domain over SSA variables:

* ``CLS(K)``      — a ``Class`` object for the constant class name K
                    (from ``Class.forName("K")``);
* ``METHODS(K)``  — the array returned by ``getMethods()`` on CLS(K);
* ``METHOD(K)``   — an element of METHODS(K), or the result of
                    ``getMethod`` (with its name when constant);

and a per-method *name filter*: the set of string constants compared
(via ``String.equals``) against ``getName()`` results — the idiom of the
paper's motivating example, where a loop scans ``getMethods()`` for the
method named ``"id"``.

With these, ``m.invoke(recv, args)`` is replaced by direct virtual
calls to every candidate method (name-filtered when a filter exists,
arity-filtered by the argument array's statically known length), and
``Class.newInstance()`` by a direct allocation.  Unresolvable reflective
calls keep their conservative native summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..ir import (ArrayLoad, ArrayStore, Assign, Call, Cast, Instruction,
                  Method, New, NewArray, Phi, Program, Select, StringOp, Var)
from ..ssa import ConstantValues, SSAInfo


@dataclass(frozen=True)
class _Abs:
    """Abstract reflective value: kind in {cls, methods, method}."""

    kind: str
    class_name: str
    method_name: Optional[str] = None   # for getMethod with constant name


class ReflectionResolver:
    """Resolves reflective calls within one method."""

    def __init__(self, program: Program, method: Method, ssa: SSAInfo,
                 constants: ConstantValues) -> None:
        self.program = program
        self.method = method
        self.ssa = ssa
        self.constants = constants
        self.values: Dict[Var, _Abs] = {}
        self.name_filter: Set[str] = set()
        # array variable -> number of ArrayStores observed on it
        self.array_lengths: Dict[Var, int] = {}
        self.resolved = 0

    # -- abstract interpretation ------------------------------------------------

    def _transfer(self, instr: Instruction) -> Optional[_Abs]:
        if isinstance(instr, Call):
            if instr.kind == "static" and instr.class_name == "Class" and \
                    instr.method_name == "forName" and instr.arity == 1:
                name = self.constants.string_constant_of(instr.args[0])
                if name is not None and name in self.program.classes:
                    return _Abs("cls", name)
            if instr.kind == "virtual" and instr.receiver:
                recv = self.values.get(instr.receiver)
                if recv is not None and recv.kind == "cls":
                    if instr.method_name == "getMethods":
                        return _Abs("methods", recv.class_name)
                    if instr.method_name == "getMethod" and instr.arity == 1:
                        name = self.constants.string_constant_of(
                            instr.args[0])
                        return _Abs("method", recv.class_name, name)
            return None
        if isinstance(instr, (Assign, Cast)):
            src = instr.rhs if isinstance(instr, Assign) else instr.value
            return self.values.get(src)
        if isinstance(instr, ArrayLoad):
            base = self.values.get(instr.base)
            if base is not None and base.kind == "methods":
                return _Abs("method", base.class_name)
            return None
        if isinstance(instr, (Phi, Select)):
            operands = (list(instr.operands.values())
                        if isinstance(instr, Phi) else instr.args)
            met: Optional[_Abs] = None
            for op in operands:
                val = self.values.get(op)
                if val is None:
                    continue
                if met is None:
                    met = val
                elif met != val:
                    return None
            return met
        return None

    def _analyze(self) -> None:
        instrs = list(self.method.instructions())
        changed = True
        while changed:
            changed = False
            for instr in instrs:
                defs = instr.defs()
                if not defs:
                    continue
                val = self._transfer(instr)
                if val is not None and self.values.get(defs[0]) != val:
                    self.values[defs[0]] = val
                    changed = True
        # Name filter: constants compared against getName() results.
        name_results: Set[Var] = set()
        for instr in instrs:
            if isinstance(instr, Call) and instr.kind == "virtual" and \
                    instr.method_name == "getName" and instr.receiver and \
                    self.values.get(instr.receiver, _Abs("", "")).kind == \
                    "method" and instr.lhs:
                name_results.add(instr.lhs)
        for instr in instrs:
            if isinstance(instr, StringOp) and \
                    instr.method.endswith(".equals") and len(instr.args) == 2:
                for a, b in ((instr.args[0], instr.args[1]),
                             (instr.args[1], instr.args[0])):
                    if a in name_results:
                        const = self.constants.string_constant_of(b)
                        if const is not None:
                            self.name_filter.add(const)
        for instr in instrs:
            if isinstance(instr, ArrayStore):
                self.array_lengths[instr.base] = \
                    self.array_lengths.get(instr.base, 0) + 1
            elif isinstance(instr, NewArray):
                self.array_lengths.setdefault(instr.lhs, 0)

    # -- rewriting ------------------------------------------------------------

    def _candidates(self, abs_val: _Abs,
                    arity: Optional[int]) -> List[Method]:
        cls = self.program.get_class(abs_val.class_name)
        if cls is None:
            return []
        out: List[Method] = []
        for (name, n), target in sorted(cls.methods.items()):
            if name == "<init>" or target.is_static:
                continue
            if abs_val.method_name is not None and \
                    name != abs_val.method_name:
                continue
            if abs_val.method_name is None and self.name_filter and \
                    name not in self.name_filter:
                continue
            if arity is not None and n != arity:
                continue
            out.append(target)
        return out

    def _rewrite_invoke(self, call: Call) -> Optional[List[Instruction]]:
        abs_val = self.values.get(call.receiver or "")
        if abs_val is None or abs_val.kind != "method" or call.arity != 2:
            return None
        recv_var, arr_var = call.args
        arity = self.array_lengths.get(arr_var)
        candidates = self._candidates(abs_val, arity)
        if not candidates:
            return None
        instrs: List[Instruction] = []
        results: List[Var] = []
        for j, target in enumerate(candidates):
            arg_temps: List[Var] = []
            for i in range(len(target.params)):
                tmp = f"%rf{call.iid}_{j}_{i}"
                load = ArrayLoad(tmp, arr_var)
                load.iid = self.method.fresh_iid()
                load.line = call.line
                instrs.append(load)
                arg_temps.append(tmp)
            ret = f"%rfr{call.iid}_{j}" if call.lhs else None
            direct = Call(ret, "virtual", abs_val.class_name,
                          target.name, recv_var, arg_temps)
            direct.iid = call.iid if j == 0 else self.method.fresh_iid()
            direct.line = call.line
            instrs.append(direct)
            if ret:
                results.append(ret)
        if call.lhs:
            select = Select(call.lhs, results)
            select.iid = self.method.fresh_iid()
            select.line = call.line
            instrs.append(select)
        return instrs

    def _rewrite_new_instance(self, call: Call) -> Optional[List[Instruction]]:
        abs_val = self.values.get(call.receiver or "")
        if abs_val is None or abs_val.kind != "cls" or not call.lhs:
            return None
        cls = self.program.get_class(abs_val.class_name)
        if cls is None or cls.is_interface:
            return None
        alloc = New(call.lhs, abs_val.class_name)
        alloc.iid = call.iid
        alloc.line = call.line
        instrs: List[Instruction] = [alloc]
        if cls.get_method("<init>", 0) is not None:
            ctor = Call(None, "special", abs_val.class_name, "<init>",
                        call.lhs, [])
            ctor.iid = self.method.fresh_iid()
            ctor.line = call.line
            instrs.append(ctor)
        return instrs

    def run(self) -> int:
        self._analyze()
        if not self.values:
            return 0
        for block in self.method.blocks.values():
            out: List[Instruction] = []
            for instr in block.instrs:
                replacement: Optional[List[Instruction]] = None
                if isinstance(instr, Call) and instr.kind == "virtual":
                    if instr.method_name == "invoke":
                        replacement = self._rewrite_invoke(instr)
                    elif instr.method_name == "newInstance" and \
                            instr.arity == 0:
                        replacement = self._rewrite_new_instance(instr)
                if replacement is None:
                    out.append(instr)
                else:
                    out.extend(replacement)
                    self.resolved += 1
            block.instrs = out
        return self.resolved


def rewrite_program(program: Program,
                    ssa_by_method: Dict[str, SSAInfo],
                    constants_by_method: Dict[str, ConstantValues]) -> int:
    """Resolve reflection program-wide; returns number of rewritten calls."""
    total = 0
    for method in program.methods():
        if method.is_native:
            continue
        ssa = ssa_by_method.get(method.qname)
        constants = constants_by_method.get(method.qname)
        if ssa is None or constants is None:
            continue
        total += ReflectionResolver(program, method, ssa, constants).run()
    return total

"""Web-framework entrypoint modeling (paper §4.2.2).

Web applications have no ``main``: control enters through container
dispatch.  For each entrypoint this pass synthesizes an *analysis root*
— a small jlang class that builds the framework-provided state and
invokes the entrypoint — and registers it in ``program.entrypoints``.

Three entrypoint families are modeled:

* **servlets** — application subclasses of ``HttpServlet`` overriding
  ``doGet``/``doPost``: the root allocates the servlet, a request, and a
  response, and calls each overridden handler;
* **Struts actions** — application subclasses of ``Action`` implementing
  ``execute``: the pass inspects ``execute`` for casts applied to the
  ``ActionForm`` parameter to learn which concrete form subtypes the
  action expects (all compatible subtypes if there is no cast), then
  synthesizes, per form type, a form instance whose String fields — and,
  recursively, the String fields of its compound-typed fields — are
  assigned the tainted ``TaintSupport.source()`` value, exactly as the
  Struts container populates forms from user input;
* **plain mains** — ``static main/0`` and ``main/1`` (the latter invoked
  with a tainted argument array, modeling the command line).

Runs right after lowering, before the IR-rewriting model passes, so the
synthesized roots flow through the same pipeline as user code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir import Cast, ClassHierarchy, Method, Program
from ..lang import Lowerer, parse

MAX_FORM_DEPTH = 2


def _sanitize(name: str) -> str:
    return name.replace("$", "_")


class EntrypointSynthesizer:
    """Builds analysis roots for every entrypoint family."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.hierarchy = ClassHierarchy(program)
        self.sources: List[str] = []
        self.created: List[str] = []

    # -- discovery ------------------------------------------------------------

    def servlet_classes(self) -> List[str]:
        out = []
        for cls in self.program.application_classes():
            if cls.name == "HttpServlet":
                continue
            if self.hierarchy.is_subtype(cls.name, "HttpServlet") and \
                    not cls.is_interface:
                if cls.get_method("doGet", 2) or cls.get_method("doPost", 2):
                    out.append(cls.name)
        return sorted(out)

    def action_classes(self) -> List[str]:
        out = []
        for cls in self.program.application_classes():
            if cls.name == "Action":
                continue
            if self.hierarchy.is_subtype(cls.name, "Action") and \
                    not cls.is_interface and cls.get_method("execute", 4):
                out.append(cls.name)
        return sorted(out)

    def main_classes(self) -> List[str]:
        out = []
        for cls in self.program.application_classes():
            for arity in (0, 1):
                method = cls.get_method("main", arity)
                if method is not None and method.is_static:
                    out.append(cls.name)
                    break
        return sorted(out)

    # -- Struts form inference ----------------------------------------------------

    def _form_types_for(self, action: str) -> List[str]:
        """Concrete ActionForm subtypes compatible with the action's casts."""
        method = self.program.lookup_method(f"{action}.execute/4")
        assert method is not None
        cast_types: Set[str] = set()
        for instr in method.instructions():
            if isinstance(instr, Cast) and self.hierarchy.is_subtype(
                    instr.type_name, "ActionForm"):
                cast_types.add(instr.type_name)
        if not cast_types:
            cast_types = {"ActionForm"}
        forms: Set[str] = set()
        for t in cast_types:
            forms.update(self.hierarchy.concrete_subtypes(t))
        forms.discard("ActionForm")
        return sorted(forms)

    def _fill_fields(self, lines: List[str], var: str, class_name: str,
                     depth: int) -> None:
        """Emit assignments tainting every (transitive) String field."""
        cls = self.program.get_class(class_name)
        if cls is None:
            return
        for fld in cls.fields.values():
            if fld.is_static:
                continue
            tname = str(fld.type)
            if tname == "String":
                lines.append(f"    {var}.{fld.name} = TaintSupport.source();")
            elif depth < MAX_FORM_DEPTH and tname in self.program.classes \
                    and not self.program.classes[tname].is_interface:
                sub = f"{var}_{fld.name}"
                lines.append(f"    {tname} {sub} = new {tname}();")
                lines.append(f"    {var}.{fld.name} = {sub};")
                self._fill_fields(lines, sub, tname, depth + 1)

    # -- synthesis ----------------------------------------------------------------

    def _add_root(self, root_name: str, body_lines: List[str]) -> None:
        source = "class " + root_name + " {\n  static void dispatch() {\n" \
            + "\n".join(body_lines) + "\n  }\n}\n"
        self.sources.append(source)
        self.created.append(root_name)
        self.program.entrypoints.append(f"{root_name}.dispatch/0")

    def synthesize_servlet_roots(self) -> None:
        for name in self.servlet_classes():
            cls = self.program.get_class(name)
            lines = [
                f"    {name} servlet = new {name}();",
                "    HttpServletRequest req = new HttpServletRequest();",
                "    HttpServletResponse resp = new HttpServletResponse();",
            ]
            if cls.get_method("doGet", 2):
                lines.append("    servlet.doGet(req, resp);")
            if cls.get_method("doPost", 2):
                lines.append("    servlet.doPost(req, resp);")
            self._add_root(f"$Root${_sanitize(name)}", lines)

    def synthesize_action_roots(self) -> None:
        for name in self.action_classes():
            lines = [
                f"    {name} action = new {name}();",
                "    ActionMapping mapping = new ActionMapping();",
                "    HttpServletRequest req = new HttpServletRequest();",
                "    HttpServletResponse resp = new HttpServletResponse();",
            ]
            for idx, form_type in enumerate(self._form_types_for(name)):
                var = f"form{idx}"
                lines.append(f"    {form_type} {var} = new {form_type}();")
                self._fill_fields(lines, var, form_type, 0)
                lines.append(
                    f"    action.execute(mapping, {var}, req, resp);")
            self._add_root(f"$Root${_sanitize(name)}", lines)

    def synthesize_main_roots(self) -> None:
        for name in self.main_classes():
            cls = self.program.get_class(name)
            if cls.get_method("main", 0):
                self.program.entrypoints.append(f"{name}.main/0")
            method = cls.get_method("main", 1)
            if method is not None:
                lines = [
                    "    String[] args = "
                    "new String[] { TaintSupport.source() };",
                    f"    {name}.main(args);",
                ]
                self._add_root(f"$Root${_sanitize(name)}Main", lines)

    def run(self) -> List[str]:
        """Synthesize all roots; returns the created root class names."""
        self.synthesize_servlet_roots()
        self.synthesize_action_roots()
        self.synthesize_main_roots()
        if self.sources:
            lowerer = Lowerer(self.program)
            for source in self.sources:
                lowerer.add_unit(parse(source, "<entrypoint-model>"))
            lowerer.lower_all()
            for root in self.created:
                cls = self.program.get_class(root)
                for method in cls.methods.values():
                    method.is_synthetic = True
        return self.created


def synthesize_entrypoints(program: Program) -> List[str]:
    """Convenience wrapper; see :class:`EntrypointSynthesizer`."""
    return EntrypointSynthesizer(program).run()

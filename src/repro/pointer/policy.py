"""TAJ's context-sensitivity policy (paper §3.1).

The policy decides, per call, under which context a callee is analyzed,
and, per allocation, which heap context an instance key carries:

* most instance methods — **one level of object sensitivity**: the
  context is the instance key of the receiver;
* methods of **collection classes** — unlimited-depth object sensitivity
  (bounded by ``collection_depth`` to realize "up to recursion"), and
  allocations inside them inherit the method context, so *the internal
  objects of a collection are cloned per collection instance*;
* **library factory methods** — one level of call-string context, with
  heap cloning, so objects minted by a shared factory allocation site are
  disambiguated per call site;
* **taint-specific APIs** (sources, sinks, sanitizers) — one level of
  call-string context, which is what lets TAJ distinguish the two
  ``getParameter`` calls of the motivating example;
* static methods and everything else — context-insensitive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from ..ir import Call, Method
from . import contexts as _default_contexts
from .contexts import Context
from .keys import InstanceKey

# Default depth cap realizing "unlimited-depth (up to recursion)".
COLLECTION_DEPTH = 6
# Safety cap on any context nesting.
MAX_DEPTH = 8


@dataclass
class PolicyConfig:
    """Knobs for the context policy; the ablation bench flips these."""

    object_sensitive: bool = True
    collections_unlimited: bool = True
    factory_call_strings: bool = True
    taint_api_call_strings: bool = True
    collection_depth: int = COLLECTION_DEPTH
    # Class names treated as collections (the stdlib model registers its
    # container classes here).
    collection_classes: Set[str] = field(default_factory=set)
    # Method qnames ("Class.name") treated as library factories.
    factory_methods: Set[str] = field(default_factory=set)
    # Library methods whose names start with one of these prefixes are
    # also treated as factories (the hand-maintained list in TAJ covers
    # the JDK; the prefix heuristic covers application-bundled helpers).
    factory_name_prefixes: tuple = ("create", "make")
    # Method qnames of taint-specific APIs (sources/sinks/sanitizers).
    taint_api_methods: Set[str] = field(default_factory=set)

    @staticmethod
    def insensitive() -> "PolicyConfig":
        return PolicyConfig(object_sensitive=False,
                            collections_unlimited=False,
                            factory_call_strings=False,
                            taint_api_call_strings=False)


class ContextPolicy:
    """Implements the callee-context and heap-context decisions.

    ``ctx`` selects the context implementation namespace (any module
    exposing ``EMPTY``, ``ObjContext``, ``CallSiteContext`` and
    ``truncate``).  It defaults to the interned classes in
    :mod:`repro.pointer.contexts`; the seed baseline solver passes
    :mod:`repro.pointer.seedkeys` so its contexts stay the original
    dataclasses.
    """

    def __init__(self, config: Optional[PolicyConfig] = None,
                 ctx=None) -> None:
        self.config = config or PolicyConfig()
        self.ctx = ctx or _default_contexts

    # -- classification -----------------------------------------------------

    def is_collection_class(self, class_name: str) -> bool:
        return class_name in self.config.collection_classes

    def is_factory(self, method: Method) -> bool:
        if method.display_name in self.config.factory_methods:
            return True
        return method.name.startswith(self.config.factory_name_prefixes)

    def is_taint_api(self, method: Method) -> bool:
        return method.display_name in self.config.taint_api_methods

    # -- decisions ------------------------------------------------------------

    def callee_context(self, caller_method: str, caller_context: Context,
                       call: Call, callee: Method,
                       receiver: Optional[InstanceKey]) -> Context:
        """Context under which ``callee`` is analyzed for this edge."""
        cfg = self.config
        ctx = self.ctx
        if cfg.taint_api_call_strings and self.is_taint_api(callee):
            return ctx.CallSiteContext(caller_method, call.iid)
        if cfg.factory_call_strings and self.is_factory(callee):
            return ctx.CallSiteContext(caller_method, call.iid)
        if receiver is not None and cfg.object_sensitive:
            if cfg.collections_unlimited and \
                    self.is_collection_class(callee.class_name):
                return ctx.truncate(ctx.ObjContext(receiver),
                                    cfg.collection_depth)
            return ctx.truncate(ctx.ObjContext(receiver), MAX_DEPTH)
        return ctx.EMPTY

    def heap_context(self, method: Method, context: Context) -> Context:
        """Heap context for allocation sites inside ``method``/``context``.

        Collection internals and factory-made objects inherit the method
        context (cloned per collection instance / call site); all other
        allocations get a context-insensitive heap.
        """
        ctx = self.ctx
        if isinstance(context, ctx.CallSiteContext):
            return context
        if self.config.collections_unlimited and \
                self.is_collection_class(method.class_name):
            return ctx.truncate(context, self.config.collection_depth)
        return ctx.EMPTY

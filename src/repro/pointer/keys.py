"""Instance keys and pointer keys (the heap-graph vocabulary of §4.1.1).

An *instance key* abstracts a set of runtime objects: an allocation site
plus a heap context.  A *pointer key* abstracts a set of runtime pointers:
a context-qualified local, a field of an instance key, a static field, or
a method return value.

Keys are **interned**: constructing a key with the same fields returns
the same object, so keys compare and hash *by identity* (the default
``object`` semantics — no Python-level ``__hash__``/``__eq__`` runs on
the solver's millions of dict probes).  ``__reduce__`` re-interns on
unpickling, which keeps ``pickle``/``copy.deepcopy`` round-trips
identity-correct.  All keys are immutable and carry ``__slots__``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .contexts import Context, EMPTY

_set = object.__setattr__


class _Interned:
    """Shared plumbing: frozen attributes, identity hash/eq."""

    __slots__ = ()

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")


class AllocSite(_Interned):
    """A static allocation site: ``new C`` / array / caught exception."""

    __slots__ = ("method", "iid", "class_name")

    _interned: Dict[Tuple[str, int, str], "AllocSite"] = {}

    def __new__(cls, method: str, iid: int, class_name: str) -> "AllocSite":
        key = (method, iid, class_name)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "method", method)
            _set(self, "iid", iid)
            _set(self, "class_name", class_name)
            cls._interned[key] = self
        return self

    def __reduce__(self):
        return (AllocSite, (self.method, self.iid, self.class_name))

    def __str__(self) -> str:
        return f"{self.class_name}@{self.method}:{self.iid}"

    __repr__ = __str__


class InstanceKey(_Interned):
    """An abstract object: allocation site + heap context."""

    __slots__ = ("site", "context")

    _interned: Dict[Tuple[AllocSite, Context], "InstanceKey"] = {}

    def __new__(cls, site: AllocSite,
                context: Context = EMPTY) -> "InstanceKey":
        key = (site, context)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "site", site)
            _set(self, "context", context)
            cls._interned[key] = self
        return self

    @property
    def class_name(self) -> str:
        return self.site.class_name

    def with_context(self, context: Context) -> "InstanceKey":
        return InstanceKey(self.site, context)

    def __reduce__(self):
        return (InstanceKey, (self.site, self.context))

    def __str__(self) -> str:
        if self.context is EMPTY:
            return str(self.site)
        return f"{self.site}<{self.context}>"

    __repr__ = __str__


class PointerKey(_Interned):
    """Base class for pointer keys."""

    __slots__ = ()


class LocalKey(PointerKey):
    """An SSA local of a method analyzed in a context."""

    __slots__ = ("method", "context", "var")

    _interned: Dict[Tuple[str, Context, str], "LocalKey"] = {}

    def __new__(cls, method: str, context: Context, var: str) -> "LocalKey":
        key = (method, context, var)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "method", method)
            _set(self, "context", context)
            _set(self, "var", var)
            cls._interned[key] = self
        return self

    def __reduce__(self):
        return (LocalKey, (self.method, self.context, self.var))

    def __str__(self) -> str:
        return f"{self.method}<{self.context}>::{self.var}"

    __repr__ = __str__


class FieldKey(PointerKey):
    """A field of an instance key (array contents use ``@elems``)."""

    __slots__ = ("instance", "fld")

    _interned: Dict[Tuple[InstanceKey, str], "FieldKey"] = {}

    def __new__(cls, instance: InstanceKey, fld: str) -> "FieldKey":
        key = (instance, fld)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "instance", instance)
            _set(self, "fld", fld)
            cls._interned[key] = self
        return self

    def __reduce__(self):
        return (FieldKey, (self.instance, self.fld))

    def __str__(self) -> str:
        return f"{self.instance}.{self.fld}"

    __repr__ = __str__


class StaticFieldKey(PointerKey):
    """A static field."""

    __slots__ = ("class_name", "fld")

    _interned: Dict[Tuple[str, str], "StaticFieldKey"] = {}

    def __new__(cls, class_name: str, fld: str) -> "StaticFieldKey":
        key = (class_name, fld)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "class_name", class_name)
            _set(self, "fld", fld)
            cls._interned[key] = self
        return self

    def __reduce__(self):
        return (StaticFieldKey, (self.class_name, self.fld))

    def __str__(self) -> str:
        return f"{self.class_name}.{self.fld}"

    __repr__ = __str__


class ReturnKey(PointerKey):
    """The return value of a method analyzed in a context."""

    __slots__ = ("method", "context")

    _interned: Dict[Tuple[str, Context], "ReturnKey"] = {}

    def __new__(cls, method: str, context: Context) -> "ReturnKey":
        key = (method, context)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "method", method)
            _set(self, "context", context)
            cls._interned[key] = self
        return self

    def __reduce__(self):
        return (ReturnKey, (self.method, self.context))

    def __str__(self) -> str:
        return f"ret({self.method}<{self.context}>)"

    __repr__ = __str__


def clear_key_caches() -> None:
    """Drop the intern tables.

    Only safe *between* analyses in a long-running process: keys are
    identity-compared, so keys held from before a clear are never equal
    to keys minted after it."""
    for cls in (AllocSite, InstanceKey, LocalKey, FieldKey, StaticFieldKey,
                ReturnKey):
        cls._interned.clear()

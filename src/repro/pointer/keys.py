"""Instance keys and pointer keys (the heap-graph vocabulary of §4.1.1).

An *instance key* abstracts a set of runtime objects: an allocation site
plus a heap context.  A *pointer key* abstracts a set of runtime pointers:
a context-qualified local, a field of an instance key, a static field, or
a method return value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from .contexts import Context, EMPTY


@dataclass(frozen=True)
class AllocSite:
    """A static allocation site: ``new C`` / array / caught exception."""

    method: str        # qname of the containing method
    iid: int           # instruction id within the method
    class_name: str    # allocated class (arrays: "<elem>[]")

    def __str__(self) -> str:
        return f"{self.class_name}@{self.method}:{self.iid}"


@dataclass(frozen=True)
class InstanceKey:
    """An abstract object: allocation site + heap context."""

    site: AllocSite
    context: Context = EMPTY

    @property
    def class_name(self) -> str:
        return self.site.class_name

    def with_context(self, context: Context) -> "InstanceKey":
        return replace(self, context=context)

    def __str__(self) -> str:
        if self.context is EMPTY:
            return str(self.site)
        return f"{self.site}<{self.context}>"


@dataclass(frozen=True)
class PointerKey:
    """Base class for pointer keys."""


@dataclass(frozen=True)
class LocalKey(PointerKey):
    """An SSA local of a method analyzed in a context."""

    method: str
    context: Context
    var: str

    def __str__(self) -> str:
        return f"{self.method}<{self.context}>::{self.var}"


@dataclass(frozen=True)
class FieldKey(PointerKey):
    """A field of an instance key (array contents use ``@elems``)."""

    instance: InstanceKey
    fld: str

    def __str__(self) -> str:
        return f"{self.instance}.{self.fld}"


@dataclass(frozen=True)
class StaticFieldKey(PointerKey):
    """A static field."""

    class_name: str
    fld: str

    def __str__(self) -> str:
        return f"{self.class_name}.{self.fld}"


@dataclass(frozen=True)
class ReturnKey(PointerKey):
    """The return value of a method analyzed in a context."""

    method: str
    context: Context

    def __str__(self) -> str:
        return f"ret({self.method}<{self.context}>)"

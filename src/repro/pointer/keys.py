"""Instance keys and pointer keys (the heap-graph vocabulary of §4.1.1).

An *instance key* abstracts a set of runtime objects: an allocation site
plus a heap context.  A *pointer key* abstracts a set of runtime pointers:
a context-qualified local, a field of an instance key, a static field, or
a method return value.

Keys are **interned**: constructing a key with the same fields returns
the same object, so keys compare and hash *by identity* (the default
``object`` semantics — no Python-level ``__hash__``/``__eq__`` runs on
the solver's millions of dict probes).  ``__reduce__`` re-interns on
unpickling, which keeps ``pickle``/``copy.deepcopy`` round-trips
identity-correct.  All keys are immutable and carry ``__slots__``.

Interning also hands out **dense integer IDs**: every allocation site,
every instance key, and every pointer key receives a contiguous
``index`` at first construction.  Instance-key indices double as bit
positions — ``InstanceKey.bit`` is ``1 << index`` — so a points-to set
is one Python int and set algebra becomes bitwise arithmetic
(``ptset | delta``, ``new & ~old``).  :func:`encode_instance_keys` /
:func:`decode_instance_bits` translate between the two worlds at the
solver's API boundary (``docs/performance.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .contexts import Context, EMPTY

_set = object.__setattr__

# Dense-ID registries.  ``_INSTANCE_KEYS[i]`` is the instance key whose
# bit position is ``i``; pointer keys share one index space across the
# four key families (used for stable, identity-free orderings).
_INSTANCE_KEYS: List["InstanceKey"] = []
_POINTER_KEY_COUNT = 0


class _Interned:
    """Shared plumbing: frozen attributes, identity hash/eq."""

    __slots__ = ()

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")


class AllocSite(_Interned):
    """A static allocation site: ``new C`` / array / caught exception."""

    __slots__ = ("method", "iid", "class_name", "index")

    _interned: Dict[Tuple[str, int, str], "AllocSite"] = {}

    def __new__(cls, method: str, iid: int, class_name: str) -> "AllocSite":
        key = (method, iid, class_name)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "method", method)
            _set(self, "iid", iid)
            _set(self, "class_name", class_name)
            _set(self, "index", len(cls._interned))
            cls._interned[key] = self
        return self

    def __reduce__(self):
        return (AllocSite, (self.method, self.iid, self.class_name))

    def __str__(self) -> str:
        return f"{self.class_name}@{self.method}:{self.iid}"

    __repr__ = __str__


class InstanceKey(_Interned):
    """An abstract object: allocation site + heap context.

    ``index`` is the key's position in the dense ID space; ``bit`` is
    the precomputed ``1 << index`` singleton bitset.
    """

    __slots__ = ("site", "context", "index", "bit")

    _interned: Dict[Tuple[AllocSite, Context], "InstanceKey"] = {}

    def __new__(cls, site: AllocSite,
                context: Context = EMPTY) -> "InstanceKey":
        key = (site, context)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "site", site)
            _set(self, "context", context)
            index = len(_INSTANCE_KEYS)
            _set(self, "index", index)
            _set(self, "bit", 1 << index)
            _INSTANCE_KEYS.append(self)
            cls._interned[key] = self
        return self

    @property
    def class_name(self) -> str:
        return self.site.class_name

    def with_context(self, context: Context) -> "InstanceKey":
        return InstanceKey(self.site, context)

    def __reduce__(self):
        return (InstanceKey, (self.site, self.context))

    def __str__(self) -> str:
        if self.context is EMPTY:
            return str(self.site)
        return f"{self.site}<{self.context}>"

    __repr__ = __str__


class PointerKey(_Interned):
    """Base class for pointer keys.

    Every concrete pointer key carries a dense ``index`` shared across
    the four families (locals, fields, statics, returns), assigned at
    intern time in construction order.
    """

    __slots__ = ()


def _pointer_index() -> int:
    global _POINTER_KEY_COUNT
    index = _POINTER_KEY_COUNT
    _POINTER_KEY_COUNT = index + 1
    return index


class LocalKey(PointerKey):
    """An SSA local of a method analyzed in a context."""

    __slots__ = ("method", "context", "var", "index")

    _interned: Dict[Tuple[str, Context, str], "LocalKey"] = {}

    def __new__(cls, method: str, context: Context, var: str) -> "LocalKey":
        key = (method, context, var)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "method", method)
            _set(self, "context", context)
            _set(self, "var", var)
            _set(self, "index", _pointer_index())
            cls._interned[key] = self
        return self

    def __reduce__(self):
        return (LocalKey, (self.method, self.context, self.var))

    def __str__(self) -> str:
        return f"{self.method}<{self.context}>::{self.var}"

    __repr__ = __str__


class FieldKey(PointerKey):
    """A field of an instance key (array contents use ``@elems``)."""

    __slots__ = ("instance", "fld", "index")

    _interned: Dict[Tuple[InstanceKey, str], "FieldKey"] = {}

    def __new__(cls, instance: InstanceKey, fld: str) -> "FieldKey":
        key = (instance, fld)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "instance", instance)
            _set(self, "fld", fld)
            _set(self, "index", _pointer_index())
            cls._interned[key] = self
        return self

    def __reduce__(self):
        return (FieldKey, (self.instance, self.fld))

    def __str__(self) -> str:
        return f"{self.instance}.{self.fld}"

    __repr__ = __str__


class StaticFieldKey(PointerKey):
    """A static field."""

    __slots__ = ("class_name", "fld", "index")

    _interned: Dict[Tuple[str, str], "StaticFieldKey"] = {}

    def __new__(cls, class_name: str, fld: str) -> "StaticFieldKey":
        key = (class_name, fld)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "class_name", class_name)
            _set(self, "fld", fld)
            _set(self, "index", _pointer_index())
            cls._interned[key] = self
        return self

    def __reduce__(self):
        return (StaticFieldKey, (self.class_name, self.fld))

    def __str__(self) -> str:
        return f"{self.class_name}.{self.fld}"

    __repr__ = __str__


class ReturnKey(PointerKey):
    """The return value of a method analyzed in a context."""

    __slots__ = ("method", "context", "index")

    _interned: Dict[Tuple[str, Context], "ReturnKey"] = {}

    def __new__(cls, method: str, context: Context) -> "ReturnKey":
        key = (method, context)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set(self, "method", method)
            _set(self, "context", context)
            _set(self, "index", _pointer_index())
            cls._interned[key] = self
        return self

    def __reduce__(self):
        return (ReturnKey, (self.method, self.context))

    def __str__(self) -> str:
        return f"ret({self.method}<{self.context}>)"

    __repr__ = __str__


# ---------------------------------------------------------------- bitsets

def instance_key_count() -> int:
    """Number of instance keys minted so far (== width of the dense ID
    space; every live bitset fits in this many bits)."""
    return len(_INSTANCE_KEYS)


def instance_key_at(index: int) -> InstanceKey:
    """The instance key occupying bit position ``index``."""
    return _INSTANCE_KEYS[index]


def encode_instance_keys(ikeys: Iterable[InstanceKey]) -> int:
    """Fold instance keys into one bitset int."""
    bits = 0
    for ikey in ikeys:
        bits |= ikey.bit
    return bits


def decode_instance_bits(bits: int) -> List[InstanceKey]:
    """Expand a bitset int back into instance keys (ascending index).

    Walks only the set bits: ``bits & -bits`` isolates the lowest one,
    so a sparse set over a wide ID space stays cheap to decode.
    """
    table = _INSTANCE_KEYS
    out: List[InstanceKey] = []
    append = out.append
    while bits:
        low = bits & -bits
        append(table[low.bit_length() - 1])
        bits ^= low
    return out


def clear_key_caches() -> None:
    """Drop the intern tables (and the dense-ID registries).

    Only safe *between* analyses in a long-running process: keys are
    identity-compared, so keys held from before a clear are never equal
    to keys minted after it — and bitsets built before a clear decode
    to the wrong keys after it."""
    global _POINTER_KEY_COUNT
    for cls in (AllocSite, InstanceKey, LocalKey, FieldKey, StaticFieldKey,
                ReturnKey):
        cls._interned.clear()
    _INSTANCE_KEYS.clear()
    _POINTER_KEY_COUNT = 0

"""The heap graph view of a pointer-analysis solution (paper §4.1.1).

A bipartite graph over instance keys and pointer keys: ``P -> I`` when P
may point to I, and ``I -> P`` when P is a field (or the array contents)
of I.  Taint-carrier detection walks this graph from sink arguments with
a bounded field-dereference depth (§6.2.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .keys import FieldKey, InstanceKey, PointerKey
from .solver import PointerAnalysis


class HeapGraph:
    """Instance-key adjacency derived from points-to sets."""

    def __init__(self, analysis: PointerAnalysis) -> None:
        self._fields_of: Dict[InstanceKey, List[FieldKey]] = {}
        # iter_pts() also yields keys merged away by the solver's cycle
        # elimination, so collapsed field keys keep their adjacency.
        self._pts: Dict[PointerKey, Set[InstanceKey]] = {}
        for key, pts in analysis.iter_pts():
            if isinstance(key, FieldKey):
                self._fields_of.setdefault(key.instance, []).append(key)
                self._pts[key] = pts

    def field_keys(self, instance: InstanceKey) -> List[FieldKey]:
        return self._fields_of.get(instance, [])

    def successors(self, instance: InstanceKey) -> Set[InstanceKey]:
        """Objects reachable through exactly one field dereference."""
        out: Set[InstanceKey] = set()
        for fkey in self.field_keys(instance):
            out |= self._pts.get(fkey, set())
        return out

    def reachable(self, roots: Iterable[InstanceKey],
                  max_depth: int = None) -> Set[InstanceKey]:
        """Objects reachable from ``roots`` (roots included).

        ``max_depth`` bounds the number of field dereferences, per the
        nested-taint bound of §6.2.3; ``None`` means unbounded.
        """
        seen: Dict[InstanceKey, int] = {}
        frontier: List[Tuple[InstanceKey, int]] = [(r, 0) for r in roots]
        for root, depth in frontier:
            seen[root] = depth
        while frontier:
            node, depth = frontier.pop()
            if max_depth is not None and depth >= max_depth:
                continue
            for succ in self.successors(node):
                if succ not in seen or seen[succ] > depth + 1:
                    seen[succ] = depth + 1
                    frontier.append((succ, depth + 1))
        return set(seen)

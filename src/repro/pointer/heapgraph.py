"""The heap graph view of a pointer-analysis solution (paper §4.1.1).

A bipartite graph over instance keys and pointer keys: ``P -> I`` when P
may point to I, and ``I -> P`` when P is a field (or the array contents)
of I.  Taint-carrier detection walks this graph from sink arguments with
a bounded field-dereference depth (§6.2.3).

Adjacency is stored as **bitset ints** over a dense instance-key ID
space, so the one-step successor union and the reachability sweep are
bitwise ORs instead of per-element set operations.  Built from the
optimised solver the graph reuses the interner's global dense IDs
(:meth:`PointerAnalysis.iter_pts_bits` is zero-copy); built from a
solver with a foreign key family (the preserved seed baseline) it mints
its own local IDs, so the differential harness can run the identical
taint pipeline over both kernels.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from .keys import FieldKey, InstanceKey, decode_instance_bits

# The seed baseline uses its own FieldKey dataclass; both families are
# recognized structurally (an ``instance`` + ``fld`` pair).
from . import seedkeys


class HeapGraph:
    """Instance-key adjacency derived from points-to sets."""

    def __init__(self, analysis: object) -> None:
        self._fields_of: Dict[object, List[object]] = {}
        # field key -> bitset of the instance keys it may point to.
        self._pts_bits: Dict[object, int] = {}
        # Local dense-ID registry for foreign key families; ``None``
        # marks the interner's global ID space.  Plain attributes (not
        # closures) so the graph pickles into worker-pool snapshots.
        self._table: Optional[List[object]] = None
        self._index: Optional[Dict[object, int]] = None
        iter_bits = getattr(analysis, "iter_pts_bits", None)
        if iter_bits is not None:
            # Optimised solver: points-to sets already are bitsets over
            # the interner's global dense ID space.
            field_types = (FieldKey,)
            items = iter_bits()
        else:
            # Foreign key family (the seed baseline): mint local dense
            # IDs on first sight and encode its plain sets.
            self._table = []
            self._index = {}
            bit_of = self._bit_of
            field_types = (FieldKey, seedkeys.FieldKey)
            items = ((key, sum(map(bit_of, pts)))
                     for key, pts in analysis.iter_pts())
        # iter_pts*() also yields keys merged away by the solver's cycle
        # elimination, so collapsed field keys keep their adjacency.
        for key, bits in items:
            if isinstance(key, field_types):
                self._fields_of.setdefault(key.instance, []).append(key)
                self._pts_bits[key] = self._pts_bits.get(key, 0) | bits

    def _bit_of(self, ikey: object) -> int:
        if self._table is None:
            return ikey.bit
        idx = self._index.get(ikey)
        if idx is None:
            idx = len(self._table)
            self._index[ikey] = idx
            self._table.append(ikey)
        return 1 << idx

    def _decode(self, bits: int) -> List[object]:
        if self._table is None:
            return decode_instance_bits(bits)
        table = self._table
        out: List[object] = []
        while bits:
            low = bits & -bits
            out.append(table[low.bit_length() - 1])
            bits ^= low
        return out

    def field_keys(self, instance: object) -> List[object]:
        return self._fields_of.get(instance, [])

    def successors_bits(self, instance: object) -> int:
        """Bitset of the objects reachable through exactly one field
        dereference."""
        bits = 0
        pts = self._pts_bits
        for fkey in self._fields_of.get(instance, ()):
            bits |= pts.get(fkey, 0)
        return bits

    def successors(self, instance: object) -> Set[object]:
        """Objects reachable through exactly one field dereference."""
        return set(self._decode(self.successors_bits(instance)))

    def reachable(self, roots: Iterable[object],
                  max_depth: int = None) -> Set[object]:
        """Objects reachable from ``roots`` (roots included).

        ``max_depth`` bounds the number of field dereferences, per the
        nested-taint bound of §6.2.3; ``None`` means unbounded.  The
        sweep is a level-order BFS whose frontier and visited set are
        bitsets: each level costs one OR per frontier object plus one
        ``new & ~seen`` mask.
        """
        bit_of = self._bit_of
        frontier = list(roots)
        seen = 0
        for root in frontier:
            seen |= bit_of(root)
        out: Set[object] = set(frontier)
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            new_bits = 0
            for ikey in frontier:
                new_bits |= self.successors_bits(ikey)
            new_bits &= ~seen
            if not new_bits:
                break
            seen |= new_bits
            frontier = self._decode(new_bits)
            out.update(frontier)
            depth += 1
        return out

"""Context-sensitive Andersen pointer analysis and the heap graph."""

from .contexts import CallSiteContext, Context, EMPTY, ObjContext, truncate
from .heapgraph import HeapGraph
from .keys import (AllocSite, FieldKey, InstanceKey, LocalKey, PointerKey,
                   ReturnKey, StaticFieldKey)
from .policy import ContextPolicy, PolicyConfig
from .ordering import ChaoticOrder, OrderingPolicy
from .solver import PointerAnalysis

__all__ = [
    "AllocSite", "CallSiteContext", "ChaoticOrder", "Context",
    "ContextPolicy", "EMPTY", "FieldKey", "HeapGraph", "InstanceKey",
    "LocalKey", "ObjContext", "OrderingPolicy", "PointerAnalysis",
    "PointerKey", "PolicyConfig", "ReturnKey", "StaticFieldKey", "truncate",
]

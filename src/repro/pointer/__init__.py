"""Context-sensitive Andersen pointer analysis and the heap graph."""

from .contexts import (CallSiteContext, Context, EMPTY, ObjContext,
                       clear_context_caches, truncate)
from .heapgraph import HeapGraph
from .keys import (AllocSite, FieldKey, InstanceKey, LocalKey, PointerKey,
                   ReturnKey, StaticFieldKey, clear_key_caches,
                   decode_instance_bits, encode_instance_keys,
                   instance_key_count)
from .policy import ContextPolicy, PolicyConfig
from .ordering import ChaoticOrder, OrderingPolicy
from .scc import UnionFind, copy_cycles
from .solver import PointerAnalysis
from .baseline import SeedPointerAnalysis

__all__ = [
    "AllocSite", "CallSiteContext", "ChaoticOrder", "Context",
    "ContextPolicy", "EMPTY", "FieldKey", "HeapGraph", "InstanceKey",
    "LocalKey", "ObjContext", "OrderingPolicy", "PointerAnalysis",
    "PointerKey", "PolicyConfig", "ReturnKey", "SeedPointerAnalysis",
    "StaticFieldKey", "UnionFind", "clear_context_caches",
    "clear_key_caches", "copy_cycles", "decode_instance_bits",
    "encode_instance_keys", "instance_key_count", "truncate",
]


def clear_intern_caches() -> None:
    """Drop every key/context intern table.

    Only safe *between* analyses in a long-running process: keys held by
    an earlier analysis stop being identical to newly minted ones
    (structural equality still holds)."""
    clear_key_caches()
    clear_context_caches()


__all__.append("clear_intern_caches")

"""Field-sensitive, context-sensitive Andersen's analysis with on-the-fly
call-graph construction (paper §3.1).

The solver alternates between two phases exactly as §6.1 describes:

1. **constraint adding** — pop a pending call-graph node (a method in a
   context) from the ordering policy and add inclusion constraints for
   its instructions;
2. **constraint solving** — run the difference-propagation worklist to a
   fixed point, which may discover new virtual-dispatch targets and
   therefore enqueue new pending nodes.

The ordering policy is pluggable: chaotic iteration (FIFO) or the
priority-driven scheme of §6.1.  A call-graph node budget makes the
result deliberately underapproximate, as in the paper's prioritized
configurations.

String values are invisible here: the string-carrier model (§4.2.1) has
already rewritten string manipulation into primitive ``StringOp``s, so
strings never pollute points-to sets.

This is the *optimised* kernel; the seed solver it replaced survives in
:mod:`repro.pointer.baseline` as the differential/perf baseline.  Four
constraint-graph optimisations (``docs/performance.md``) set the two
apart:

* **online cycle elimination** — copy-edge cycles are collapsed through
  the union-find in :mod:`repro.pointer.scc`; every solver structure is
  keyed by representatives and cycle members share one points-to set;
* **coalescing worklist** — a key already pending accumulates new facts
  into its pending-delta bitset instead of enqueueing another entry, so
  a key is processed once per drain with its whole accumulated delta
  (the seed enqueued one frozenset per ``add_pts`` call);
* **interned keys** — see :mod:`repro.pointer.keys`: identity-compared,
  hash-precomputed keys make the dict probes this loop lives on cheap;
* **dense bitset points-to sets** — a points-to set is one Python int
  over the dense instance-key ID space: union is ``|``, the new-facts
  diff is ``delta & ~current``, and a whole-set propagation is a single
  C-level big-int operation instead of a per-element hash loop.  Keys
  decode back to :class:`~repro.pointer.keys.InstanceKey` objects only
  at the API boundary (:meth:`PointerAnalysis.points_to`,
  :meth:`PointerAnalysis.iter_pts`) and at the watch seams that need
  per-object dispatch.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, FrozenSet, Iterable, Iterator, List, \
    Optional, Set, Tuple

from ..bounds import Budget, UNBOUNDED
from ..callgraph.graph import CallGraph, CGNode
from ..obs import DISABLED
from ..resilience import DeadlineExceeded
from ..ir import (ARRAY_CONTENTS, ArrayLoad, ArrayStore, Assign, Call, Cast,
                  ClassHierarchy, EnterCatch, Load, Method, New, NewArray,
                  Phi, Program, Return, Select, StaticLoad, StaticStore,
                  Store)
from .contexts import Context, EMPTY
from .keys import (AllocSite, FieldKey, InstanceKey, LocalKey, PointerKey,
                   ReturnKey, StaticFieldKey, decode_instance_bits,
                   encode_instance_keys)
from .ordering import ChaoticOrder, OrderingPolicy
from .policy import ContextPolicy
from .scc import UnionFind, copy_cycles

_EMPTY_FROZEN: FrozenSet[InstanceKey] = frozenset()


class PointerAnalysis:
    """The solver; results live in ``pts``, ``call_graph``.

    ``pts`` is keyed by cycle *representatives* and its values are
    **bitset ints** over the dense instance-key ID space; external
    callers should go through :meth:`points_to` / :meth:`iter_pts`,
    which normalize any key through the union-find and decode the bits
    back into :class:`InstanceKey` sets (:meth:`iter_pts_bits` exposes
    the raw representation for bitset-aware consumers such as
    :class:`~repro.pointer.heapgraph.HeapGraph`).
    """

    def __init__(self, program: Program,
                 policy: Optional[ContextPolicy] = None,
                 natives: Optional[object] = None,
                 order: Optional[OrderingPolicy] = None,
                 budget: Budget = UNBOUNDED,
                 excluded_classes: Optional[Set[str]] = None,
                 obs: Optional[object] = None,
                 resilience: Optional[object] = None) -> None:
        self.program = program
        self.hierarchy = ClassHierarchy(program)
        self.policy = policy or ContextPolicy()
        self.natives = natives
        # Note: ordering policies define __bool__ as "has pending
        # nodes", so an explicit None check is required here.
        self.order = ChaoticOrder() if order is None else order
        self.order.attach(self)
        self.budget = budget
        # Whitelisted benign classes (paper §4.2.1): calls into them are
        # never bound, so they get no call-graph nodes or constraints.
        self.excluded_classes = excluded_classes or set()
        self.call_graph = CallGraph()
        self.truncated = False          # budget cut the analysis short
        # Resilience (repro.resilience): the solver checks the
        # ``pointer.solve`` seam once per node; a tripped deadline
        # truncates the solve (partial call graph, like the node
        # budget) instead of killing the run.
        self.resilience = resilience
        self.deadline_exceeded = False

        # All of the following are keyed by cycle representatives.
        # Points-to sets are bitset ints (bit i set <=> the key may
        # point to the instance key with dense index i).
        self.pts: Dict[PointerKey, int] = {}
        # Copy successors as an insertion-ordered set (dict keys).
        self._succs: Dict[PointerKey, Dict[PointerKey, None]] = {}
        # base key -> [(field, destination local key)]
        self._load_watch: Dict[PointerKey, List[Tuple[str, PointerKey]]] = {}
        # base key -> [(field, source key)]
        self._store_watch: Dict[PointerKey, List[Tuple[str, PointerKey]]] = {}
        # receiver key -> [(caller node, call instruction)]
        self._call_watch: Dict[PointerKey, List[Tuple[CGNode, Call]]] = {}
        self._dispatched: Set[Tuple[CGNode, int, InstanceKey]] = set()
        # Coalescing worklist: a key is pending iff it has an entry in
        # _pending; facts arriving while pending OR into that bitset.
        self._pending: Dict[PointerKey, int] = {}
        self._worklist: Deque[PointerKey] = deque()
        self._scc = UnionFind()
        # Lazy cycle detection: sources of copy edges that re-delivered a
        # fully redundant delta accumulate as suspects; an SCC pass runs
        # once enough pile up (or when the worklist drains), rooted at
        # the suspects only — a cycle through a suspect edge is reachable
        # from that edge's source, so the sweep never has to touch the
        # rest of the graph.
        self._suspect_srcs: Dict[PointerKey, None] = {}
        self._lcd_checked: Set[Tuple[PointerKey, PointerKey]] = set()
        self._processed_nodes: Set[CGNode] = set()
        self.stats = {"propagations": 0, "edges": 0, "nodes_processed": 0,
                      "cycles_collapsed": 0, "keys_merged": 0,
                      "coalesced_deltas": 0, "scc_runs": 0}
        # Wall-clock seconds per solver phase (paper §6.1's alternation).
        self.phase_seconds = {"constraint_adding": 0.0,
                              "constraint_solving": 0.0}
        # Observability (repro.obs): recorded once after the fixpoint —
        # the hot propagation loop itself stays uninstrumented.
        self.obs = DISABLED if obs is None else obs
        self._worklist_peak = 0
        self._scc_seconds = 0.0
        self._solve_started = 0.0

    # A solved analysis pickles as its *solution*: the points-to bits,
    # the union-find normalizing keys into cycle representatives, and
    # the call graph — everything the query API (``points_to*``,
    # ``iter_pts*``) reads.  Solver-time collaborators (context policy,
    # native summaries, ordering policy, obs, resilience) and the
    # constraint-graph worklists do not travel; the unpickled object
    # answers queries but cannot resume ``solve()``.  This is what lets
    # the taint engine ship one analysis snapshot to a persistent
    # worker pool (``repro.parallel``) under any start method.
    _SNAPSHOT_ATTRS = ("program", "pts", "call_graph", "_scc",
                       "truncated", "deadline_exceeded", "stats",
                       "phase_seconds", "excluded_classes")

    def __getstate__(self):
        return {name: getattr(self, name)
                for name in self._SNAPSHOT_ATTRS}

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.hierarchy = None
        self.policy = None
        self.natives = None
        self.order = None
        self.budget = UNBOUNDED
        self.resilience = None
        self.obs = DISABLED

    # ------------------------------------------------------------------ API

    def solve(self) -> None:
        """Run to completion (or to the call-graph node budget)."""
        for qname in self.program.entrypoints:
            node = self._make_node(qname, EMPTY)
            if node is not None:
                self.call_graph.entrypoints.append(node)
        clock = time.perf_counter
        self._solve_started = clock()
        resilience = self.resilience
        progress = getattr(self.obs, "progress", None)
        if progress is not None and not progress.enabled:
            progress = None
        while True:
            if self._budget_met():
                self.truncated = True
                break
            if resilience is not None:
                try:
                    resilience.check("pointer.solve",
                                     phase="pointer_analysis")
                except DeadlineExceeded:
                    # Wall-clock budget spent: stop here, keep the
                    # partial call graph (same contract as the node
                    # budget).  Injected non-deadline faults propagate
                    # to the facade's phase guard.
                    self.truncated = True
                    self.deadline_exceeded = True
                    break
            node = self.order.pop()
            if node is None:
                break
            if node in self._processed_nodes:
                continue
            self._processed_nodes.add(node)
            self.stats["nodes_processed"] += 1
            started = clock()
            self._add_constraints(node)
            added = clock()
            self._solve_constraints()
            solved = clock()
            self.phase_seconds["constraint_adding"] += added - started
            self.phase_seconds["constraint_solving"] += solved - added
            if progress is not None:
                progress.update(cg_nodes=len(self.call_graph.nodes),
                                worklist=self._worklist_peak)
        # Residual suspects below the batch threshold: collapse at the
        # end so discovered cycles are merged in the final solution (a
        # merge can re-pend owed facts, whose propagation may in turn
        # raise fresh suspects — each edge is suspected at most once, so
        # this drains in a bounded number of rounds).
        while self._suspect_srcs:
            started = clock()
            self._collapse_cycles()
            self._solve_constraints()
            self.phase_seconds["constraint_solving"] += clock() - started
        self._record_obs()

    def points_to(self, key: PointerKey) -> FrozenSet[InstanceKey]:
        """Immutable snapshot of a key's points-to set.

        Decodes the internal bitset into a fresh frozenset, so the live
        representation (shared by every member of a collapsed cycle)
        never leaks to callers.
        """
        bits = self.pts.get(self._scc.find(key), 0)
        return frozenset(decode_instance_bits(bits)) if bits \
            else _EMPTY_FROZEN

    def points_to_bits(self, key: PointerKey) -> int:
        """A key's points-to set as a raw bitset int (union over the
        dense instance-key ID space)."""
        return self.pts.get(self._scc.find(key), 0)

    def points_to_var(self, method: str, var: str,
                      context: Optional[Context] = None) -> Set[InstanceKey]:
        """Points-to set of a local, unioned over contexts if none given."""
        if context is not None:
            return set(self.points_to(LocalKey(method, context, var)))
        bits = 0
        pts_get = self.pts.get
        find = self._scc.find
        for node in self.call_graph.nodes_of_method(method):
            bits |= pts_get(find(LocalKey(method, node.context, var)), 0)
        return set(decode_instance_bits(bits))

    def points_to_var_bits(self, method: str, var: str) -> int:
        """Context-collapsed points-to set of a local as a bitset."""
        bits = 0
        pts_get = self.pts.get
        find = self._scc.find
        for node in self.call_graph.nodes_of_method(method):
            bits |= pts_get(find(LocalKey(method, node.context, var)), 0)
        return bits

    def iter_pts(self) -> Iterator[Tuple[PointerKey, Set[InstanceKey]]]:
        """(key, points-to set) for every key the solver has seen,
        including keys merged away by cycle collapsing (they yield their
        representative's set).  Sets are freshly decoded copies."""
        for key, bits in self.iter_pts_bits():
            yield key, set(decode_instance_bits(bits))

    def iter_pts_bits(self) -> Iterator[Tuple[PointerKey, int]]:
        """(key, bitset) for every key the solver has seen — the
        zero-copy view bitset-aware consumers build on."""
        yield from self.pts.items()
        find = self._scc.find
        for key in self._scc.merged_keys():
            bits = self.pts.get(find(key), 0)
            if bits:
                yield key, bits

    def representative(self, key: PointerKey) -> PointerKey:
        """The key's cycle representative (itself if never merged)."""
        return self._scc.find(key)

    # Key factories: native-method summaries build keys through these so
    # every solver's tables only ever hold its own key family (the seed
    # baseline overrides them with the original dataclass keys).

    def make_alloc(self, method: str, iid: int,
                   class_name: str) -> InstanceKey:
        return InstanceKey(AllocSite(method, iid, class_name))

    def make_local(self, method: str, context: Context,
                   var: str) -> LocalKey:
        return LocalKey(method, context, var)

    def make_field(self, instance: InstanceKey, fld: str) -> FieldKey:
        return FieldKey(instance, fld)

    # --------------------------------------------------------------- helpers

    def _budget_met(self) -> bool:
        limit = self.budget.max_cg_nodes
        return limit is not None and self.call_graph.node_count() >= limit

    def _make_node(self, qname: str, context: Context) -> Optional[CGNode]:
        node = CGNode(qname, context)
        if self.call_graph.add_node(node):
            method = self.program.lookup_method(qname)
            if method is not None and not method.is_native:
                self.order.on_node_created(node)
        return node

    def add_pts(self, key: PointerKey, ikeys: Iterable[InstanceKey]) -> bool:
        """Add instance keys to a pointer key, scheduling propagation.

        The iterable-of-keys form is the external API (native-method
        summaries build on it); internally everything rides on
        :meth:`add_pts_bits`."""
        return self.add_pts_bits(key, encode_instance_keys(ikeys))

    def add_pts_bits(self, key: PointerKey, bits: int) -> bool:
        """Bitset core of :meth:`add_pts`: OR ``bits`` into the key's
        set, scheduling propagation of the genuinely new bits.

        Returns whether anything new arrived (the lazy-cycle-detection
        trigger).  New facts coalesce into the key's pending-delta
        bitset, so a key occupies at most one worklist slot."""
        key = self._scc.find(key)
        current = self.pts.get(key, 0)
        new = bits & ~current
        if not new:
            return False
        self.pts[key] = current | new
        pending = self._pending.get(key)
        if pending is None:
            self._pending[key] = new
            self._worklist.append(key)
        else:
            self._pending[key] = pending | new
            self.stats["coalesced_deltas"] += 1
        return True

    def add_copy_edge(self, src: PointerKey, dst: PointerKey) -> None:
        """Add a subset edge src ⊆ dst and flush current contents."""
        find = self._scc.find
        src, dst = find(src), find(dst)
        if src is dst:
            return
        succs = self._succs.get(src)
        if succs is None:
            succs = self._succs[src] = {}
        elif dst in succs:
            return
        succs[dst] = None
        self.stats["edges"] += 1
        existing = self.pts.get(src, 0)
        if existing:
            self.add_pts_bits(dst, existing)

    def register_call_watch(self, key: PointerKey, node: CGNode,
                            call: Call) -> None:
        """Watch ``key`` for new receivers of ``call``, dispatching the
        already-known ones (used by native-method summaries too)."""
        key = self._scc.find(key)
        self._call_watch.setdefault(key, []).append((node, call))
        # Decoding yields a fresh list, so dispatching may grow the
        # live set without invalidating this snapshot (coalesced facts
        # are delivered later through the watch we just registered).
        for ikey in decode_instance_bits(self.pts.get(key, 0)):
            self._dispatch(node, call, ikey)

    # ------------------------------------------------------ constraint adding

    def _local(self, node: CGNode, var: str) -> LocalKey:
        return LocalKey(node.method, node.context, var)

    def _add_constraints(self, node: CGNode) -> None:
        method = self.program.lookup_method(node.method)
        if method is None or method.is_native:
            return
        ret_key = ReturnKey(node.method, node.context)
        for instr in method.instructions():
            if isinstance(instr, New):
                self._alloc(node, method, instr.iid, instr.class_name,
                            instr.lhs)
            elif isinstance(instr, NewArray):
                self._alloc(node, method, instr.iid,
                            f"{instr.element_type}[]", instr.lhs)
            elif isinstance(instr, EnterCatch):
                # A caught exception is a fresh abstract object: thrown
                # values are not routed (see repro.lang.lower); TAJ instead
                # treats the catch itself as producing the object whose
                # message is a taint source (§4.1.2).
                self._alloc(node, method, instr.iid, instr.exc_type,
                            instr.lhs)
            elif isinstance(instr, Assign):
                self.add_copy_edge(self._local(node, instr.rhs),
                                   self._local(node, instr.lhs))
            elif isinstance(instr, Cast):
                self.add_copy_edge(self._local(node, instr.value),
                                   self._local(node, instr.lhs))
            elif isinstance(instr, Phi):
                lhs = self._local(node, instr.lhs)
                for operand in instr.operands.values():
                    self.add_copy_edge(self._local(node, operand), lhs)
            elif isinstance(instr, Select):
                lhs = self._local(node, instr.lhs)
                for operand in instr.args:
                    self.add_copy_edge(self._local(node, operand), lhs)
            elif isinstance(instr, Load):
                self._watch_load(self._local(node, instr.base), instr.fld,
                                 self._local(node, instr.lhs))
            elif isinstance(instr, Store):
                self._watch_store(self._local(node, instr.base), instr.fld,
                                  self._local(node, instr.rhs))
            elif isinstance(instr, ArrayLoad):
                self._watch_load(self._local(node, instr.base),
                                 ARRAY_CONTENTS,
                                 self._local(node, instr.lhs))
            elif isinstance(instr, ArrayStore):
                self._watch_store(self._local(node, instr.base),
                                  ARRAY_CONTENTS,
                                  self._local(node, instr.rhs))
            elif isinstance(instr, StaticLoad):
                self.add_copy_edge(self._static_key(instr.class_name,
                                                    instr.fld),
                                   self._local(node, instr.lhs))
            elif isinstance(instr, StaticStore):
                self.add_copy_edge(self._local(node, instr.rhs),
                                   self._static_key(instr.class_name,
                                                    instr.fld))
            elif isinstance(instr, Return):
                if instr.value:
                    self.add_copy_edge(self._local(node, instr.value),
                                       ret_key)
            elif isinstance(instr, Call):
                self._add_call(node, instr)

    def _alloc(self, node: CGNode, method: Method, iid: int,
               class_name: str, lhs: str) -> None:
        heap_ctx = self.policy.heap_context(method, node.context)
        ikey = InstanceKey(AllocSite(node.method, iid, class_name), heap_ctx)
        self.add_pts_bits(self._local(node, lhs), ikey.bit)

    def _static_key(self, class_name: str, fld: str) -> StaticFieldKey:
        owner = self.hierarchy.resolve_field_owner(class_name, fld)
        return StaticFieldKey(owner or class_name, fld)

    def _watch_load(self, base: PointerKey, fld: str,
                    dst: PointerKey) -> None:
        base = self._scc.find(base)
        self._load_watch.setdefault(base, []).append((fld, dst))
        for ikey in decode_instance_bits(self.pts.get(base, 0)):
            self.add_copy_edge(FieldKey(ikey, fld), dst)

    def _watch_store(self, base: PointerKey, fld: str,
                     src: PointerKey) -> None:
        base = self._scc.find(base)
        self._store_watch.setdefault(base, []).append((fld, src))
        for ikey in decode_instance_bits(self.pts.get(base, 0)):
            self.add_copy_edge(src, FieldKey(ikey, fld))

    def _add_call(self, node: CGNode, call: Call) -> None:
        if call.kind == "static":
            callee = self.hierarchy.lookup_static(
                call.class_name, call.method_name, call.arity)
            if callee is not None:
                self._bind_call(node, call, callee, None)
            return
        # virtual / special: dispatch per receiver instance key.
        if call.receiver is None:
            return
        self.register_call_watch(self._local(node, call.receiver), node,
                                 call)

    # ------------------------------------------------------ call processing

    def _dispatch(self, node: CGNode, call: Call,
                  receiver: InstanceKey) -> None:
        token = (node, call.iid, receiver)
        if token in self._dispatched:
            return
        self._dispatched.add(token)
        if call.kind == "special":
            callee = self.hierarchy.lookup_static(
                call.class_name, call.method_name, call.arity)
        else:
            callee = self.hierarchy.dispatch(
                receiver.class_name, call.method_name, call.arity)
        if callee is not None:
            self._bind_call(node, call, callee, receiver)

    def _bind_call(self, node: CGNode, call: Call, callee: Method,
                   receiver: Optional[InstanceKey]) -> None:
        if callee.class_name in self.excluded_classes:
            return
        context = self.policy.callee_context(
            node.method, node.context, call, callee, receiver)
        if callee.is_native:
            target = CGNode(callee.qname, context)
            self.call_graph.add_node(target)
            self.call_graph.add_edge(node, call.iid, target)
            if self.natives is not None:
                self.natives.apply(self, node, call, callee, receiver)
            return
        target = self._make_node(callee.qname, context)
        if target is None:
            return
        if self.call_graph.add_edge(node, call.iid, target):
            self.order.on_edge(node, target)
        if receiver is not None and not callee.is_static:
            self.add_pts_bits(LocalKey(callee.qname, context, "this"),
                              receiver.bit)
        for actual, param in zip(call.args, callee.param_names()):
            self.add_copy_edge(self._local(node, actual),
                               LocalKey(callee.qname, context, param))
        if call.lhs:
            self.add_copy_edge(ReturnKey(callee.qname, context),
                               self._local(node, call.lhs))

    # ------------------------------------------------------ constraint solving

    def _solve_constraints(self) -> None:
        # Worklist high-water mark, sampled once per drain (the deepest
        # point is right after a node's constraints were added).
        if len(self._worklist) > self._worklist_peak:
            self._worklist_peak = len(self._worklist)
        find = self._scc.find
        # Fast-path probe: a key is merged iff it has a parent entry, so
        # the common (cycle-free) case pays one C-level dict get instead
        # of a Python call into find().
        merged_probe = self._scc._parent.get
        worklist = self._worklist
        pending = self._pending
        all_succs = self._succs
        load_watch = self._load_watch
        store_watch = self._store_watch
        call_watch = self._call_watch
        suspects = self._suspect_srcs
        lcd_batch = self.LCD_BATCH
        stats = self.stats
        add_pts_bits = self.add_pts_bits
        add_copy_edge = self.add_copy_edge
        checked = self._lcd_checked
        decode = decode_instance_bits
        while worklist:
            key = worklist.popleft()
            delta = pending.pop(key, None)
            if delta is None:
                continue        # merged away or already drained
            stats["propagations"] += 1
            succs = all_succs.get(key)
            if succs:
                # add_pts_bits never touches _succs: iterate directly.
                # The whole delta moves per edge as one big-int OR.
                for dst in succs:
                    if merged_probe(dst) is not None:
                        dst = find(dst)
                        if dst is key:
                            continue
                    if not add_pts_bits(dst, delta):
                        # Fully redundant re-delivery: this edge may
                        # close a copy cycle.  Check each edge once.
                        edge = (key, dst)
                        if edge not in checked:
                            checked.add(edge)
                            suspects[key] = None
            # The field/call watch seams need per-object dispatch, so
            # the delta is decoded once, lazily, and shared by all
            # three watch kinds.
            delta_keys = None
            watches = load_watch.get(key)
            if watches:
                delta_keys = decode(delta)
                for fld, dst in watches:
                    for ikey in delta_keys:
                        add_copy_edge(FieldKey(ikey, fld), dst)
            watches = store_watch.get(key)
            if watches:
                if delta_keys is None:
                    delta_keys = decode(delta)
                for fld, src in watches:
                    for ikey in delta_keys:
                        add_copy_edge(src, FieldKey(ikey, fld))
            watches = call_watch.get(key)
            if watches:
                if delta_keys is None:
                    delta_keys = decode(delta)
                # Snapshot: dispatching can register further watchers.
                for caller_node, call in list(watches):
                    for ikey in delta_keys:
                        self._dispatch(caller_node, call, ikey)
            if len(suspects) >= lcd_batch:
                self._collapse_cycles()

    # ------------------------------------------------------ cycle elimination

    # Suspect edges tolerated before a mid-drain SCC pass runs.
    LCD_BATCH = 32

    def _collapse_cycles(self) -> None:
        """Run SCC detection rooted at the suspect edges and merge each
        cycle found.  Rooting at suspects keeps the sweep proportional
        to the subgraph they can reach, not the whole copy graph."""
        scc_started = time.perf_counter()
        find = self._scc.find
        roots = [find(k) for k in self._suspect_srcs]
        self._suspect_srcs.clear()
        self.stats["scc_runs"] += 1
        for comp in copy_cycles(self._succs, find, roots):
            self.stats["cycles_collapsed"] += 1
            winner = comp[0]
            for loser in comp[1:]:
                winner_root, loser_root = self._scc.union(winner, loser)
                if winner_root is not loser_root:
                    self._merge_into(winner_root, loser_root)
                winner = winner_root
        self._scc_seconds += time.perf_counter() - scc_started

    # ------------------------------------------------------ observability

    def _record_obs(self) -> None:
        """Publish kernel counters, sub-phase timers, and distribution
        histograms to the observability bundle (one shot, post-solve)."""
        obs = self.obs
        if not obs.enabled:
            return
        metrics = obs.metrics
        metrics.merge_counters(self.stats, prefix="pointer.")
        for phase, seconds in self.phase_seconds.items():
            metrics.record_time(f"pointer.{phase}", seconds)
        metrics.record_time("pointer.scc_collapse", self._scc_seconds)
        metrics.gauge_max("pointer.worklist_depth_peak",
                          self._worklist_peak)
        metrics.record_values("pointer.pts_set_size",
                              [bits.bit_count()
                               for bits in self.pts.values()])
        metrics.gauge("pointer.pts_keys", len(self.pts))
        for name, value in self.call_graph.size_stats().items():
            metrics.gauge(f"callgraph.{name}", value)
        # Synthetic sub-phase spans: the alternation is measured inline
        # (a span per pended node would swamp the trace), so the
        # aggregates are emitted as pre-timed children laid end to end
        # under the open phase.pointer_analysis span.
        start = self._solve_started
        adding = self.phase_seconds["constraint_adding"]
        solving = self.phase_seconds["constraint_solving"]
        tracer = obs.tracer
        tracer.add_completed(
            "pointer.constraint_adding", start, adding,
            {"nodes_processed": self.stats["nodes_processed"],
             "edges": self.stats["edges"]})
        tracer.add_completed(
            "pointer.constraint_solving", start + adding, solving,
            {"propagations": self.stats["propagations"],
             "coalesced_deltas": self.stats["coalesced_deltas"]})
        if self._scc_seconds or self.stats["scc_runs"]:
            tracer.add_completed(
                "pointer.scc_collapse", start + adding + solving,
                self._scc_seconds,
                {"scc_runs": self.stats["scc_runs"],
                 "cycles_collapsed": self.stats["cycles_collapsed"],
                 "keys_merged": self.stats["keys_merged"]})

    def _merge_into(self, winner: PointerKey, loser: PointerKey) -> None:
        """Fold the loser's solver state into the winner (already
        unioned in the union-find)."""
        self.stats["keys_merged"] += 1
        find = self._scc.find
        loser_pts = self.pts.pop(loser, 0)
        loser_pending = self._pending.pop(loser, 0)
        winner_pts = self.pts.get(winner, 0)
        # Facts one side has propagated but the other has not: both
        # successor lists are about to be unified, so everything either
        # side might still owe its (old) successors must be re-pending.
        owed = (winner_pts ^ loser_pts) | loser_pending
        self.pts[winner] = winner_pts | loser_pts
        if owed:
            pending = self._pending.get(winner)
            if pending is None:
                self._pending[winner] = owed
                self._worklist.append(winner)
            else:
                self._pending[winner] = pending | owed
        # Unify copy successors, dropping self-loops and duplicates.
        merged: Dict[PointerKey, None] = {}
        for dst in (*self._succs.pop(winner, ()),
                    *self._succs.pop(loser, ())):
            dst = find(dst)
            if dst is not winner:
                merged[dst] = None
        if merged:
            self._succs[winner] = merged
        # Concatenate watch lists; duplicates are deduplicated
        # downstream (edge set membership / _dispatched tokens).
        for watch in (self._load_watch, self._store_watch,
                      self._call_watch):
            tail = watch.pop(loser, None)
            if tail:
                head = watch.get(winner)
                if head is None:
                    watch[winner] = tail
                else:
                    head.extend(tail)

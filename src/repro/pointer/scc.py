"""Online cycle elimination for the constraint graph (solver kernel).

Andersen-style solvers spend most of their time re-propagating identical
points-to sets around copy-edge cycles: every member of a cycle provably
converges to the same set, so the cycle can be collapsed to a single
representative whose set — one bitset int in the optimised kernel — is
shared.  This module supplies the two ingredients the solver needs:

* :class:`UnionFind` — a union-find structure over pointer keys mapping
  every key to its current representative (path compression + union by
  rank).  Keys that were never merged pay a single dict probe.
* :func:`copy_cycles` — an iterative Tarjan SCC pass over the (already
  representative-normalized) copy graph, returning only the non-trivial
  components.

The solver drives these lazily (Nuutila / lazy-cycle-detection style):
when a propagation re-delivers an identical delta along a copy edge, the
edge is suspected of lying on a cycle and an SCC pass runs before the
worklist continues; each discovered cycle is merged into one
representative.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Tuple

Key = Hashable


class UnionFind:
    """Union-find over hashable keys with a sparse parent table.

    Unmerged keys are their own representative and are *not* stored, so
    ``find`` on the common (acyclic) path is one failed dict probe.
    """

    def __init__(self) -> None:
        self._parent: Dict[Key, Key] = {}
        self._rank: Dict[Key, int] = {}

    def find(self, key: Key) -> Key:
        parent = self._parent
        root = parent.get(key)
        if root is None:
            return key
        # Walk to the root, then compress the whole path.
        while True:
            nxt = parent.get(root)
            if nxt is None:
                break
            root = nxt
        while key is not root:
            nxt = parent[key]
            parent[key] = root
            key = nxt
            if key not in parent:
                break
        return root

    def union(self, a: Key, b: Key) -> Tuple[Key, Key]:
        """Merge the sets of ``a`` and ``b``; returns ``(winner, loser)``
        roots (``loser is winner`` when already merged)."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra, ra
        rank = self._rank
        ka, kb = rank.get(ra, 0), rank.get(rb, 0)
        if ka < kb:
            ra, rb = rb, ra
        elif ka == kb:
            rank[ra] = ka + 1
        self._parent[rb] = ra
        self._rank.pop(rb, None)
        return ra, rb

    def same(self, a: Key, b: Key) -> bool:
        return self.find(a) == self.find(b)

    def merged_keys(self) -> Iterable[Key]:
        """Every key that was merged away (is not its own
        representative)."""
        return self._parent.keys()

    def merged_count(self) -> int:
        return len(self._parent)


def copy_cycles(succs: Mapping[Key, Iterable[Key]],
                find: Callable[[Key], Key],
                roots: Iterable[Key] = None) -> List[List[Key]]:
    """Non-trivial strongly connected components of the copy graph.

    ``succs`` maps representative keys to successor iterables whose
    entries may be stale (merged away); ``find`` normalizes them.
    ``roots`` restricts the sweep to components reachable from those
    keys (the solver passes the sources of suspected cycle edges — any
    cycle through edge ``src -> dst`` is reachable from ``src``);
    ``None`` sweeps the whole graph.  Iterative Tarjan — constraint
    graphs routinely exceed Python's recursion limit.  ``succs`` is
    read-only for the duration of the sweep (the solver only collapses
    the discovered components afterwards), so successor iterables are
    iterated in place without defensive copies.
    """
    index: Dict[Key, int] = {}
    lowlink: Dict[Key, int] = {}
    on_stack: Dict[Key, bool] = {}
    stack: List[Key] = []
    sccs: List[List[Key]] = []
    counter = 0

    for start in (list(succs) if roots is None else roots):
        start = find(start)
        if start in index:
            continue
        # Each frame: (node, iterator over normalized successors).
        work: List[Tuple[Key, Iterable[Key]]] = []
        index[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack[start] = True
        work.append((start, iter(succs.get(start, ()))))
        while work:
            node, it = work[-1]
            advanced = False
            for raw in it:
                succ = find(raw)
                if succ is node:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(succs.get(succ, ()))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    if index[succ] < lowlink[node]:
                        lowlink[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index[node]:
                comp: List[Key] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    comp.append(member)
                    if member is node:
                        break
                if len(comp) > 1:
                    sccs.append(comp)
    return sccs

"""Constraint-adding ordering policies (interface + chaotic baseline).

Kept in a leaf module so both the pointer solver and the priority-driven
scheme in :mod:`repro.callgraph.priority` can import it without cycles.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..callgraph.graph import CGNode
    from .solver import PointerAnalysis


class OrderingPolicy:
    """Decides the order in which pending call-graph nodes get their
    pointer-analysis constraints added (paper §6.1)."""

    solver: "PointerAnalysis"

    def attach(self, solver: "PointerAnalysis") -> None:
        self.solver = solver

    def on_node_created(self, node: "CGNode") -> None:
        raise NotImplementedError

    def on_edge(self, caller: "CGNode", callee: "CGNode") -> None:
        """Called for every new call-graph edge; priority schemes use it
        to propagate locality along the growing graph."""

    def pop(self) -> Optional["CGNode"]:
        raise NotImplementedError

    def __bool__(self) -> bool:
        raise NotImplementedError


class ChaoticOrder(OrderingPolicy):
    """Plain FIFO constraint adding (the paper's chaotic iteration)."""

    def __init__(self) -> None:
        self._queue: Deque["CGNode"] = deque()

    def on_node_created(self, node: "CGNode") -> None:
        self._queue.append(node)

    def pop(self) -> Optional["CGNode"]:
        return self._queue.popleft() if self._queue else None

    def __bool__(self) -> bool:
        return bool(self._queue)

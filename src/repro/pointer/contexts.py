"""Calling contexts for the pointer analysis.

TAJ's context-sensitivity policy (paper §3.1) mixes three kinds of
context:

* the **empty** context (context-insensitive treatment);
* **object contexts** — the abstraction of the receiver object (one level
  for most methods, unlimited depth for collection classes);
* **call-site contexts** — one level of call string for library factory
  methods and taint-specific APIs.

Contexts nest because instance keys embed their heap context; the
``truncate`` helper bounds total nesting so unlimited-depth object
sensitivity terminates even through recursive data structures.

Contexts are **interned**: constructing a context with the same fields
returns the same object, so contexts compare and hash *by identity* (the
default ``object`` semantics) and the solver's dict operations never
re-hash nested structures.  ``__reduce__`` re-interns on unpickling so
``pickle``/``copy.deepcopy`` round-trips stay identity-correct.  Depths
are precomputed at construction time.
"""

from __future__ import annotations

from typing import Dict, Tuple


class Context:
    """Base class of all contexts; ``Context()`` is the empty context."""

    __slots__ = ("_depth",)

    _instance: "Context" = None

    def __new__(cls) -> "Context":
        self = cls._instance
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "_depth", 0)
            cls._instance = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def depth(self) -> int:
        return self._depth

    def __reduce__(self):
        return (Context, ())

    def __str__(self) -> str:
        return "ε"

    def __repr__(self) -> str:
        return f"<ctx {self}>"


EMPTY = Context()


class ObjContext(Context):
    """Receiver-object sensitivity: context is an instance key."""

    __slots__ = ("receiver",)

    _interned: Dict[object, "ObjContext"] = {}

    def __new__(cls, receiver: "object") -> "ObjContext":
        # receiver is an InstanceKey; typed loosely to avoid a cycle.
        self = cls._interned.get(receiver)
        if self is None:
            self = object.__new__(cls)
            _set = object.__setattr__
            _set(self, "receiver", receiver)
            _set(self, "_depth",
                 1 + receiver.context.depth())  # type: ignore[attr-defined]
            cls._interned[receiver] = self
        return self

    def __reduce__(self):
        return (ObjContext, (self.receiver,))

    def __str__(self) -> str:
        return f"obj[{self.receiver}]"


class CallSiteContext(Context):
    """One level of call-string: the method and call instruction id."""

    __slots__ = ("caller", "call_iid")

    _interned: Dict[Tuple[str, int], "CallSiteContext"] = {}

    def __new__(cls, caller: str, call_iid: int) -> "CallSiteContext":
        key = (caller, call_iid)
        self = cls._interned.get(key)
        if self is None:
            self = object.__new__(cls)
            _set = object.__setattr__
            _set(self, "caller", caller)
            _set(self, "call_iid", call_iid)
            _set(self, "_depth", 1)
            cls._interned[key] = self
        return self

    def __reduce__(self):
        return (CallSiteContext, (self.caller, self.call_iid))

    def __str__(self) -> str:
        return f"cs[{self.caller}@{self.call_iid}]"


def truncate(context: Context, limit: int) -> Context:
    """Bound nested context depth; beyond ``limit`` collapse to EMPTY.

    Applied when minting object contexts so unlimited-depth object
    sensitivity for collections (which would otherwise recurse through
    e.g. maps of maps) terminates.  The paper bounds this by recursion;
    a fixed depth cap is the standard finite realization.
    """
    if limit <= 0:
        return EMPTY
    if context.depth() <= limit:
        return context
    if isinstance(context, ObjContext):
        receiver = context.receiver
        inner = truncate(receiver.context, limit - 1)  # type: ignore
        return ObjContext(receiver.with_context(inner))  # type: ignore
    return EMPTY


def clear_context_caches() -> None:
    """Drop the intern tables.

    Only safe *between* analyses in a long-running process: contexts are
    identity-compared, so contexts held from before a clear are never
    equal to contexts minted after it."""
    ObjContext._interned.clear()
    CallSiteContext._interned.clear()

"""Calling contexts for the pointer analysis.

TAJ's context-sensitivity policy (paper §3.1) mixes three kinds of
context:

* the **empty** context (context-insensitive treatment);
* **object contexts** — the abstraction of the receiver object (one level
  for most methods, unlimited depth for collection classes);
* **call-site contexts** — one level of call string for library factory
  methods and taint-specific APIs.

Contexts nest because instance keys embed their heap context; the
``truncate`` helper bounds total nesting so unlimited-depth object
sensitivity terminates even through recursive data structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Context:
    """Base class of all contexts."""

    def depth(self) -> int:
        return 0

    def __str__(self) -> str:
        return "ε"


EMPTY = Context()


@dataclass(frozen=True)
class ObjContext(Context):
    """Receiver-object sensitivity: context is an instance key."""

    receiver: "object"  # an InstanceKey; typed loosely to avoid a cycle

    def depth(self) -> int:
        return 1 + self.receiver.context.depth()  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"obj[{self.receiver}]"


@dataclass(frozen=True)
class CallSiteContext(Context):
    """One level of call-string: the method and call instruction id."""

    caller: str
    call_iid: int

    def depth(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"cs[{self.caller}@{self.call_iid}]"


def truncate(context: Context, limit: int) -> Context:
    """Bound nested context depth; beyond ``limit`` collapse to EMPTY.

    Applied when minting object contexts so unlimited-depth object
    sensitivity for collections (which would otherwise recurse through
    e.g. maps of maps) terminates.  The paper bounds this by recursion;
    a fixed depth cap is the standard finite realization.
    """
    if limit <= 0:
        return EMPTY
    if context.depth() <= limit:
        return context
    if isinstance(context, ObjContext):
        receiver = context.receiver
        inner = truncate(receiver.context, limit - 1)  # type: ignore
        return ObjContext(receiver.with_context(inner))  # type: ignore
    return EMPTY

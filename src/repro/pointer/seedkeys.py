"""The seed's key and context classes, preserved verbatim.

:mod:`repro.pointer.baseline` keeps the repository's original solver as
a differential/perf baseline.  That solver is only a faithful "before"
picture if it also keeps the *original data representation*: frozen
dataclasses whose ``__hash__`` re-hashes the field tuple on every dict
probe — recursively through nested contexts — and whose ``__eq__``
compares field by field.  The optimised kernel replaced these with the
interned, identity-compared classes in :mod:`repro.pointer.keys` /
:mod:`repro.pointer.contexts`; this module is the pre-optimisation copy.

Do not optimise or dedup this module; that is the point of it.  The
``__str__`` formats intentionally match the optimised classes so
differential tests can compare solutions across key families through
their canonical string forms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


# -- contexts -----------------------------------------------------------------

@dataclass(frozen=True)
class Context:
    """Base class of all contexts."""

    def depth(self) -> int:
        return 0

    def __str__(self) -> str:
        return "ε"


EMPTY = Context()


@dataclass(frozen=True)
class ObjContext(Context):
    """Receiver-object sensitivity: context is an instance key."""

    receiver: "object"  # an InstanceKey; typed loosely to avoid a cycle

    def depth(self) -> int:
        return 1 + self.receiver.context.depth()  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"obj[{self.receiver}]"


@dataclass(frozen=True)
class CallSiteContext(Context):
    """One level of call-string: the method and call instruction id."""

    caller: str
    call_iid: int

    def depth(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"cs[{self.caller}@{self.call_iid}]"


def truncate(context: Context, limit: int) -> Context:
    """Bound nested context depth; beyond ``limit`` collapse to EMPTY."""
    if limit <= 0:
        return EMPTY
    if context.depth() <= limit:
        return context
    if isinstance(context, ObjContext):
        receiver = context.receiver
        inner = truncate(receiver.context, limit - 1)  # type: ignore
        return ObjContext(receiver.with_context(inner))  # type: ignore
    return EMPTY


# -- keys ---------------------------------------------------------------------

@dataclass(frozen=True)
class AllocSite:
    """A static allocation site: ``new C`` / array / caught exception."""

    method: str        # qname of the containing method
    iid: int           # instruction id within the method
    class_name: str    # allocated class (arrays: "<elem>[]")

    def __str__(self) -> str:
        return f"{self.class_name}@{self.method}:{self.iid}"


@dataclass(frozen=True)
class InstanceKey:
    """An abstract object: allocation site + heap context."""

    site: AllocSite
    context: Context = EMPTY

    @property
    def class_name(self) -> str:
        return self.site.class_name

    def with_context(self, context: Context) -> "InstanceKey":
        return replace(self, context=context)

    def __str__(self) -> str:
        if self.context == EMPTY:
            return str(self.site)
        return f"{self.site}<{self.context}>"


@dataclass(frozen=True)
class PointerKey:
    """Base class for pointer keys."""


@dataclass(frozen=True)
class LocalKey(PointerKey):
    """An SSA local of a method analyzed in a context."""

    method: str
    context: Context
    var: str

    def __str__(self) -> str:
        return f"{self.method}<{self.context}>::{self.var}"


@dataclass(frozen=True)
class FieldKey(PointerKey):
    """A field of an instance key (array contents use ``@elems``)."""

    instance: InstanceKey
    fld: str

    def __str__(self) -> str:
        return f"{self.instance}.{self.fld}"


@dataclass(frozen=True)
class StaticFieldKey(PointerKey):
    """A static field."""

    class_name: str
    fld: str

    def __str__(self) -> str:
        return f"{self.class_name}.{self.fld}"


@dataclass(frozen=True)
class ReturnKey(PointerKey):
    """The return value of a method analyzed in a context."""

    method: str
    context: Context

    def __str__(self) -> str:
        return f"ret({self.method}<{self.context}>)"

"""The seed difference-propagation solver, preserved as a baseline.

This is the textbook Andersen's solver the repository started with —
no cycle elimination, per-delta worklist entries, frozenset deltas, and
the original frozen-dataclass keys and contexts
(:mod:`repro.pointer.seedkeys`), which re-hash their field tuples on
every dict probe.  It is kept (bit-for-bit in behaviour) for two
purposes:

* **differential testing** — the optimised kernel in
  :mod:`repro.pointer.solver` must compute the identical least fixpoint
  (``tests/property/test_differential.py``, ``benchmarks/bench_solver``);
  solutions are compared through canonical string forms because the two
  solvers use different key families;
* **the perf trajectory** — ``benchmarks/bench_solver.py`` reports the
  optimised kernel's speedup over this baseline into
  ``BENCH_solver.json``.

Do not optimise this module; that is the point of it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional, Set, \
    Tuple

from ..bounds import Budget, UNBOUNDED
from ..callgraph.graph import CallGraph, CGNode
from ..ir import (ARRAY_CONTENTS, ArrayLoad, ArrayStore, Assign, Call, Cast,
                  ClassHierarchy, EnterCatch, Load, Method, New, NewArray,
                  Phi, Program, Return, Select, StaticLoad, StaticStore,
                  Store)
from . import seedkeys
from .ordering import ChaoticOrder, OrderingPolicy
from .policy import ContextPolicy
from .seedkeys import (AllocSite, Context, EMPTY, FieldKey, InstanceKey,
                       LocalKey, PointerKey, ReturnKey, StaticFieldKey)


class SeedPointerAnalysis:
    """The seed solver; results live in ``pts``, ``call_graph``."""

    def __init__(self, program: Program,
                 policy: Optional[ContextPolicy] = None,
                 natives: Optional[object] = None,
                 order: Optional[OrderingPolicy] = None,
                 budget: Budget = UNBOUNDED,
                 excluded_classes: Optional[Set[str]] = None) -> None:
        self.program = program
        self.hierarchy = ClassHierarchy(program)
        # Rebuild the policy over the seed context classes: whatever the
        # caller passed in, this solver's contexts must stay the
        # original dataclasses.
        base_policy = policy or ContextPolicy()
        self.policy = ContextPolicy(base_policy.config, ctx=seedkeys)
        self.natives = natives
        # Note: ordering policies define __bool__ as "has pending
        # nodes", so an explicit None check is required here.
        self.order = ChaoticOrder() if order is None else order
        self.order.attach(self)
        self.budget = budget
        # Whitelisted benign classes (paper §4.2.1): calls into them are
        # never bound, so they get no call-graph nodes or constraints.
        self.excluded_classes = excluded_classes or set()
        self.call_graph = CallGraph()
        self.truncated = False          # budget cut the analysis short

        self.pts: Dict[PointerKey, Set[InstanceKey]] = {}
        self._copy_succs: Dict[PointerKey, List[PointerKey]] = {}
        self._copy_edge_set: Set[Tuple[PointerKey, PointerKey]] = set()
        # base key -> [(field, destination local key)]
        self._load_watch: Dict[PointerKey, List[Tuple[str, PointerKey]]] = {}
        # base key -> [(field, source key)]
        self._store_watch: Dict[PointerKey, List[Tuple[str, PointerKey]]] = {}
        # receiver key -> [(caller node, call instruction)]
        self._call_watch: Dict[PointerKey, List[Tuple[CGNode, Call]]] = {}
        self._dispatched: Set[Tuple[CGNode, int, InstanceKey]] = set()
        self._worklist: Deque[Tuple[PointerKey, FrozenSet[InstanceKey]]] = \
            deque()
        self._processed_nodes: Set[CGNode] = set()
        self.stats = {"propagations": 0, "edges": 0, "nodes_processed": 0}

    # ------------------------------------------------------------------ API

    def solve(self) -> None:
        """Run to completion (or to the call-graph node budget)."""
        for qname in self.program.entrypoints:
            node = self._make_node(qname, EMPTY)
            if node is not None:
                self.call_graph.entrypoints.append(node)
        while True:
            if self._budget_met():
                self.truncated = True
                break
            node = self.order.pop()
            if node is None:
                break
            if node in self._processed_nodes:
                continue
            self._processed_nodes.add(node)
            self.stats["nodes_processed"] += 1
            self._add_constraints(node)
            self._solve_constraints()

    def points_to(self, key: PointerKey) -> FrozenSet[InstanceKey]:
        return frozenset(self.pts.get(key, ()))

    def points_to_var(self, method: str, var: str,
                      context: Optional[Context] = None) -> Set[InstanceKey]:
        """Points-to set of a local, unioned over contexts if none given."""
        if context is not None:
            return self.points_to(LocalKey(method, context, var))
        out: Set[InstanceKey] = set()
        for node in self.call_graph.nodes_of_method(method):
            out |= self.points_to(LocalKey(method, node.context, var))
        return out

    def iter_pts(self):
        """(key, points-to set) for every key the solver has seen."""
        return self.pts.items()

    # Key factories used by native-method summaries (the optimised
    # solver provides the same API over its interned key family).

    def make_alloc(self, method: str, iid: int,
                   class_name: str) -> InstanceKey:
        return InstanceKey(AllocSite(method, iid, class_name))

    def make_local(self, method: str, context: Context,
                   var: str) -> LocalKey:
        return LocalKey(method, context, var)

    def make_field(self, instance: InstanceKey, fld: str) -> FieldKey:
        return FieldKey(instance, fld)

    # --------------------------------------------------------------- helpers

    def _budget_met(self) -> bool:
        limit = self.budget.max_cg_nodes
        return limit is not None and self.call_graph.node_count() >= limit

    def _make_node(self, qname: str, context: Context) -> Optional[CGNode]:
        node = CGNode(qname, context)
        if self.call_graph.add_node(node):
            method = self.program.lookup_method(qname)
            if method is not None and not method.is_native:
                self.order.on_node_created(node)
        return node

    def add_pts(self, key: PointerKey, ikeys: Iterable[InstanceKey]) -> bool:
        """Add instance keys to a pointer key, scheduling propagation."""
        current = self.pts.setdefault(key, set())
        delta = frozenset(k for k in ikeys if k not in current)
        if delta:
            current |= delta
            self._worklist.append((key, delta))
            return True
        return False

    def add_copy_edge(self, src: PointerKey, dst: PointerKey) -> None:
        """Add a subset edge src ⊆ dst and flush current contents."""
        if (src, dst) in self._copy_edge_set or src == dst:
            return
        self._copy_edge_set.add((src, dst))
        self._copy_succs.setdefault(src, []).append(dst)
        self.stats["edges"] += 1
        existing = self.pts.get(src)
        if existing:
            self.add_pts(dst, existing)

    def register_call_watch(self, key: PointerKey, node: CGNode,
                            call: Call) -> None:
        """Watch ``key`` for new receivers of ``call``, dispatching the
        already-known ones (used by native-method summaries too)."""
        self._call_watch.setdefault(key, []).append((node, call))
        for ikey in tuple(self.pts.get(key, ())):
            self._dispatch(node, call, ikey)

    # ------------------------------------------------------ constraint adding

    def _local(self, node: CGNode, var: str) -> LocalKey:
        return LocalKey(node.method, node.context, var)

    def _add_constraints(self, node: CGNode) -> None:
        method = self.program.lookup_method(node.method)
        if method is None or method.is_native:
            return
        ret_key = ReturnKey(node.method, node.context)
        for instr in method.instructions():
            if isinstance(instr, New):
                self._alloc(node, method, instr.iid, instr.class_name,
                            instr.lhs)
            elif isinstance(instr, NewArray):
                self._alloc(node, method, instr.iid,
                            f"{instr.element_type}[]", instr.lhs)
            elif isinstance(instr, EnterCatch):
                # A caught exception is a fresh abstract object: thrown
                # values are not routed (see repro.lang.lower); TAJ instead
                # treats the catch itself as producing the object whose
                # message is a taint source (§4.1.2).
                self._alloc(node, method, instr.iid, instr.exc_type,
                            instr.lhs)
            elif isinstance(instr, Assign):
                self.add_copy_edge(self._local(node, instr.rhs),
                                   self._local(node, instr.lhs))
            elif isinstance(instr, Cast):
                self.add_copy_edge(self._local(node, instr.value),
                                   self._local(node, instr.lhs))
            elif isinstance(instr, Phi):
                lhs = self._local(node, instr.lhs)
                for operand in instr.operands.values():
                    self.add_copy_edge(self._local(node, operand), lhs)
            elif isinstance(instr, Select):
                lhs = self._local(node, instr.lhs)
                for operand in instr.args:
                    self.add_copy_edge(self._local(node, operand), lhs)
            elif isinstance(instr, Load):
                self._watch_load(self._local(node, instr.base), instr.fld,
                                 self._local(node, instr.lhs))
            elif isinstance(instr, Store):
                self._watch_store(self._local(node, instr.base), instr.fld,
                                  self._local(node, instr.rhs))
            elif isinstance(instr, ArrayLoad):
                self._watch_load(self._local(node, instr.base),
                                 ARRAY_CONTENTS,
                                 self._local(node, instr.lhs))
            elif isinstance(instr, ArrayStore):
                self._watch_store(self._local(node, instr.base),
                                  ARRAY_CONTENTS,
                                  self._local(node, instr.rhs))
            elif isinstance(instr, StaticLoad):
                self.add_copy_edge(self._static_key(instr.class_name,
                                                    instr.fld),
                                   self._local(node, instr.lhs))
            elif isinstance(instr, StaticStore):
                self.add_copy_edge(self._local(node, instr.rhs),
                                   self._static_key(instr.class_name,
                                                    instr.fld))
            elif isinstance(instr, Return):
                if instr.value:
                    self.add_copy_edge(self._local(node, instr.value),
                                       ret_key)
            elif isinstance(instr, Call):
                self._add_call(node, instr)

    def _alloc(self, node: CGNode, method: Method, iid: int,
               class_name: str, lhs: str) -> None:
        heap_ctx = self.policy.heap_context(method, node.context)
        ikey = InstanceKey(AllocSite(node.method, iid, class_name), heap_ctx)
        self.add_pts(self._local(node, lhs), {ikey})

    def _static_key(self, class_name: str, fld: str) -> StaticFieldKey:
        owner = self.hierarchy.resolve_field_owner(class_name, fld)
        return StaticFieldKey(owner or class_name, fld)

    def _watch_load(self, base: PointerKey, fld: str,
                    dst: PointerKey) -> None:
        self._load_watch.setdefault(base, []).append((fld, dst))
        for ikey in self.pts.get(base, ()):
            self.add_copy_edge(FieldKey(ikey, fld), dst)

    def _watch_store(self, base: PointerKey, fld: str,
                     src: PointerKey) -> None:
        self._store_watch.setdefault(base, []).append((fld, src))
        for ikey in self.pts.get(base, ()):
            self.add_copy_edge(src, FieldKey(ikey, fld))

    def _add_call(self, node: CGNode, call: Call) -> None:
        if call.kind == "static":
            callee = self.hierarchy.lookup_static(
                call.class_name, call.method_name, call.arity)
            if callee is not None:
                self._bind_call(node, call, callee, None)
            return
        # virtual / special: dispatch per receiver instance key.
        if call.receiver is None:
            return
        self.register_call_watch(self._local(node, call.receiver), node,
                                 call)

    # ------------------------------------------------------ call processing

    def _dispatch(self, node: CGNode, call: Call,
                  receiver: InstanceKey) -> None:
        token = (node, call.iid, receiver)
        if token in self._dispatched:
            return
        self._dispatched.add(token)
        if call.kind == "special":
            callee = self.hierarchy.lookup_static(
                call.class_name, call.method_name, call.arity)
        else:
            callee = self.hierarchy.dispatch(
                receiver.class_name, call.method_name, call.arity)
        if callee is not None:
            self._bind_call(node, call, callee, receiver)

    def _bind_call(self, node: CGNode, call: Call, callee: Method,
                   receiver: Optional[InstanceKey]) -> None:
        if callee.class_name in self.excluded_classes:
            return
        context = self.policy.callee_context(
            node.method, node.context, call, callee, receiver)
        if callee.is_native:
            target = CGNode(callee.qname, context)
            self.call_graph.add_node(target)
            self.call_graph.add_edge(node, call.iid, target)
            if self.natives is not None:
                self.natives.apply(self, node, call, callee, receiver)
            return
        target = self._make_node(callee.qname, context)
        if target is None:
            return
        if self.call_graph.add_edge(node, call.iid, target):
            self.order.on_edge(node, target)
        if receiver is not None and not callee.is_static:
            self.add_pts(LocalKey(callee.qname, context, "this"),
                         {receiver})
        for actual, param in zip(call.args, callee.param_names()):
            self.add_copy_edge(self._local(node, actual),
                               LocalKey(callee.qname, context, param))
        if call.lhs:
            self.add_copy_edge(ReturnKey(callee.qname, context),
                               self._local(node, call.lhs))

    # ------------------------------------------------------ constraint solving

    def _solve_constraints(self) -> None:
        while self._worklist:
            key, delta = self._worklist.popleft()
            self.stats["propagations"] += 1
            for dst in self._copy_succs.get(key, ()):
                self.add_pts(dst, delta)
            for fld, dst in self._load_watch.get(key, ()):
                for ikey in delta:
                    self.add_copy_edge(FieldKey(ikey, fld), dst)
            for fld, src in self._store_watch.get(key, ()):
                for ikey in delta:
                    self.add_copy_edge(src, FieldKey(ikey, fld))
            for caller_node, call in self._call_watch.get(key, ()):
                for ikey in delta:
                    self._dispatch(caller_node, call, ikey)

"""Plain-text rendering of a metrics-registry snapshot.

Companion to :mod:`repro.reporting.render` for the observability layer:
turns the nested :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
dict into the aligned table the CLI prints under ``--stats``.
"""

from __future__ import annotations

from typing import Dict, List


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4f}" if value != int(value) else f"{int(value)}"
    return str(value)


def render_metrics_table(snapshot: Dict[str, Dict],
                         title: str = "analysis metrics") -> str:
    """An aligned, sectioned table for one registry snapshot."""
    out: List[str] = [title, "=" * len(title)]
    if not snapshot:
        out.append("(no metrics recorded)")
        return "\n".join(out)

    for section in ("counters", "gauges"):
        entries = snapshot.get(section) or {}
        if not entries:
            continue
        out.append("")
        out.append(f"-- {section} --")
        for name in sorted(entries):
            out.append(f"  {name:<38} {_fmt(entries[name]):>12}")

    for section in ("timers", "histograms"):
        entries = snapshot.get(section) or {}
        if not entries:
            continue
        unit = " (seconds)" if section == "timers" else ""
        out.append("")
        out.append(f"-- {section}{unit} --")
        out.append(f"  {'name':<38} {'count':>7} {'total':>10} "
                   f"{'p50':>10} {'p95':>10} {'max':>10}")
        for name in sorted(entries):
            s = entries[name]
            out.append(
                f"  {name:<38} {s['count']:>7} {s['total']:>10.4f} "
                f"{s['p50']:>10.4f} {s['p95']:>10.4f} {s['max']:>10.4f}")
    return "\n".join(out)

"""Library-call-point (LCP) based report minimization (paper §5).

An LCP is the last statement along a flow where data crosses from
application code into library code.  Two flows are equivalent (``U ~ V``)
iff they share the source→LCP prefix *and* require the same remediation
action; TAJ reports one representative per equivalence class, so fixing
the representative (inserting a sanitizer at/before the LCP) fixes every
member.

The slicing strategies already annotate each flow with its last
application→library crossing, so grouping is a key computation here:

* group key — (source, LCP, remediation action);
* representative — the shortest member flow;
* the remediation action comes from the flow's security rule, matching
  the paper's observation (Figure 3) that sinks with the same issue type
  need the same sanitation logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..sdg.nodes import StmtRef
from ..taint.flows import TaintFlow
from ..taint.rules import RuleSet


@dataclass(frozen=True)
class GroupKey:
    """Identity of a ~-equivalence class."""

    source: StmtRef
    lcp: StmtRef
    remediation: str


@dataclass
class FlowGroup:
    """One equivalence class of flows."""

    key: GroupKey
    representative: TaintFlow
    members: List[TaintFlow] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def rule(self) -> str:
        return self.representative.rule


def remediation_of(rules: RuleSet, flow: TaintFlow) -> str:
    try:
        return rules.by_name(flow.rule).remediation or flow.rule
    except KeyError:
        return flow.rule


def group_flows(flows: List[TaintFlow], rules: RuleSet) -> List[FlowGroup]:
    """Partition flows into ~-classes; one representative each."""
    groups: Dict[GroupKey, FlowGroup] = {}
    for flow in flows:
        key = GroupKey(flow.source, flow.lcp, remediation_of(rules, flow))
        group = groups.get(key)
        if group is None:
            groups[key] = FlowGroup(key, flow, [flow])
        else:
            group.members.append(flow)
            if flow.length < group.representative.length:
                group.representative = flow
    return sorted(groups.values(),
                  key=lambda g: (g.rule, str(g.key.source), str(g.key.lcp)))

"""Plain-text rendering of reports (the "consumable report" of §1)."""

from __future__ import annotations

from typing import List

from .report import Issue, Report


def _fmt_issue(issue: Issue) -> List[str]:
    kind = " (via taint carrier)" if issue.via_carrier else ""
    lines = [
        f"[{issue.rule}] tainted flow into {issue.sink_method}{kind}",
        f"    source : {issue.source}"
        + (f" (line {issue.source_line})" if issue.source_line else ""),
        f"    sink   : {issue.sink}"
        + (f" (line {issue.sink_line})" if issue.sink_line else ""),
        f"    fix at : {issue.lcp}  —  {issue.remediation}",
    ]
    if issue.grouped_flows > 1:
        lines.append(f"    covers : {issue.grouped_flows} flows with the "
                     f"same remediation point")
    return lines


def render_text(report: Report, title: str = "TAJ report") -> str:
    out: List[str] = [title, "=" * len(title)]
    if not report.issues:
        out.append("No tainted flows detected.")
        return "\n".join(out)
    by_rule = report.by_rule()
    out.append(f"{report.count()} issue(s) "
               f"({report.raw_flow_count} raw flows before grouping)")
    for rule in sorted(by_rule):
        out.append("")
        out.append(f"-- {rule}: {len(by_rule[rule])} issue(s) --")
        for issue in by_rule[rule]:
            out.append("")
            out.extend(_fmt_issue(issue))
    return "\n".join(out)

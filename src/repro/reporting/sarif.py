"""SARIF 2.1.0 export — the interchange format downstream security
tooling (code scanners, IDE plugins, GitHub code scanning) consumes.

The mapping is straightforward: each security rule becomes a SARIF
reporting rule; each grouped issue becomes a result whose location is
the sink statement, with the source and the LCP (the remediation point,
paper §5) attached as related locations.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..taint.rules import RuleSet
from .report import Issue, Report

SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def _location(label: str, where: str, line: int) -> Dict:
    method = where.split("@")[0]
    loc: Dict = {
        "message": {"text": f"{label} in {method}"},
        "physicalLocation": {
            "artifactLocation": {"uri": "jlang-sources"},
        },
        "logicalLocations": [{
            "fullyQualifiedName": where,
            "kind": "function",
        }],
    }
    if line:
        loc["physicalLocation"]["region"] = {"startLine": line}
    return loc


def _result(issue: Issue) -> Dict:
    kind = " via taint carrier" if issue.via_carrier else ""
    message = (f"Tainted data reaches {issue.sink_method}{kind}; "
               f"remediation: {issue.remediation} at {issue.lcp}.")
    return {
        "ruleId": issue.rule,
        "level": "error",
        "message": {"text": message},
        "locations": [_location("sink", issue.sink, issue.sink_line)],
        "relatedLocations": [
            _location("source", issue.source, issue.source_line),
            _location("remediation point (LCP)", issue.lcp, 0),
        ],
        "properties": {
            "flowLength": issue.flow_length,
            "groupedFlows": issue.grouped_flows,
            "viaCarrier": issue.via_carrier,
        },
    }


def to_sarif(report: Report, rules: Optional[RuleSet] = None,
             tool_version: str = "1.0.0") -> Dict:
    """Convert a report to a SARIF log dictionary."""
    rule_descriptors: List[Dict] = []
    seen = set()
    candidates = list(rules) if rules is not None else []
    reported = {issue.rule for issue in report.issues}
    for rule in candidates:
        if rule.name in seen:
            continue
        seen.add(rule.name)
        rule_descriptors.append({
            "id": rule.name,
            "shortDescription": {"text": f"Tainted flow ({rule.name})"},
            "help": {"text": f"Remediation: {rule.remediation}"},
        })
    for name in sorted(reported - seen):
        rule_descriptors.append({
            "id": name,
            "shortDescription": {"text": f"Tainted flow ({name})"},
        })
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-taj",
                    "informationUri":
                        "https://doi.org/10.1145/1542476.1542486",
                    "version": tool_version,
                    "rules": rule_descriptors,
                },
            },
            "results": [_result(issue) for issue in report.issues],
        }],
    }


def render_sarif(report: Report, rules: Optional[RuleSet] = None,
                 indent: int = 2) -> str:
    """The SARIF log as a JSON string."""
    return json.dumps(to_sarif(report, rules), indent=indent)

"""User-facing reports: grouped issues with locations and remediation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir import Program
from ..obs import DISABLED, Observability
from ..taint.flows import TaintFlow, canonical_flows
from ..taint.rules import RuleSet
from .lcp import FlowGroup, group_flows


@dataclass
class Issue:
    """One reported issue: a flow-equivalence-class representative."""

    rule: str
    remediation: str
    source: str           # "Method@iid" location strings
    sink: str
    lcp: str
    sink_method: str
    source_line: int
    sink_line: int
    via_carrier: bool
    flow_length: int
    grouped_flows: int    # how many raw flows this issue represents


@dataclass
class Report:
    """The analysis report: grouped issues + raw flows."""

    issues: List[Issue] = field(default_factory=list)
    raw_flow_count: int = 0

    def count(self) -> int:
        return len(self.issues)

    def by_rule(self) -> Dict[str, List[Issue]]:
        out: Dict[str, List[Issue]] = {}
        for issue in self.issues:
            out.setdefault(issue.rule, []).append(issue)
        return out

    def to_dicts(self) -> List[Dict]:
        return [vars(issue) for issue in self.issues]


def _line_of(program: Optional[Program], ref) -> int:
    if program is None:
        return 0
    method = program.lookup_method(ref.method)
    if method is None:
        return 0
    for instr in method.instructions():
        if instr.iid == ref.iid:
            return instr.line
    return 0


def build_report(flows: List[TaintFlow], rules: RuleSet,
                 program: Optional[Program] = None,
                 obs: Optional[Observability] = None) -> Report:
    """Group raw flows (paper §5) and render them as issues.

    With an observability bundle, the §5 grouping decision of every
    member flow is recorded into the provenance audit, and the grouped/
    raw counts into the metrics registry.
    """
    obs = obs or DISABLED
    # Canonical order before grouping: representatives and issue order
    # must not depend on flow discovery order (serial vs --jobs N).
    flows = canonical_flows(flows)
    groups = group_flows(flows, rules)
    obs.audit.record_groups(groups)
    obs.metrics.inc("report.issues", len(groups))
    obs.metrics.inc("report.raw_flows", len(flows))
    obs.metrics.inc("report.flows_grouped_away", len(flows) - len(groups))
    report = Report(raw_flow_count=len(flows))
    for group in groups:
        rep = group.representative
        report.issues.append(Issue(
            rule=rep.rule,
            remediation=group.key.remediation,
            source=str(rep.source),
            sink=str(rep.sink),
            lcp=str(rep.lcp),
            sink_method=rep.sink_display,
            source_line=_line_of(program, rep.source),
            sink_line=_line_of(program, rep.sink),
            via_carrier=rep.via_carrier,
            flow_length=rep.length,
            grouped_flows=group.size,
        ))
    return report

"""Report generation: LCP-based grouping (§5) and rendering."""

from .lcp import FlowGroup, GroupKey, group_flows, remediation_of
from .render import render_text
from .sarif import render_sarif, to_sarif
from .summary import render_metrics_table
from .report import Issue, Report, build_report

__all__ = [
    "FlowGroup", "GroupKey", "Issue", "Report", "build_report",
    "group_flows", "remediation_of", "render_metrics_table",
    "render_sarif", "render_text", "to_sarif",
]

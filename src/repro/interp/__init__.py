"""Concrete execution with dynamic taint tags.

The dynamic counterpart of the static analysis (paper §8 contrasts the
two): used to validate benchmark ground truth and static findings.
"""

from .interpreter import (Interpreter, RunResult, SinkEvent, execute)
from .validation import (LABEL_KINDS, DynamicSummary, DynamicWitness,
                         ParsedLabel, execution_options, parse_label,
                         prepare_for_execution, run_dynamic)
from .values import (JArray, JBool, JClass, JHome, JInt, JMethod, JNull,
                     JObject, JString, NULL, deep_taint, taint_of)

__all__ = [
    "DynamicSummary", "DynamicWitness", "Interpreter", "JArray", "JBool",
    "JClass", "JHome", "JInt", "JMethod", "JNull", "JObject", "JString",
    "LABEL_KINDS", "NULL", "ParsedLabel", "RunResult", "SinkEvent",
    "deep_taint", "execute", "execution_options", "parse_label",
    "prepare_for_execution", "run_dynamic", "taint_of",
]

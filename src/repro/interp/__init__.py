"""Concrete execution with dynamic taint tags.

The dynamic counterpart of the static analysis (paper §8 contrasts the
two): used to validate benchmark ground truth and static findings.
"""

from .interpreter import (Interpreter, RunResult, SinkEvent, execute)
from .validation import (DynamicSummary, DynamicWitness,
                         execution_options, prepare_for_execution,
                         run_dynamic)
from .values import (JArray, JBool, JClass, JHome, JInt, JMethod, JNull,
                     JObject, JString, NULL, deep_taint, taint_of)

__all__ = [
    "DynamicSummary", "DynamicWitness", "Interpreter", "JArray", "JBool",
    "JClass", "JHome", "JInt", "JMethod", "JNull", "JObject", "JString",
    "NULL", "RunResult", "SinkEvent", "deep_taint", "execute",
    "execution_options", "prepare_for_execution", "run_dynamic",
    "taint_of",
]

"""Runtime values for the concrete jlang interpreter.

Strings carry a *taint set* of source labels, making the interpreter a
dynamic taint analysis — the validation counterpart to TAJ's static
analysis (the paper contrasts the two in §8, citing [4]).

Label conventions:

* ``src:<Method@iid>``  — a web-input source (getParameter & friends);
* ``exc:<Method@iid>``  — a caught exception's internal message;
* ``sys:<Method@iid>``  — system configuration (``System.getProperty``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

NO_TAINT: FrozenSet[str] = frozenset()

_ids = itertools.count(1)


@dataclass(frozen=True)
class JNull:
    def truthy(self) -> bool:
        return False

    def __str__(self) -> str:
        return "null"


NULL = JNull()


@dataclass(frozen=True)
class JBool:
    value: bool

    def truthy(self) -> bool:
        return self.value

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = JBool(True)
FALSE = JBool(False)


@dataclass(frozen=True)
class JInt:
    value: int

    def truthy(self) -> bool:
        return self.value != 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class JString:
    """An immutable string value carrying its taint labels."""

    value: str
    taint: FrozenSet[str] = NO_TAINT

    def truthy(self) -> bool:
        return True

    def with_taint(self, taint: FrozenSet[str]) -> "JString":
        return JString(self.value, self.taint | taint)

    def sanitized(self) -> "JString":
        return JString(self.value, NO_TAINT)

    def with_sanitizer(self, display: str) -> "JString":
        """Annotate every label with a sanitizer application instead of
        stripping it: sanitizers are rule-specific, so whether a label
        still witnesses a rule is decided at validation time."""
        return JString(self.value, frozenset(
            f"{label}|san={display}" for label in self.taint))

    def __str__(self) -> str:
        return self.value


class JObject:
    """A heap object: class name + mutable fields; identity semantics."""

    def __init__(self, class_name: str,
                 fields: Optional[Dict[str, object]] = None) -> None:
        self.oid = next(_ids)
        self.class_name = class_name
        self.fields: Dict[str, object] = fields or {}

    def truthy(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"<{self.class_name}#{self.oid}>"


class JArray:
    """An array; elements default to null."""

    def __init__(self, length: int = 0) -> None:
        self.oid = next(_ids)
        self.elements: List[object] = [NULL] * max(0, length)

    def store(self, index: int, value: object) -> None:
        while index >= len(self.elements):
            self.elements.append(NULL)
        self.elements[index] = value

    def load(self, index: int) -> object:
        if 0 <= index < len(self.elements):
            return self.elements[index]
        return NULL

    def truthy(self) -> bool:
        return True


@dataclass(frozen=True)
class JClass:
    """A reflective ``Class`` value (``Class.forName`` result)."""

    class_name: str

    def truthy(self) -> bool:
        return True


@dataclass(frozen=True)
class JMethod:
    """A reflective ``Method`` value."""

    class_name: str
    method_name: str

    def truthy(self) -> bool:
        return True


@dataclass(frozen=True)
class JHome:
    """An EJB home stand-in minted by ``InitialContext.lookup``."""

    bean_class: str

    def truthy(self) -> bool:
        return True


def taint_of(value: object) -> FrozenSet[str]:
    """Direct taint of a value (strings only; objects carry state)."""
    if isinstance(value, JString):
        return value.taint
    return NO_TAINT


def deep_taint(value: object, max_depth: int = 6,
               _seen: Optional[set] = None) -> FrozenSet[str]:
    """Taint reachable through an object's state (carrier semantics)."""
    if isinstance(value, JString):
        return value.taint
    if max_depth <= 0:
        return NO_TAINT
    seen = _seen if _seen is not None else set()
    out: FrozenSet[str] = NO_TAINT
    if isinstance(value, JObject):
        if value.oid in seen:
            return NO_TAINT
        seen.add(value.oid)
        for child in value.fields.values():
            out |= deep_taint(child, max_depth - 1, seen)
    elif isinstance(value, JArray):
        if value.oid in seen:
            return NO_TAINT
        seen.add(value.oid)
        for child in value.elements:
            out |= deep_taint(child, max_depth - 1, seen)
    return out

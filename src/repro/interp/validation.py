"""Dynamic validation of static findings and benchmark ground truth.

Runs a program concretely (normal mode + fault-injection mode for catch
blocks) and summarizes which (sink-method, rule) pairs received tainted
data at run time.  Used to confirm that

* every planted true positive in a generated benchmark is dynamically
  realizable, and
* sanitized plants never produce a tainted sink event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir import Program
from ..modeling import ModelOptions, prepare
from ..taint.rules import RuleSet, default_rules
from .interpreter import RunResult, SinkEvent, execute

# Which dynamic label kinds can witness which rule.
LABEL_KINDS = {
    "XSS": {"src"},
    "SQLI": {"src"},
    "MALICIOUS_FILE": {"src"},
    "OPEN_REDIRECT": {"src"},
    "RESPONSE_SPLITTING": {"src"},
    "INFO_LEAK": {"exc", "sys"},
}
_LABEL_KINDS = LABEL_KINDS  # backwards-compatible alias


@dataclass(frozen=True)
class ParsedLabel:
    """A decoded dynamic taint label.

    Labels are ``<kind>:<Method>@<iid>`` with zero or more
    ``|san=<Sanitizer.display>`` annotations appended by sanitizer
    builtins (see :meth:`repro.interp.values.JString.with_sanitizer`).
    """

    kind: str                  # "src" | "exc" | "sys"
    origin_method: str         # qname of the method holding the source
    origin_iid: int
    sanitizers: FrozenSet[str]

    def witnesses(self, rule_name: str,
                  rule_sanitizers: FrozenSet[str]) -> bool:
        """Can this label witness ``rule_name``?  True when the label
        kind matches the rule and none of the rule's sanitizers were
        applied to the value on its way to the sink."""
        if self.kind not in LABEL_KINDS.get(rule_name, {"src"}):
            return False
        return not (self.sanitizers & rule_sanitizers)


def parse_label(label: str) -> ParsedLabel:
    """Decode one dynamic taint label into its structured form."""
    base, *annotations = label.split("|")
    kind, _, origin = base.partition(":")
    method, _, iid_text = origin.rpartition("@")
    try:
        iid = int(iid_text)
    except ValueError:
        method, iid = origin, -1
    applied = frozenset(part[len("san="):] for part in annotations
                        if part.startswith("san="))
    return ParsedLabel(kind=kind, origin_method=method, origin_iid=iid,
                       sanitizers=applied)


def execution_options() -> ModelOptions:
    """Model options for concrete execution: only entrypoint synthesis.

    The analysis-oriented rewrites (string carriers, constant-key
    dictionaries, reflection resolution, EJB artifacts, synthetic
    exception sources) are disabled so the interpreter runs the real
    (model-library) code; their behaviours are implemented natively by
    the interpreter instead.
    """
    return ModelOptions(frameworks=True, exceptions=False, strings=False,
                        reflection=False, collections=False, ejb=False,
                        whitelist=False)


def prepare_for_execution(sources: List[str],
                          deployment_descriptor: Optional[Dict[str, str]]
                          = None) -> Program:
    prepared = prepare(sources, deployment_descriptor,
                       options=execution_options())
    return prepared.program


@dataclass
class DynamicWitness:
    """Tainted sink activity observed for one (method, display) pair."""

    sink_method: str
    display: str
    labels: FrozenSet[str]


@dataclass
class DynamicSummary:
    """All tainted sink activity from normal + fault-injection runs."""

    witnesses: List[DynamicWitness] = field(default_factory=list)
    aborted: List[str] = field(default_factory=list)

    def confirms(self, rule_name: str, sink_method: str,
                 rules: Optional[RuleSet] = None) -> bool:
        """Did the sink method receive data tainted with a label kind
        that can witness this rule, through one of the rule's sinks?"""
        rules = rules or default_rules()
        try:
            rule = rules.by_name(rule_name)
        except KeyError:
            return False
        kinds = _LABEL_KINDS.get(rule_name, {"src"})
        for witness in self.witnesses:
            if witness.sink_method != sink_method:
                continue
            if witness.display not in rule.sinks:
                continue
            for label in witness.labels:
                base, *sanitizers = label.split("|")
                if base.split(":", 1)[0] not in kinds:
                    continue
                applied = {part[len("san="):] for part in sanitizers
                           if part.startswith("san=")}
                if not (applied & rule.sanitizers):
                    return True
        return False


def run_dynamic(sources: List[str],
                deployment_descriptor: Optional[Dict[str, str]] = None,
                fuel: int = 200_000) -> DynamicSummary:
    """Execute a program in both modes and summarize tainted sinks."""
    program = prepare_for_execution(sources, deployment_descriptor)
    summary = DynamicSummary()
    seen: Set[Tuple[str, str, FrozenSet[str]]] = set()
    for fault in (False, True):
        result = execute(program, fuel=fuel, fault_injection=fault)
        summary.aborted.extend(result.aborted_entrypoints)
        for event in result.tainted_events():
            token = (event.method, event.display, event.all_taint)
            if token in seen:
                continue
            seen.add(token)
            summary.witnesses.append(DynamicWitness(
                event.method, event.display, event.all_taint))
    return summary

"""A concrete interpreter for jlang programs with dynamic taint tags.

This is the *dynamic* counterpart of the static analysis: it executes
the program's entrypoints for real (reflection included), tags strings
returned by sources with labels, strips them at sanitizers, and records
an event whenever a sink receives a tainted value — either directly or
through its object state (the dynamic analogue of taint carriers).

It is used by the test suite and benchmarks to *validate ground truth*:
a planted true-positive flow should be dynamically confirmable, while a
sanitized flow never produces a tainted sink event.

Scope/simplifications (documented, deliberate):

* programs are executed on the unmodeled IR (only entrypoint synthesis
  applied), so the real model-library bodies (HashMap & co.) run;
* loops are bounded by a fuel counter; exhausting fuel aborts the
  entrypoint (reported, not an error);
* ``throw`` aborts the current entrypoint; catch blocks are reachable
  via *fault-injection mode*, which takes the synthetic
  exception-dispatch edges and materializes a caught exception whose
  message carries an ``exc:`` label (mirroring TAJ's §4.1.2 model);
* ``==`` compares ``JString`` by value (interned-literal semantics) and
  everything else by identity;
* ``Thread.start`` runs the target inline (a sequential schedule).
"""

from __future__ import annotations

import sys

from dataclasses import dataclass, field
from typing import (Callable, Dict, FrozenSet, List, Optional, Set,
                    Tuple)

from ..ir import (ArrayLoad, ArrayStore, Assign, BinOp, Call, Cast,
                  ClassHierarchy, Const, EnterCatch, Goto, If, Load,
                  Method, New, NewArray, Phi, Program, Return, Select,
                  StaticLoad, StaticStore, Store, StringOp, Throw, UnOp)
from ..lang.lower import EXC_DISPATCH
from .values import (FALSE, JArray, JBool, JClass, JHome, JInt, JMethod,
                     JObject, JString, NO_TAINT, NULL, TRUE, deep_taint,
                     taint_of)


class Fuel(Exception):
    """Raised when an entrypoint exceeds its step budget."""


class Halt(Exception):
    """Raised by ``throw`` — aborts the current entrypoint."""


@dataclass
class SinkEvent:
    """A sink invocation observed at run time."""

    method: str               # qname of the method containing the call
    iid: int
    display: str              # e.g. "PrintWriter.println"
    direct_taint: FrozenSet[str]
    state_taint: FrozenSet[str]   # via object state (carrier semantics)

    @property
    def tainted(self) -> bool:
        return bool(self.direct_taint or self.state_taint)

    @property
    def all_taint(self) -> FrozenSet[str]:
        return self.direct_taint | self.state_taint


@dataclass
class RunResult:
    """Everything one interpreter run produced."""

    events: List[SinkEvent] = field(default_factory=list)
    aborted_entrypoints: List[str] = field(default_factory=list)
    # The subset of aborts caused by step-budget exhaustion (Fuel), as
    # opposed to ``throw`` reaching the entrypoint frame (Halt).  The
    # replay oracle treats these as "inconclusive", not "refuted".
    fuel_exhausted: List[str] = field(default_factory=list)
    steps: int = 0
    # Every method body the run entered (qnames) — the coverage record
    # the replay oracle (repro.confirm) uses to distinguish "refuted"
    # (sink reached, stayed clean) from "inconclusive" (never reached).
    entered_methods: Set[str] = field(default_factory=set)

    def tainted_events(self) -> List[SinkEvent]:
        return [e for e in self.events if e.tainted]


# Sink displays the interpreter records (mirrors the default rule set).
SINK_DISPLAYS = {
    "PrintWriter.println", "PrintWriter.print", "PrintWriter.write",
    "JspWriter.print", "JspWriter.println",
    "Statement.executeQuery", "Statement.executeUpdate",
    "Statement.execute", "Connection.prepareStatement",
    "Runtime.exec", "HttpServletResponse.sendRedirect",
    "HttpServletResponse.addHeader",
}
# Constructor sinks: recorded, then the real body (if any) still runs.
CTOR_SINKS = {"File", "FileReader", "FileWriter", "FileInputStream"}

# Python frames needed per app-level call comfortably fit this budget
# even for the deepest scaled-corpus call chains (fuel bounds total
# steps, so depth cannot exceed the fuel limit anyway).
_RECURSION_LIMIT = 100_000

SANITIZER_DISPLAYS = {
    "URLEncoder.encode", "Encoder.encodeForHTML",
    "StringEscapeUtils.escapeHtml", "StringEscapeUtils.escapeSql",
    "Codec.encodeForSQL", "FilenameUtils.normalize",
    "MessageSanitizer.scrub", "URLValidator.validate",
    "HeaderSanitizer.strip",
}

SOURCE_DISPLAYS = {
    "HttpServletRequest.getParameter": "src",
    "HttpServletRequest.getHeader": "src",
    "HttpServletRequest.getQueryString": "src",
    "HttpServletRequest.getRequestURI": "src",
    "Cookie.getValue": "src",
    "BufferedReader.readLine": "src",
    "TaintSupport.source": "src",
    "System.getProperty": "sys",
}


class Interpreter:
    """Executes a program's entrypoints with taint tracking.

    Partial instrumentation (paper-adjacent: arXiv 2411.19354 shows
    path-restricted dynamic taint suffices to triage candidate flows):
    ``source_methods`` / ``sink_methods`` restrict where taint labels
    are minted and where sink events are recorded to the methods on a
    candidate flow's witness chain.  ``None`` (the default) instruments
    everything — the legacy full-replay behaviour.  ``seed`` is mixed
    into every source payload so replays are deterministic functions of
    (program, seed, fault mode).
    """

    def __init__(self, program: Program, fuel: int = 200_000,
                 fault_injection: bool = False,
                 source_methods: Optional[FrozenSet[str]] = None,
                 sink_methods: Optional[FrozenSet[str]] = None,
                 seed: int = 0) -> None:
        self.program = program
        self.hierarchy = ClassHierarchy(program)
        self.fuel_limit = fuel
        self.fault_injection = fault_injection
        self.source_methods = source_methods
        self.sink_methods = sink_methods
        self.seed = seed
        self.statics: Dict[Tuple[str, str], object] = {}
        self.result = RunResult()
        self._fuel = 0

    def _instrument_source(self, method: Method) -> bool:
        """Should a source executing inside ``method`` mint a label?"""
        return self.source_methods is None or \
            method.qname in self.source_methods

    def _instrument_sink(self, method: Method) -> bool:
        """Should a sink call inside ``method`` record an event?"""
        return self.sink_methods is None or \
            method.qname in self.sink_methods

    def _payload(self, text: str) -> str:
        """The deterministic concrete value a source returns."""
        if self.seed:
            return f"<{text}#s{self.seed}>"
        return f"<{text}>"

    # -- public API ---------------------------------------------------------

    def run(self) -> RunResult:
        """Execute every entrypoint in order; shared static state."""
        # Scaled benchmark apps chain calls hundreds of frames deep and
        # each app-level call costs several Python frames.  CPython 3.11
        # inlines Python-to-Python calls, so raising the ceiling is safe
        # (no C stack growth); restore it when the run finishes.
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, _RECURSION_LIMIT))
        try:
            for entry in self.program.entrypoints:
                method = self.program.lookup_method(entry)
                if method is None:
                    continue
                self._fuel = 0
                try:
                    self.call_method(method, None, [])
                except Fuel:
                    self.result.aborted_entrypoints.append(entry)
                    self.result.fuel_exhausted.append(entry)
                except (Halt, RecursionError):
                    self.result.aborted_entrypoints.append(entry)
        finally:
            sys.setrecursionlimit(limit)
        return self.result

    # -- helpers ------------------------------------------------------------------

    def _tick(self) -> None:
        self._fuel += 1
        self.result.steps += 1
        if self._fuel > self.fuel_limit:
            raise Fuel()

    def new_object(self, class_name: str) -> JObject:
        return JObject(class_name)

    def construct(self, class_name: str, args: List[object]) -> JObject:
        """Allocate and run the matching constructor if one exists."""
        obj = self.new_object(class_name)
        ctor = self.hierarchy.lookup_static(class_name, "<init>",
                                            len(args))
        if ctor is not None and not ctor.is_native:
            self.call_method(ctor, obj, args)
        return obj

    def record_sink(self, method: Method, call: Call, display: str,
                    args: List[object]) -> None:
        if not self._instrument_sink(method):
            return
        direct = NO_TAINT
        state = NO_TAINT
        for arg in args:
            direct |= taint_of(arg)
            if not isinstance(arg, JString):
                state |= deep_taint(arg)
        self.result.events.append(SinkEvent(
            method.qname, call.iid, display, direct, state))

    # -- dispatch --------------------------------------------------------------------

    def call_method(self, method: Method, receiver: Optional[object],
                    args: List[object]) -> object:
        if method.is_native:
            raise Halt()  # native without builtin: cannot execute
        self.result.entered_methods.add(method.qname)
        env: Dict[str, object] = {}
        if receiver is not None:
            env["this"] = receiver
        for param, arg in zip(method.param_names(), args):
            env[param] = arg
        return self._exec_blocks(method, env)

    def _exec_blocks(self, method: Method, env: Dict[str, object]) -> object:
        bid = method.entry_block
        prev = -1
        while True:
            block = method.blocks[bid]
            # Phis evaluate in parallel against the predecessor block.
            phis = [i for i in block.instrs if isinstance(i, Phi)]
            if phis:
                snapshot = {phi.lhs: env.get(phi.operands.get(prev, ""),
                                             NULL)
                            for phi in phis}
                env.update(snapshot)
            jump: Optional[int] = None
            for instr in block.instrs:
                if isinstance(instr, Phi):
                    continue
                self._tick()
                outcome = self._exec(method, instr, env)
                if outcome is not None:
                    kind, payload = outcome
                    if kind == "return":
                        return payload
                    if kind == "jump":
                        jump = payload
                        break
            if jump is None:
                return NULL
            prev, bid = bid, jump

    # -- instruction execution -----------------------------------------------------------

    def _exec(self, method: Method, instr, env: Dict[str, object]):
        if isinstance(instr, Const):
            env[instr.lhs] = self._const(instr.value)
        elif isinstance(instr, Assign):
            env[instr.lhs] = env.get(instr.rhs, NULL)
        elif isinstance(instr, Cast):
            env[instr.lhs] = env.get(instr.value, NULL)
        elif isinstance(instr, (Select,)):
            for arg in instr.args:
                if arg in env:
                    env[instr.lhs] = env[arg]
                    break
            else:
                env[instr.lhs] = NULL
        elif isinstance(instr, BinOp):
            env[instr.lhs] = self._binop(instr.op,
                                         env.get(instr.left, NULL),
                                         env.get(instr.right, NULL))
        elif isinstance(instr, UnOp):
            operand = env.get(instr.operand, NULL)
            if instr.op == "!":
                env[instr.lhs] = FALSE if operand.truthy() else TRUE
            elif isinstance(operand, JInt):
                env[instr.lhs] = JInt(-operand.value)
            else:
                env[instr.lhs] = NULL
        elif isinstance(instr, New):
            env[instr.lhs] = self.new_object(instr.class_name)
        elif isinstance(instr, NewArray):
            length = env.get(instr.length or "", JInt(0))
            size = length.value if isinstance(length, JInt) else 0
            env[instr.lhs] = JArray(size)
        elif isinstance(instr, Load):
            base = env.get(instr.base, NULL)
            env[instr.lhs] = base.fields.get(instr.fld, NULL) \
                if isinstance(base, JObject) else NULL
        elif isinstance(instr, Store):
            base = env.get(instr.base, NULL)
            if isinstance(base, JObject):
                base.fields[instr.fld] = env.get(instr.rhs, NULL)
        elif isinstance(instr, StaticLoad):
            env[instr.lhs] = self.statics.get(
                (instr.class_name, instr.fld), NULL)
        elif isinstance(instr, StaticStore):
            self.statics[(instr.class_name, instr.fld)] = \
                env.get(instr.rhs, NULL)
        elif isinstance(instr, ArrayLoad):
            base = env.get(instr.base, NULL)
            index = env.get(instr.index or "", JInt(0))
            idx = index.value if isinstance(index, JInt) else 0
            env[instr.lhs] = base.load(idx) if isinstance(base, JArray) \
                else NULL
        elif isinstance(instr, ArrayStore):
            base = env.get(instr.base, NULL)
            if isinstance(base, JArray):
                index = env.get(instr.index or "", None)
                value = env.get(instr.rhs, NULL)
                if isinstance(index, JInt):
                    base.store(index.value, value)
                else:
                    base.elements.append(value)
        elif isinstance(instr, StringOp):
            env[instr.lhs or "%void"] = self._stringop(instr, env)
        elif isinstance(instr, EnterCatch):
            env[instr.lhs] = self._caught_exception(method, instr)
        elif isinstance(instr, Call):
            value = self._call(method, instr, env)
            if instr.lhs:
                env[instr.lhs] = value
        elif isinstance(instr, Return):
            return ("return", env.get(instr.value, NULL)
                    if instr.value else NULL)
        elif isinstance(instr, Goto):
            return ("jump", instr.target)
        elif isinstance(instr, If):
            cond = env.get(instr.cond, NULL)
            if isinstance(cond, JString) and cond.value == EXC_DISPATCH:
                taken = instr.then_block if self.fault_injection \
                    else instr.else_block
            else:
                taken = instr.then_block if cond.truthy() \
                    else instr.else_block
            return ("jump", taken)
        elif isinstance(instr, Throw):
            raise Halt()
        return None

    def _const(self, value) -> object:
        if value is None:
            return NULL
        if isinstance(value, bool):
            return TRUE if value else FALSE
        if isinstance(value, int):
            return JInt(value)
        return JString(str(value))

    def _binop(self, op: str, left: object, right: object) -> object:
        if op == "+":
            if isinstance(left, JString) or isinstance(right, JString):
                ls = left if isinstance(left, JString) else \
                    JString(str(left))
                rs = right if isinstance(right, JString) else \
                    JString(str(right))
                return JString(ls.value + rs.value, ls.taint | rs.taint)
            if isinstance(left, JInt) and isinstance(right, JInt):
                return JInt(left.value + right.value)
            return NULL
        if isinstance(left, JInt) and isinstance(right, JInt):
            a, b = left.value, right.value
            if op == "-":
                return JInt(a - b)
            if op == "*":
                return JInt(a * b)
            if op == "/":
                return JInt(a // b) if b else JInt(0)
            if op == "%":
                return JInt(a % b) if b else JInt(0)
            if op in ("<", ">", "<=", ">="):
                table = {"<": a < b, ">": a > b, "<=": a <= b,
                         ">=": a >= b}
                return TRUE if table[op] else FALSE
        if op in ("==", "!="):
            eq = self._equals(left, right)
            return TRUE if (eq if op == "==" else not eq) else FALSE
        if op in ("&&", "||"):
            lt, rt = left.truthy(), right.truthy()
            return TRUE if (lt and rt if op == "&&" else lt or rt) \
                else FALSE
        return NULL

    @staticmethod
    def _equals(left: object, right: object) -> bool:
        if isinstance(left, JString) and isinstance(right, JString):
            return left.value == right.value
        if isinstance(left, JInt) and isinstance(right, JInt):
            return left.value == right.value
        if isinstance(left, JNullType) or isinstance(right, JNullType):
            return left is right
        return left is right

    def _stringop(self, instr: StringOp, env) -> object:
        # StringOps only appear when model passes ran; interpret them
        # with plain concat-all semantics so modeled programs stay
        # executable too.
        taint = NO_TAINT
        parts = []
        for arg in instr.args:
            value = env.get(arg, NULL)
            taint |= taint_of(value)
            parts.append(str(value))
        if instr.method in SANITIZER_DISPLAYS:
            taint = frozenset(f"{label}|san={instr.method}"
                              for label in taint)
        return JString("".join(parts), taint)

    def _caught_exception(self, method: Method, instr) -> JObject:
        exc = self.new_object(instr.exc_type)
        taint = NO_TAINT
        if self._instrument_source(method):
            taint = frozenset({f"exc:{method.qname}@{instr.iid}"})
        exc.fields["message"] = JString(
            f"internal error ({instr.exc_type})", taint)
        return exc

    # -- calls ----------------------------------------------------------------------

    def _call(self, method: Method, call: Call, env) -> object:
        args = [env.get(a, NULL) for a in call.args]
        receiver = env.get(call.receiver, NULL) if call.receiver else None

        target, display = self._resolve(call, receiver)
        if display is not None:
            builtin = self._builtin(method, call, display, receiver, args)
            if builtin is not NotImplemented:
                return builtin
        if target is None or target.is_native:
            return NULL
        self._tick()
        return self.call_method(target, receiver, args)

    def _resolve(self, call: Call, receiver) -> Tuple[Optional[Method],
                                                      Optional[str]]:
        if call.kind == "static":
            target = self.hierarchy.lookup_static(
                call.class_name, call.method_name, call.arity)
            display = f"{call.class_name}.{call.method_name}"
            return target, display
        # Reflective and EJB stand-in receivers dispatch specially.
        if isinstance(receiver, (JClass, JMethod, JHome)):
            return None, f"<meta>.{call.method_name}"
        # String values receive String-API calls directly.
        if isinstance(receiver, JString):
            return None, f"String.{call.method_name}"
        if isinstance(receiver, JObject):
            target = self.hierarchy.dispatch(
                receiver.class_name, call.method_name, call.arity)
            display = target.display_name if target else \
                f"?.{call.method_name}"
            return target, display
        if call.kind == "special" and isinstance(receiver, JObject):
            target = self.hierarchy.lookup_static(
                call.class_name, call.method_name, call.arity)
            return target, call.target_id()
        return None, None

    # -- builtins -----------------------------------------------------------------------

    def _builtin(self, method: Method, call: Call, display: str,
                 receiver, args) -> object:
        name = call.method_name
        # Sinks (recorded; flow continues).
        if display in SINK_DISPLAYS:
            self.record_sink(method, call, display, args)
            if name in ("executeQuery",):
                return self.new_object("ResultSet")
            return NULL
        if call.kind == "special" and name == "<init>" and \
                call.class_name in CTOR_SINKS:
            self.record_sink(method, call,
                             f"{call.class_name}.<init>", args)
            return NotImplemented  # the (empty) body still runs
        # Sources.
        kind = SOURCE_DISPLAYS.get(display)
        if kind is not None:
            seedtext = str(args[0]) if args else "input"
            taint = NO_TAINT
            if self._instrument_source(method):
                taint = frozenset({f"{kind}:{method.qname}@{call.iid}"})
            return JString(self._payload(seedtext), taint)
        # Sanitizers annotate labels (rule-specific judgement happens at
        # validation time).
        if display in SANITIZER_DISPLAYS:
            value = args[0] if args else NULL
            if isinstance(value, JString):
                return value.with_sanitizer(display)
            return value
        # String carriers (when the strings model did NOT run).
        if isinstance(receiver, JString):
            return self._string_method(name, receiver, args)
        if display == "String.valueOf" or display == "String.format":
            taint = NO_TAINT
            for arg in args:
                taint |= taint_of(arg)
            return JString("".join(str(a) for a in args), taint)
        if isinstance(receiver, JObject) and \
                receiver.class_name in ("StringBuilder", "StringBuffer"):
            return self._builder_method(name, receiver, args)
        if call.kind == "special" and name == "<init>" and \
                call.class_name in ("StringBuilder", "StringBuffer"):
            recv = receiver
            if isinstance(recv, JObject):
                recv.fields["__buf"] = args[0] if args and isinstance(
                    args[0], JString) else JString("")
            return NULL
        # Reflection.
        if display == "Class.forName":
            cname = str(args[0]) if args else ""
            return JClass(cname) if self.program.get_class(cname) \
                else NULL
        if isinstance(receiver, JClass):
            return self._class_method(name, receiver, args)
        if isinstance(receiver, JMethod):
            return self._method_method(method, name, receiver, args)
        # EJB.
        if display == "InitialContext.lookup":
            key = str(args[0]) if args else ""
            bean = self.program.deployment_descriptor.get(key)
            return JHome(bean) if bean else NULL
        if isinstance(receiver, JHome) and name == "create":
            return self.construct(receiver.bean_class, [])
        if display == "PortableRemoteObject.narrow":
            return args[0] if args else NULL
        # Threads / privileged actions: sequential schedule.
        if display == "Thread.start" and isinstance(receiver, JObject):
            run = self.hierarchy.dispatch(receiver.class_name, "run", 0)
            if run is not None and not run.is_native:
                self.call_method(run, receiver, [])
            return NULL
        if display == "AccessController.doPrivileged" and args:
            action = args[0]
            if isinstance(action, JObject):
                run = self.hierarchy.dispatch(action.class_name, "run", 0)
                if run is not None and not run.is_native:
                    return self.call_method(run, action, [])
            return NULL
        # Misc library natives.
        if display == "HttpServletRequest.getSession":
            return self.construct("HttpSession", [])
        if display == "HttpServletRequest.getCookies":
            arr = JArray(1)
            arr.store(0, self.new_object("Cookie"))
            return arr
        if display == "HttpServletRequest.getReader":
            return self.new_object("BufferedReader")
        if display == "DriverManager.getConnection":
            return self.new_object("Connection")
        if display in ("Connection.createStatement",
                       "Connection.prepareStatement"):
            if display.endswith("prepareStatement"):
                self.record_sink(method, call, display, args)
            return self.new_object("Statement")
        if display == "Runtime.getRuntime":
            return self.new_object("Runtime")
        if display == "RandomAccessFile.readFully" and args:
            buffer = args[0]
            if isinstance(buffer, JArray):
                taint = NO_TAINT
                if self._instrument_source(method):
                    taint = frozenset(
                        {f"src:{method.qname}@{call.iid}"})
                buffer.store(0, JString(self._payload("file data"),
                                        taint))
            return NULL
        if display == "Date.getDate":
            return JString("2009-06-15")
        if display == "Integer.toString":
            return JString(str(args[0]) if args else "0")
        if display == "Integer.parseInt":
            try:
                return JInt(int(str(args[0])))
            except (TypeError, ValueError):
                return JInt(0)
        if display == "Math.random":
            return JInt(4)  # chosen by fair dice roll
        if display == "Exception.printStackTrace":
            return NULL
        if display == "PrintWriter.flush" or name == "close":
            return NULL
        if display == "HttpServletResponse.sendError":
            self.record_sink(method, call,
                             "HttpServletResponse.sendError", args)
            return NULL
        return NotImplemented

    def _string_method(self, name: str, receiver: JString,
                       args) -> object:
        taint = receiver.taint
        value = receiver.value
        if name == "concat" and args:
            other = args[0]
            otaint = taint_of(other)
            return JString(value + str(other), taint | otaint)
        if name in ("trim",):
            return JString(value.strip(), taint)
        if name == "toUpperCase":
            return JString(value.upper(), taint)
        if name == "toLowerCase":
            return JString(value.lower(), taint)
        if name == "substring":
            return JString(value, taint)
        if name == "replace" and len(args) == 2:
            return JString(value.replace(str(args[0]), str(args[1])),
                           taint)
        if name in ("toString", "intern"):
            return receiver
        if name == "equals" and args:
            return TRUE if str(args[0]) == value else FALSE
        if name == "equalsIgnoreCase" and args:
            return TRUE if str(args[0]).lower() == value.lower() \
                else FALSE
        if name == "startsWith" and args:
            return TRUE if value.startswith(str(args[0])) else FALSE
        if name == "endsWith" and args:
            return TRUE if value.endswith(str(args[0])) else FALSE
        if name == "contains" and args:
            return TRUE if str(args[0]) in value else FALSE
        if name == "length":
            return JInt(len(value))
        if name == "indexOf" and args:
            return JInt(value.find(str(args[0])))
        return NULL

    def _builder_method(self, name: str, receiver: JObject,
                        args) -> object:
        buf = receiver.fields.get("__buf")
        if not isinstance(buf, JString):
            buf = JString("")
        if name == "append" and args:
            other = args[0]
            buf = JString(buf.value + str(other),
                          buf.taint | taint_of(other) | deep_taint(other))
            receiver.fields["__buf"] = buf
            return receiver
        if name == "insert" and len(args) == 2:
            other = args[1]
            buf = JString(str(other) + buf.value,
                          buf.taint | taint_of(other))
            receiver.fields["__buf"] = buf
            return receiver
        if name == "toString":
            return buf
        if name == "length":
            return JInt(len(buf.value))
        return NULL

    def _class_method(self, name: str, receiver: JClass, args) -> object:
        cls = self.program.get_class(receiver.class_name)
        if cls is None:
            return NULL
        if name == "getMethods":
            arr = JArray(0)
            for (mname, _arity), _m in sorted(cls.methods.items()):
                if mname != "<init>":
                    arr.elements.append(JMethod(receiver.class_name,
                                                mname))
            return arr
        if name == "getMethod" and args:
            return JMethod(receiver.class_name, str(args[0]))
        if name == "newInstance":
            return self.construct(receiver.class_name, [])
        return NULL

    def _method_method(self, caller: Method, name: str,
                       receiver: JMethod, args) -> object:
        if name == "getName":
            return JString(receiver.method_name)
        if name == "invoke" and len(args) == 2:
            target_recv, arg_array = args
            actuals = list(arg_array.elements) \
                if isinstance(arg_array, JArray) else []
            if isinstance(target_recv, JObject):
                target = self.hierarchy.dispatch(
                    target_recv.class_name, receiver.method_name,
                    len(actuals))
                if target is not None and not target.is_native:
                    return self.call_method(target, target_recv, actuals)
            return NULL
        return NULL


# JNull type alias used in _equals (import-order friendly).
JNullType = type(NULL)


def execute(program: Program, fuel: int = 200_000,
            fault_injection: bool = False,
            source_methods: Optional[FrozenSet[str]] = None,
            sink_methods: Optional[FrozenSet[str]] = None,
            seed: int = 0) -> RunResult:
    """Run every entrypoint of an (unmodeled) program."""
    return Interpreter(program, fuel=fuel,
                       fault_injection=fault_injection,
                       source_methods=source_methods,
                       sink_methods=sink_methods, seed=seed).run()

"""repro — a from-scratch reproduction of *TAJ: Effective Taint Analysis
of Web Applications* (Tripp, Pistoia, Fink, Sridharan, Weisman;
PLDI 2009).

The package implements the full TAJ stack over a Java-like language
("jlang") that stands in for Java bytecode:

* :mod:`repro.lang` / :mod:`repro.ir` / :mod:`repro.ssa` — frontend, IR,
  and SSA construction;
* :mod:`repro.pointer` / :mod:`repro.callgraph` — context-sensitive
  Andersen pointer analysis with on-the-fly, optionally priority-driven
  call-graph construction;
* :mod:`repro.sdg` / :mod:`repro.slicing` — the no-heap SDG, RHS
  tabulation, and the hybrid / CS / CI thin-slicing strategies;
* :mod:`repro.taint` / :mod:`repro.modeling` / :mod:`repro.reporting` —
  security rules, taint carriers, web-framework models, and LCP-grouped
  reports;
* :mod:`repro.bench` — the synthetic benchmark suite and evaluation
  harness reproducing the paper's Tables 1-3 and Figure 4.

Quickstart::

    from repro import TAJ, TAJConfig

    result = TAJ(TAJConfig.hybrid_optimized()).analyze_sources([source])
    print(result.issues)
"""

from .confirm import ConfirmationResult, FlowVerdict, ReplayOracle
from .core import TAJ, TAJConfig, TAJResult, analyze, settings_matrix
from .obs import Observability
from .taint import (RuleSet, SecurityRule, TaintFlow, default_rules,
                    extended_rules)

__version__ = "1.0.0"

__all__ = [
    "ConfirmationResult", "FlowVerdict", "Observability", "ReplayOracle",
    "RuleSet", "SecurityRule", "TAJ", "TAJConfig", "TAJResult",
    "TaintFlow", "analyze", "default_rules", "extended_rules",
    "settings_matrix",
    "__version__",
]

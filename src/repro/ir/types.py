"""Type representations for the jlang IR.

The IR is nominally typed but deliberately loose: types guide virtual
dispatch, cast-based framework modeling (Struts), and the string-carrier
rewrite, and are otherwise not enforced.  This mirrors the role types play
in WALA's register-transfer IR as consumed by TAJ.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """Base class for IR types."""

    def is_reference(self) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class PrimitiveType(Type):
    """A primitive type such as ``int`` or ``boolean``."""

    name: str

    def is_reference(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ClassType(Type):
    """A reference type named by its class or interface."""

    name: str

    def is_reference(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayType(Type):
    """An array type; element contents are collapsed to one field."""

    element: Type

    def is_reference(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.element}[]"


INT = PrimitiveType("int")
BOOLEAN = PrimitiveType("boolean")
VOID = PrimitiveType("void")
OBJECT = ClassType("Object")
STRING = ClassType("String")
NULL = ClassType("<null>")

_PRIMITIVES = {"int": INT, "boolean": BOOLEAN, "void": VOID}


def parse_type(text: str) -> Type:
    """Parse a type from surface syntax, e.g. ``String``, ``Object[]``."""
    text = text.strip()
    if text.endswith("[]"):
        return ArrayType(parse_type(text[:-2]))
    if text in _PRIMITIVES:
        return _PRIMITIVES[text]
    return ClassType(text)


def erasure(t: Type) -> str:
    """Return the class name used for dispatch and hierarchy queries."""
    if isinstance(t, ArrayType):
        return "Object"
    if isinstance(t, ClassType):
        return t.name
    return str(t)

"""Three-address instructions for the jlang IR.

Each instruction lives in a basic block of a method and carries:

* ``iid`` — a method-unique integer id, stable across passes, used to
  identify allocation sites, SDG nodes, and report locations;
* ``line`` — the source line it was lowered from (0 for synthetic code).

Design notes relevant to the analyses built on top:

* ``defs()`` / ``uses()`` are the plain def/use sets.
* ``value_uses()`` excludes *base-pointer* uses (the base of a load or
  store).  Thin slicing (Sridharan et al., PLDI'07), and therefore TAJ's
  hybrid thin slicing, ignores base-pointer data dependencies; exposing
  the distinction here keeps the SDG construction trivial.
* ``StringOp`` is not produced by the frontend: the string-carrier
  modeling pass (paper §4.2.1) rewrites calls on String/StringBuffer/
  StringBuilder into these primitive value operations so that string data
  flow never touches the heap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .types import Type

# A variable is a plain string.  SSA construction renames ``x`` to
# ``x.1``, ``x.2``; temporaries introduced by lowering start with ``%``.
Var = str


@dataclass
class Instruction:
    """Base class for all IR instructions."""

    iid: int = field(init=False, default=-1)
    line: int = field(init=False, default=0)

    def defs(self) -> List[Var]:
        return []

    def uses(self) -> List[Var]:
        return []

    def value_uses(self) -> List[Var]:
        """Uses excluding base-pointer uses (thin-slicing semantics)."""
        return self.uses()

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        """Rewrite used variables in place (SSA renaming helper)."""

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        """Rewrite defined variables in place (SSA renaming helper)."""


def _subst(mapping: Dict[Var, Var], v: Optional[Var]) -> Optional[Var]:
    if v is None:
        return None
    return mapping.get(v, v)


@dataclass
class Const(Instruction):
    """``lhs = <literal>`` — string, int, bool, or null (None)."""

    lhs: Var
    value: object

    def defs(self) -> List[Var]:
        return [self.lhs]

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = const {self.value!r}"


@dataclass
class Assign(Instruction):
    """``lhs = rhs`` — register copy."""

    lhs: Var
    rhs: Var

    def defs(self) -> List[Var]:
        return [self.lhs]

    def uses(self) -> List[Var]:
        return [self.rhs]

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.rhs = _subst(mapping, self.rhs)

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


@dataclass
class BinOp(Instruction):
    """``lhs = left <op> right``; ``+`` on strings is concatenation."""

    lhs: Var
    op: str
    left: Var
    right: Var

    def defs(self) -> List[Var]:
        return [self.lhs]

    def uses(self) -> List[Var]:
        return [self.left, self.right]

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.left = _subst(mapping, self.left)
        self.right = _subst(mapping, self.right)

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = {self.left} {self.op} {self.right}"


@dataclass
class UnOp(Instruction):
    """``lhs = <op> operand``."""

    lhs: Var
    op: str
    operand: Var

    def defs(self) -> List[Var]:
        return [self.lhs]

    def uses(self) -> List[Var]:
        return [self.operand]

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.operand = _subst(mapping, self.operand)

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = {self.op}{self.operand}"


@dataclass
class New(Instruction):
    """``lhs = new C`` — an allocation site.

    The site identity is ``(method.qname, iid)``; constructor invocation
    is a separate ``Call`` with kind ``special``.
    """

    lhs: Var
    class_name: str

    def defs(self) -> List[Var]:
        return [self.lhs]

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = new {self.class_name}"


@dataclass
class NewArray(Instruction):
    """``lhs = new T[length]`` — array allocation site."""

    lhs: Var
    element_type: Type
    length: Optional[Var] = None

    def defs(self) -> List[Var]:
        return [self.lhs]

    def uses(self) -> List[Var]:
        return [self.length] if self.length else []

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.length = _subst(mapping, self.length)

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = new {self.element_type}[{self.length or ''}]"


@dataclass
class Load(Instruction):
    """``lhs = base.field`` — ``base`` is a base-pointer use."""

    lhs: Var
    base: Var
    fld: str

    def defs(self) -> List[Var]:
        return [self.lhs]

    def uses(self) -> List[Var]:
        return [self.base]

    def value_uses(self) -> List[Var]:
        return []

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.base = _subst(mapping, self.base)

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = {self.base}.{self.fld}"


@dataclass
class Store(Instruction):
    """``base.field = rhs`` — ``base`` is a base-pointer use."""

    base: Var
    fld: str
    rhs: Var

    def uses(self) -> List[Var]:
        return [self.base, self.rhs]

    def value_uses(self) -> List[Var]:
        return [self.rhs]

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.base = _subst(mapping, self.base)
        self.rhs = _subst(mapping, self.rhs)

    def __str__(self) -> str:
        return f"{self.base}.{self.fld} = {self.rhs}"


@dataclass
class StaticLoad(Instruction):
    """``lhs = C.field`` — static field read."""

    lhs: Var
    class_name: str
    fld: str

    def defs(self) -> List[Var]:
        return [self.lhs]

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = {self.class_name}.{self.fld}"


@dataclass
class StaticStore(Instruction):
    """``C.field = rhs`` — static field write."""

    class_name: str
    fld: str
    rhs: Var

    def uses(self) -> List[Var]:
        return [self.rhs]

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.rhs = _subst(mapping, self.rhs)

    def __str__(self) -> str:
        return f"{self.class_name}.{self.fld} = {self.rhs}"


# Array contents are collapsed to the single pseudo-field below, the
# standard treatment in inclusion-based pointer analyses.
ARRAY_CONTENTS = "@elems"


@dataclass
class ArrayLoad(Instruction):
    """``lhs = base[index]``; index is a value use, base is not."""

    lhs: Var
    base: Var
    index: Optional[Var] = None

    def defs(self) -> List[Var]:
        return [self.lhs]

    def uses(self) -> List[Var]:
        return [self.base] + ([self.index] if self.index else [])

    def value_uses(self) -> List[Var]:
        return []

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.base = _subst(mapping, self.base)
        self.index = _subst(mapping, self.index)

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = {self.base}[{self.index or ''}]"


@dataclass
class ArrayStore(Instruction):
    """``base[index] = rhs``."""

    base: Var
    rhs: Var
    index: Optional[Var] = None

    def uses(self) -> List[Var]:
        return [self.base, self.rhs] + ([self.index] if self.index else [])

    def value_uses(self) -> List[Var]:
        return [self.rhs]

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.base = _subst(mapping, self.base)
        self.rhs = _subst(mapping, self.rhs)
        self.index = _subst(mapping, self.index)

    def __str__(self) -> str:
        return f"{self.base}[{self.index or ''}] = {self.rhs}"


@dataclass
class Call(Instruction):
    """A method invocation.

    ``kind`` is one of:

    * ``virtual`` — dispatched on the dynamic type of ``receiver``;
    * ``special`` — constructor / non-virtual self call (exact target);
    * ``static``  — no receiver, exact target class.

    ``class_name`` is the static target class (for ``static``/``special``)
    or the declared receiver class if known (may be empty for ``virtual``).
    """

    lhs: Optional[Var]
    kind: str
    class_name: str
    method_name: str
    receiver: Optional[Var]
    args: List[Var]

    def defs(self) -> List[Var]:
        return [self.lhs] if self.lhs else []

    def uses(self) -> List[Var]:
        out = list(self.args)
        if self.receiver:
            out.insert(0, self.receiver)
        return out

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.receiver = _subst(mapping, self.receiver)
        self.args = [_subst(mapping, a) for a in self.args]

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    @property
    def arity(self) -> int:
        return len(self.args)

    def target_id(self) -> str:
        """A human-readable ``Class.method`` string for rule matching."""
        if self.class_name:
            return f"{self.class_name}.{self.method_name}"
        return self.method_name

    def __str__(self) -> str:
        recv = f"{self.receiver}." if self.receiver else (
            f"{self.class_name}." if self.kind == "static" else "")
        lhs = f"{self.lhs} = " if self.lhs else ""
        return f"{lhs}{recv}{self.method_name}({', '.join(self.args)})"


@dataclass
class StringOp(Instruction):
    """A primitive string-carrier operation (paper §4.2.1).

    Inserted by the string modeling pass in place of calls on string
    carriers; ``method`` records the original qualified method name so
    taint rules (e.g. sanitizer matching) still apply, but data flows
    directly from ``args`` to ``lhs`` with no heap involvement.
    """

    lhs: Optional[Var]
    method: str
    args: List[Var]

    def defs(self) -> List[Var]:
        return [self.lhs] if self.lhs else []

    def uses(self) -> List[Var]:
        return list(self.args)

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.args = [_subst(mapping, a) for a in self.args]

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        lhs = f"{self.lhs} = " if self.lhs else ""
        return f"{lhs}strop[{self.method}]({', '.join(self.args)})"


@dataclass
class Select(Instruction):
    """``lhs = select(a, b, ...)`` — nondeterministic choice.

    Emitted only by model passes (never by the frontend), e.g. a
    dictionary read with a statically unresolvable key selects among the
    values stored under every known key.  The pointer analysis treats it
    as copies from each operand; the SDG treats every operand as a value
    use.
    """

    lhs: Var
    args: List[Var]

    def defs(self) -> List[Var]:
        return [self.lhs]

    def uses(self) -> List[Var]:
        return list(self.args)

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.args = [_subst(mapping, a) for a in self.args]

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = select({', '.join(self.args)})"


@dataclass
class Cast(Instruction):
    """``lhs = (T) value`` — a checked cast.

    Data flows through unchanged; the recorded target type feeds the
    Struts ActionForm model (paper §4.2.2), which inspects casts to learn
    which form subtypes an ``execute`` implementation expects.
    """

    lhs: Var
    type_name: str
    value: Var

    def defs(self) -> List[Var]:
        return [self.lhs]

    def uses(self) -> List[Var]:
        return [self.value]

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.value = _subst(mapping, self.value)

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = ({self.type_name}) {self.value}"


@dataclass
class Return(Instruction):
    """``return [value]`` — block terminator."""

    value: Optional[Var] = None

    def uses(self) -> List[Var]:
        return [self.value] if self.value else []

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.value = _subst(mapping, self.value)

    def __str__(self) -> str:
        return f"return {self.value or ''}".rstrip()


@dataclass
class If(Instruction):
    """``if cond goto then_block else else_block`` — block terminator.

    Thin slicing ignores control dependence, so the condition variable is
    never a taint-relevant use; it is still recorded for completeness.
    """

    cond: Var
    then_block: int = -1
    else_block: int = -1

    def uses(self) -> List[Var]:
        return [self.cond]

    def value_uses(self) -> List[Var]:
        return []

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.cond = _subst(mapping, self.cond)

    def __str__(self) -> str:
        return f"if {self.cond} goto B{self.then_block} else B{self.else_block}"


@dataclass
class Goto(Instruction):
    """Unconditional jump — block terminator."""

    target: int = -1

    def __str__(self) -> str:
        return f"goto B{self.target}"


@dataclass
class Throw(Instruction):
    """``throw var`` — block terminator."""

    value: Var = ""

    def uses(self) -> List[Var]:
        return [self.value] if self.value else []

    def replace_uses(self, mapping: Dict[Var, Var]) -> None:
        self.value = _subst(mapping, self.value)

    def __str__(self) -> str:
        return f"throw {self.value}"


@dataclass
class EnterCatch(Instruction):
    """First instruction of a catch block; defines the exception var.

    The exception modeling pass (paper §4.1.2) treats the value defined
    here as carrying the result of a synthetic ``getMessage`` source.
    """

    lhs: Var
    exc_type: str = "Exception"

    def defs(self) -> List[Var]:
        return [self.lhs]

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        return f"{self.lhs} = catch {self.exc_type}"


@dataclass
class Phi(Instruction):
    """SSA phi node: ``lhs = phi(pred_block -> var, ...)``."""

    lhs: Var
    operands: Dict[int, Var] = field(default_factory=dict)

    def defs(self) -> List[Var]:
        return [self.lhs]

    def uses(self) -> List[Var]:
        return list(self.operands.values())

    def replace_defs(self, mapping: Dict[Var, Var]) -> None:
        self.lhs = _subst(mapping, self.lhs)

    def __str__(self) -> str:
        ops = ", ".join(f"B{b}:{v}" for b, v in sorted(self.operands.items()))
        return f"{self.lhs} = phi({ops})"


TERMINATORS = (Return, If, Goto, Throw)


def is_terminator(instr: Instruction) -> bool:
    return isinstance(instr, TERMINATORS)

"""jlang IR: a three-address, class-based register-transfer representation.

This plays the role WALA's IR plays for TAJ: the common substrate consumed
by SSA construction, pointer analysis, call-graph construction, and the
dependence graphs used by hybrid thin slicing.
"""

from .hierarchy import ClassHierarchy
from .instructions import (ARRAY_CONTENTS, Assign, ArrayLoad, ArrayStore,
                           BinOp, Call, Cast, Const, EnterCatch, Goto, If,
                           Instruction, Load, New, NewArray, Phi, Return,
                           Select, StaticLoad, StaticStore, Store, StringOp,
                           Throw,
                           UnOp, Var, is_terminator)
from .printer import format_class, format_method, format_program
from .program import BasicBlock, ClassDecl, FieldDecl, Method, Param, Program
from .types import (ArrayType, BOOLEAN, ClassType, INT, NULL, OBJECT,
                    PrimitiveType, STRING, Type, VOID, erasure, parse_type)
from .validate import ValidationError, validate_method, validate_program

__all__ = [
    "ARRAY_CONTENTS", "ArrayLoad", "ArrayStore", "ArrayType", "Assign",
    "BasicBlock", "BinOp", "BOOLEAN", "Call", "Cast", "ClassDecl", "ClassHierarchy",
    "ClassType", "Const", "EnterCatch", "FieldDecl", "Goto", "If",
    "Instruction", "INT", "Load", "Method", "New", "NewArray", "NULL",
    "OBJECT", "Param", "Phi", "PrimitiveType", "Program", "Return",
    "Select",
    "StaticLoad", "StaticStore", "Store", "STRING", "StringOp", "Throw",
    "Type", "UnOp", "ValidationError", "Var", "VOID", "erasure",
    "format_class", "format_method", "format_program", "is_terminator",
    "parse_type", "validate_method", "validate_program",
]

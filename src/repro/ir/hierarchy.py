"""Class-hierarchy queries: subtyping and virtual-dispatch resolution."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from .program import ClassDecl, Method, Program


class ClassHierarchy:
    """Precomputed subtype and dispatch tables for a :class:`Program`.

    Dispatch follows Java semantics restricted to jlang: a virtual call
    ``o.m(a1..an)`` resolves, for each possible runtime class ``C`` of
    ``o``, to the first definition of ``m/n`` found walking from ``C`` up
    the superclass chain.  Interfaces contribute subtype facts (for cast
    reasoning in the Struts model) but no method bodies.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self._subclasses: Dict[str, Set[str]] = {}
        self._supers: Dict[str, List[str]] = {}
        self._dispatch_cache: Dict[Tuple[str, str, int], Optional[Method]] = {}
        self._build()

    def _build(self) -> None:
        for cls in self.program.classes.values():
            chain: List[str] = []
            seen: Set[str] = set()
            cur: Optional[ClassDecl] = cls
            while cur is not None and cur.name not in seen:
                seen.add(cur.name)
                chain.append(cur.name)
                for iface in cur.interfaces:
                    self._subclasses.setdefault(iface, set()).add(cls.name)
                cur = (self.program.get_class(cur.super_name)
                       if cur.super_name else None)
            self._supers[cls.name] = chain
            for ancestor in chain:
                self._subclasses.setdefault(ancestor, set()).add(cls.name)
            # Interface subtyping is transitive through superclasses.
            for ancestor in chain[1:]:
                decl = self.program.get_class(ancestor)
                if decl:
                    for iface in decl.interfaces:
                        self._subclasses.setdefault(iface, set()).add(cls.name)

    # -- subtyping ---------------------------------------------------------

    def is_subtype(self, sub: str, sup: str) -> bool:
        """True if ``sub`` is ``sup`` or a transitive subtype of it."""
        if sub == sup or sup == "Object":
            return True
        return sub in self._subclasses.get(sup, set())

    def subtypes(self, name: str) -> Set[str]:
        """All classes that are subtypes of ``name`` (including itself)."""
        out = set(self._subclasses.get(name, set()))
        if name in self.program.classes:
            out.add(name)
        return out

    def concrete_subtypes(self, name: str) -> List[str]:
        """Instantiable (non-interface) subtypes, sorted for determinism."""
        return sorted(
            s for s in self.subtypes(name)
            if (c := self.program.get_class(s)) and not c.is_interface)

    def superclass_chain(self, name: str) -> List[str]:
        return self._supers.get(name, [name])

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, runtime_class: str, method_name: str,
                 arity: int) -> Optional[Method]:
        """Resolve a virtual call for a concrete receiver class."""
        key = (runtime_class, method_name, arity)
        if key in self._dispatch_cache:
            return self._dispatch_cache[key]
        result: Optional[Method] = None
        for cname in self._supers.get(runtime_class, []):
            cls = self.program.get_class(cname)
            if cls is None:
                continue
            method = cls.get_method(method_name, arity)
            if method is not None:
                result = method
                break
        self._dispatch_cache[key] = result
        return result

    def lookup_static(self, class_name: str, method_name: str,
                      arity: int) -> Optional[Method]:
        """Resolve a static or special call (walks up for inherited statics)."""
        return self.dispatch(class_name, method_name, arity)

    def resolve_field_owner(self, class_name: str, fld: str) -> Optional[str]:
        """Find the class in the superclass chain declaring ``fld``."""
        for cname in self._supers.get(class_name, [class_name]):
            cls = self.program.get_class(cname)
            if cls and fld in cls.fields:
                return cname
        return None

    def all_overrides(self, method_name: str, arity: int) -> Iterator[Method]:
        """Every method in the program with the given name and arity."""
        for cls in self.program.classes.values():
            method = cls.get_method(method_name, arity)
            if method is not None:
                yield method

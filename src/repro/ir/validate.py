"""Structural IR validation.

Run after lowering and after every IR-rewriting model pass; catching a
malformed CFG here is vastly cheaper than debugging a silently wrong
pointer-analysis result downstream.
"""

from __future__ import annotations

from typing import List

from .instructions import Phi, is_terminator
from .program import Method, Program


class ValidationError(Exception):
    """Raised when a method body violates an IR invariant."""


def validate_method(method: Method) -> List[str]:
    """Return a list of invariant violations (empty means valid)."""
    problems: List[str] = []
    if method.is_native:
        if method.blocks:
            problems.append(f"{method.qname}: native method has a body")
        return problems
    if method.entry_block not in method.blocks:
        problems.append(f"{method.qname}: missing entry block")
        return problems
    seen_iids = set()
    for bid, block in method.blocks.items():
        if bid != block.bid:
            problems.append(f"{method.qname}: block key/id mismatch B{bid}")
        if not block.instrs:
            problems.append(f"{method.qname}: empty block B{bid}")
            continue
        for idx, instr in enumerate(block.instrs):
            if instr.iid in seen_iids:
                problems.append(
                    f"{method.qname}: duplicate iid {instr.iid} in B{bid}")
            seen_iids.add(instr.iid)
            last = idx == len(block.instrs) - 1
            if is_terminator(instr) and not last:
                problems.append(
                    f"{method.qname}: terminator mid-block in B{bid}")
            if isinstance(instr, Phi) and idx > 0 and \
                    not isinstance(block.instrs[idx - 1], Phi):
                problems.append(
                    f"{method.qname}: phi after non-phi in B{bid}")
        if block.terminator is None:
            problems.append(f"{method.qname}: B{bid} lacks a terminator")
        for succ in block.succs:
            if succ not in method.blocks:
                problems.append(
                    f"{method.qname}: B{bid} -> missing block B{succ}")
    return problems


def validate_program(program: Program) -> None:
    """Validate every method; raise :class:`ValidationError` on failure."""
    problems: List[str] = []
    for method in program.methods():
        problems.extend(validate_method(method))
    for entry in program.entrypoints:
        if program.lookup_method(entry) is None:
            problems.append(f"entrypoint {entry} does not resolve")
    if problems:
        raise ValidationError("; ".join(problems[:20]))

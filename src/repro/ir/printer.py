"""Human-readable IR dumps, used by tests and debugging."""

from __future__ import annotations

from typing import List

from .program import ClassDecl, Method, Program


def format_method(method: Method) -> str:
    lines: List[str] = []
    mods = []
    if method.is_static:
        mods.append("static")
    if method.is_native:
        mods.append("native")
    if method.is_synthetic:
        mods.append("synthetic")
    prefix = (" ".join(mods) + " ") if mods else ""
    params = ", ".join(f"{p.type} {p.name}" for p in method.params)
    lines.append(f"{prefix}{method.return_type} {method.qname}({params}) {{")
    for bid in sorted(method.blocks):
        block = method.blocks[bid]
        succs = ",".join(f"B{s}" for s in block.succs)
        lines.append(f"  B{bid}:  // -> {succs or 'exit'}")
        for instr in block.instrs:
            lines.append(f"    [{instr.iid:>3}] {instr}")
    lines.append("}")
    return "\n".join(lines)


def format_class(cls: ClassDecl) -> str:
    lines: List[str] = []
    kind = "interface" if cls.is_interface else "class"
    lib = "library " if cls.is_library else ""
    ext = f" extends {cls.super_name}" if cls.super_name else ""
    impl = f" implements {', '.join(cls.interfaces)}" if cls.interfaces else ""
    lines.append(f"{lib}{kind} {cls.name}{ext}{impl} {{")
    for fld in cls.fields.values():
        mods = "static " if fld.is_static else ""
        lines.append(f"  {mods}{fld.type} {fld.name};")
    for method in cls.methods.values():
        body = format_method(method)
        lines.extend("  " + line for line in body.splitlines())
    lines.append("}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    parts = [format_class(cls)
             for name, cls in sorted(program.classes.items())]
    header = ""
    if program.entrypoints:
        header = "// entrypoints: " + ", ".join(program.entrypoints) + "\n"
    return header + "\n\n".join(parts)

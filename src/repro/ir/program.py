"""Program structure: basic blocks, methods, classes, whole programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .instructions import (Call, Goto, If, Instruction, Phi, Return, Throw,
                           Var, is_terminator)
from .types import Type, VOID


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator.

    Successor edges are stored explicitly (``succs``) and kept consistent
    with the terminator by :meth:`Method.finish`.
    """

    bid: int
    instrs: List[Instruction] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instrs and is_terminator(self.instrs[-1]):
            return self.instrs[-1]
        return None

    def phis(self) -> List[Phi]:
        return [i for i in self.instrs if isinstance(i, Phi)]

    def non_phis(self) -> List[Instruction]:
        return [i for i in self.instrs if not isinstance(i, Phi)]


@dataclass
class Param:
    """A formal parameter."""

    name: Var
    type: Type


class Method:
    """A method body as a CFG of basic blocks.

    ``qname`` is ``Class.name/arity`` and uniquely identifies the method
    in the program; it is the unit of call-graph nodes, pointer-analysis
    cloning, and SDG partitioning.
    """

    def __init__(self, class_name: str, name: str, params: List[Param],
                 return_type: Type = VOID, is_static: bool = False,
                 is_native: bool = False, line: int = 0) -> None:
        self.class_name = class_name
        self.name = name
        self.params = params
        self.return_type = return_type
        self.is_static = is_static
        self.is_native = is_native
        self.line = line
        self.blocks: Dict[int, BasicBlock] = {}
        self.entry_block = 0
        self._next_iid = 0
        self._next_bid = 0
        self.is_synthetic = False
        # Best-effort static types for locals, keyed by the pre-SSA
        # variable name (SSA versions share their base name's type).
        # Filled by the frontend; consumed by the modeling passes.
        self.var_types: Dict[Var, str] = {}

    def type_of(self, var: Var) -> Optional[str]:
        """Declared/inferred type name of a variable (SSA-version aware)."""
        if var in self.var_types:
            return self.var_types[var]
        if "." in var:
            base, _, ver = var.rpartition(".")
            if ver.isdigit():
                return self.var_types.get(base)
        return None

    # -- construction -----------------------------------------------------

    def new_block(self) -> BasicBlock:
        block = BasicBlock(self._next_bid)
        self.blocks[block.bid] = block
        self._next_bid += 1
        return block

    def append(self, block: BasicBlock, instr: Instruction,
               line: int = 0) -> Instruction:
        """Append ``instr`` to ``block``, assigning its method-unique iid."""
        instr.iid = self._next_iid
        instr.line = line
        self._next_iid += 1
        block.instrs.append(instr)
        return instr

    def fresh_iid(self) -> int:
        iid = self._next_iid
        self._next_iid += 1
        return iid

    def finish(self) -> None:
        """Derive succ/pred edges from terminators.

        Lowering terminates every reachable block explicitly; block ids
        carry no fallthrough meaning (they are allocated out of order
        around try/catch), so an unterminated block simply returns.
        """
        bids = sorted(self.blocks)
        for block in self.blocks.values():
            block.succs = []
            block.preds = []
        for bid in bids:
            block = self.blocks[bid]
            term = block.terminator
            if term is None:
                self.append(block, Return(None))
                term = block.terminator
            if isinstance(term, Goto):
                block.succs = [term.target]
            elif isinstance(term, If):
                block.succs = [term.then_block, term.else_block]
            elif isinstance(term, (Return, Throw)):
                block.succs = []
        # Prune blocks unreachable from the entry (produced by lowering
        # after break/continue/return) so dominance and SSA stay simple.
        reachable = {self.entry_block}
        stack = [self.entry_block]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in reachable:
                    reachable.add(succ)
                    stack.append(succ)
        self.blocks = {bid: b for bid, b in self.blocks.items()
                       if bid in reachable}
        for block in self.blocks.values():
            for succ in block.succs:
                self.blocks[succ].preds.append(block.bid)

    # -- queries ----------------------------------------------------------

    @property
    def qname(self) -> str:
        return f"{self.class_name}.{self.name}/{len(self.params)}"

    @property
    def display_name(self) -> str:
        return f"{self.class_name}.{self.name}"

    def param_names(self) -> List[Var]:
        return [p.name for p in self.params]

    def instructions(self) -> Iterator[Instruction]:
        for bid in sorted(self.blocks):
            for instr in self.blocks[bid].instrs:
                yield instr

    def instructions_with_blocks(self) -> Iterator[Tuple[BasicBlock, Instruction]]:
        for bid in sorted(self.blocks):
            block = self.blocks[bid]
            for instr in block.instrs:
                yield block, instr

    def calls(self) -> Iterator[Call]:
        for instr in self.instructions():
            if isinstance(instr, Call):
                yield instr

    def returns(self) -> Iterator[Return]:
        for instr in self.instructions():
            if isinstance(instr, Return):
                yield instr

    def instruction_count(self) -> int:
        return sum(len(b.instrs) for b in self.blocks.values())

    def __repr__(self) -> str:
        return f"<Method {self.qname}>"


@dataclass
class FieldDecl:
    """A field declaration."""

    name: str
    type: Type
    is_static: bool = False


class ClassDecl:
    """A class or interface declaration.

    ``is_library`` marks code that belongs to supporting libraries rather
    than the application under analysis; the distinction drives both the
    whitelist code-reduction (paper §4.2.1) and LCP computation (§5).
    """

    def __init__(self, name: str, super_name: Optional[str] = "Object",
                 interfaces: Optional[List[str]] = None,
                 is_interface: bool = False, is_library: bool = False,
                 line: int = 0) -> None:
        self.name = name
        self.super_name = super_name if name != "Object" else None
        self.interfaces = interfaces or []
        self.is_interface = is_interface
        self.is_library = is_library
        self.line = line
        self.fields: Dict[str, FieldDecl] = {}
        # Keyed by (name, arity); jlang supports overloading on arity only.
        self.methods: Dict[Tuple[str, int], Method] = {}

    def add_field(self, fld: FieldDecl) -> None:
        self.fields[fld.name] = fld

    def add_method(self, method: Method) -> None:
        self.methods[(method.name, len(method.params))] = method

    def get_method(self, name: str, arity: int) -> Optional[Method]:
        return self.methods.get((name, arity))

    def __repr__(self) -> str:
        kind = "interface" if self.is_interface else "class"
        return f"<{kind} {self.name}>"


class Program:
    """A whole program: all classes, plus analysis entrypoints.

    Entrypoints are method qnames; for web applications they are the
    servlet ``doGet``/``doPost`` methods and framework-dispatched methods
    discovered by the Struts/EJB models.
    """

    def __init__(self) -> None:
        self.classes: Dict[str, ClassDecl] = {}
        self.entrypoints: List[str] = []
        # Deployment metadata consumed by framework models (paper §4.2.2):
        # maps an EJB JNDI name to its implementing bean class.
        self.deployment_descriptor: Dict[str, str] = {}

    def add_class(self, cls: ClassDecl) -> None:
        if cls.name in self.classes:
            raise ValueError(f"duplicate class {cls.name}")
        self.classes[cls.name] = cls

    def get_class(self, name: str) -> Optional[ClassDecl]:
        return self.classes.get(name)

    def methods(self) -> Iterator[Method]:
        for cls in self.classes.values():
            for method in cls.methods.values():
                yield method

    def lookup_method(self, qname: str) -> Optional[Method]:
        """Find a method by its ``Class.name/arity`` qname."""
        if "/" not in qname:
            return None
        rest, arity_s = qname.rsplit("/", 1)
        if "." not in rest:
            return None
        class_name, name = rest.rsplit(".", 1)
        cls = self.classes.get(class_name)
        if cls is None:
            return None
        return cls.get_method(name, int(arity_s))

    def application_classes(self) -> Iterator[ClassDecl]:
        for cls in self.classes.values():
            if not cls.is_library:
                yield cls

    def library_classes(self) -> Iterator[ClassDecl]:
        for cls in self.classes.values():
            if cls.is_library:
                yield cls

    def is_application_method(self, method: Method) -> bool:
        cls = self.classes.get(method.class_name)
        return cls is not None and not cls.is_library

    def stats(self) -> Dict[str, int]:
        """Raw size statistics (feeds the Table 2 reproduction)."""
        app_classes = list(self.application_classes())
        lib_classes = list(self.library_classes())
        app_methods = sum(len(c.methods) for c in app_classes)
        lib_methods = sum(len(c.methods) for c in lib_classes)
        app_instrs = sum(m.instruction_count()
                         for c in app_classes for m in c.methods.values())
        lib_instrs = sum(m.instruction_count()
                         for c in lib_classes for m in c.methods.values())
        return {
            "app_classes": len(app_classes),
            "total_classes": len(self.classes),
            "app_methods": app_methods,
            "total_methods": app_methods + lib_methods,
            "app_instructions": app_instrs,
            "total_instructions": app_instrs + lib_instrs,
        }

    def merge(self, other: "Program") -> None:
        """Merge another program's classes into this one (library linking)."""
        for cls in other.classes.values():
            if cls.name not in self.classes:
                self.classes[cls.name] = cls
        self.entrypoints.extend(
            e for e in other.entrypoints if e not in self.entrypoints)
        self.deployment_descriptor.update(other.deployment_descriptor)

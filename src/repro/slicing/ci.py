"""Context-insensitive (CI) thin slicing — the cheap baseline (§3.2, [33]).

Same thin-slice graph as the hybrid algorithm (local def-use + direct
heap edges + carrier edges), but interprocedural flow is plain graph
reachability: call and return edges are ordinary edges with **no
call/return matching**.  A value entering a shared helper from one call
site flows out to *every* call site — the context conflation that gives
CI its higher false-positive rate (accuracy 0.22 in the paper's
evaluation, versus 0.35 hybrid and 0.54 CS).

CI is sound (like the hybrid algorithm, and unlike CS on multithreaded
code), so in the evaluation both agree on the true positives.

Run per source: the traversal is a simple BFS and attribution matters.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..sdg.nodes import Fact, RET, Stmt, StmtRef
from ..sdg.tabulation import Meta, RuleAdapter
from ..taint.flows import TaintFlow
from ..taint.rules import SecurityRule
from .base import FlowCollector, Slicer, SourceSeed, enumerate_sources


class CISlicer(Slicer):
    """Flow-insensitive/context-insensitive closure over the full graph."""

    name = "ci"

    def slice_rule(self, rule: SecurityRule,
                   seeds: Optional[List[SourceSeed]] = None
                   ) -> List[TaintFlow]:
        adapter = RuleAdapter(self.sdg, rule)
        carriers = self.make_carrier_index(adapter)
        collector = FlowCollector(rule, self.budget)
        if seeds is None:
            seeds = enumerate_sources(self.sdg, rule)
        for seed in seeds:
            self._trace(seed, adapter, carriers, collector)
        return self._collect(collector)

    def _trace(self, seed: SourceSeed, adapter: RuleAdapter, carriers,
               collector: FlowCollector) -> None:
        source = seed.stmt.ref
        visited: Dict[Fact, Meta] = {}
        work: Deque[Tuple[Fact, Meta]] = deque()
        heap_transitions = 0

        def push(fact: Fact, meta: Meta) -> None:
            if fact not in visited:
                visited[fact] = meta
                work.append((fact, meta))

        if seed.call_lhs:
            push(Fact(source.method, seed.call_lhs), Meta())
        for arg in seed.ref_args:
            for site, display in carriers.sinks_for_object(source.method,
                                                           arg):
                collector.add(source, site.stmt, display, 1, None, True)
            for load in self.direct.loads_for_tainted_object(source.method,
                                                             arg):
                push(Fact(load.stmt.ref.method, load.lhs), Meta(1, None, 1))

        resilience = self.resilience
        while work:
            if resilience is not None:
                # Cooperative deadline / fault seam, one per BFS pop
                # (the CI analogue of the tabulation.step seam).
                resilience.check("ci.step", phase="taint")
            fact, meta = work.popleft()
            method, var = fact.method, fact.var
            for edge in self.sdg.succs_of(fact):
                if adapter.is_sanitizer_strop(edge.stmt):
                    continue
                if edge.dst == RET:
                    # Context-insensitive return: flow to EVERY caller.
                    for site in self.sdg.callers_of.get(method, []):
                        if site.call.lhs:
                            push(Fact(site.stmt.method, site.call.lhs),
                                 meta.extend())
                else:
                    push(Fact(method, edge.dst), meta.extend())
            for store in self.sdg.stores_using(method, var):
                hit_meta = meta.extend()
                for site, display in carriers.sinks_for_store(store):
                    collector.add(source, site.stmt, display,
                                  hit_meta.steps + 1, hit_meta.crossing,
                                  True, hit_meta.transitions)
                # The local counter only feeds the §6.2.1 budget; flows
                # record the witness-relative ``Meta.transitions``.
                limit = self.budget.max_heap_transitions
                if limit is not None and heap_transitions >= limit:
                    self.truncated = True
                    continue
                loads = self.direct.loads_for_store(store)
                if loads:
                    heap_transitions += 1
                for load in loads:
                    crossing = hit_meta.crossing
                    if store.stmt.in_application and \
                            not load.stmt.in_application:
                        crossing = store.stmt.ref
                    push(Fact(load.stmt.ref.method, load.lhs),
                         Meta(hit_meta.steps + 1, crossing,
                              hit_meta.transitions + 1))
            for site, positions in self.sdg.calls_using(method, var):
                vulnerable, sanitizer, sink_display = adapter.classify(site)
                if sink_display is not None:
                    if vulnerable == () or any(
                            p in vulnerable for p in positions if p >= 0):
                        collector.add(source, site.stmt, sink_display,
                                      meta.steps + 1, meta.crossing, False,
                                      meta.transitions)
                if sanitizer or sink_display is not None:
                    continue
                descended = False
                crossing_at_call = None
                for target in site.targets:
                    if site.stmt.in_application and \
                            not self._is_app(target):
                        crossing_at_call = site.stmt.ref
                    for actual, formal in self.sdg.bindings(site, target):
                        if actual != var:
                            continue
                        descended = True
                        push(Fact(target, formal),
                             meta.extend(crossing=crossing_at_call))
                if not descended and site.native_targets and \
                        site.call.lhs and var != site.call.receiver:
                    push(Fact(method, site.call.lhs), meta.extend())

    def _is_app(self, qname: str) -> bool:
        method = self.sdg.program.lookup_method(qname)
        return bool(method) and \
            self.sdg.program.is_application_method(method) and \
            not method.is_synthetic

"""Shared infrastructure for the three thin-slicing strategies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..bounds import Budget
from ..pointer.heapgraph import HeapGraph
from ..sdg.hsdg import DirectEdges
from ..sdg.nodes import Stmt, StmtRef
from ..sdg.noheap import CallSite, NoHeapSDG
from ..taint.carriers import CarrierIndex
from ..taint.flows import TaintFlow
from ..taint.rules import SecurityRule


@dataclass
class SourceSeed:
    """A taint origin: a source call statement."""

    stmt: Stmt
    call_lhs: Optional[str]
    # by-reference tainted argument variables (paper footnote 2)
    ref_args: List[str] = field(default_factory=list)

    @property
    def origin_id(self) -> str:
        return f"src:{self.stmt.ref.method}@{self.stmt.ref.iid}"


def enumerate_sources(sdg: NoHeapSDG,
                      rule: SecurityRule) -> List[SourceSeed]:
    """All source call statements for a rule, reachable in the call graph."""
    seeds: List[SourceSeed] = []
    for sites in sdg.call_sites.values():
        for site in sites:
            displays = list(site.native_targets) + \
                [t.rsplit("/", 1)[0] for t in site.targets]
            matched = None
            ref_args: List[str] = []
            for display in displays:
                if rule.source_match(site.call, display) is not None:
                    matched = display
                ref = rule.ref_source_match(site.call, display)
                if ref is not None:
                    for idx in rule.ref_sources.get(ref, ()):
                        if idx < len(site.call.args):
                            ref_args.append(site.call.args[idx])
            if matched is not None or ref_args:
                seeds.append(SourceSeed(site.stmt, site.call.lhs, ref_args))
    return seeds


class FlowCollector:
    """Accumulates deduplicated flows and applies the flow-length bound."""

    def __init__(self, rule: SecurityRule, budget: Budget) -> None:
        self.rule = rule
        self.budget = budget
        self._flows: Dict[Tuple, TaintFlow] = {}
        self.suppressed_by_length = 0

    def add(self, source: StmtRef, sink_stmt: Stmt, sink_display: str,
            length: int, crossing: Optional[StmtRef],
            via_carrier: bool, heap_transitions: int = 0) -> None:
        limit = self.budget.max_flow_length
        if limit is not None and length > limit:
            self.suppressed_by_length += 1
            return
        # The LCP is the last app→lib transition; the sink call itself is
        # that transition when it appears in application code.
        if sink_stmt.in_application:
            lcp = sink_stmt.ref
        else:
            lcp = crossing or source
        flow = TaintFlow(rule=self.rule.name, source=source,
                         sink=sink_stmt.ref, sink_display=sink_display,
                         lcp=lcp, length=length, via_carrier=via_carrier,
                         heap_transitions=heap_transitions)
        key = flow.key()
        existing = self._flows.get(key)
        # Prefer the shortest witness; break length ties by sort key so
        # the survivor never depends on traversal discovery order.
        if existing is None or flow.length < existing.length or (
                flow.length == existing.length
                and flow.sort_key() < existing.sort_key()):
            self._flows[key] = flow

    def flows(self) -> List[TaintFlow]:
        return sorted(self._flows.values(), key=TaintFlow.sort_key)


class Slicer:
    """Interface implemented by the hybrid / CS / CI strategies."""

    name = "abstract"

    def __init__(self, sdg: NoHeapSDG, direct: DirectEdges,
                 heap_graph: HeapGraph, budget: Budget,
                 resilience: Optional[object] = None,
                 carrier_cache: Optional[Dict] = None) -> None:
        self.sdg = sdg
        self.direct = direct
        self.heap_graph = heap_graph
        self.budget = budget
        # Cooperative deadline / fault-injection context
        # (repro.resilience); strategies hand it to their traversal
        # loops so a wall-clock deadline can cut a slice short.
        self.resilience = resilience
        self.truncated = False
        # Flows dropped by the §6.2.2 flow-length bound, summed over
        # every rule sliced (fed by _collect via each strategy).
        self.suppressed_by_length = 0
        # Optional rule-name → CarrierIndex cache, shared by the owner
        # (the taint engine) across slicer instances.  The index is a
        # whole-SDG scan that depends only on the rule and the nested
        # depth bound — both fixed per engine — and is read-only after
        # construction, so reuse across ladder retries and shards is
        # safe and saves the scan's cost per slice_rule call.
        self._carrier_cache = carrier_cache

    def slice_rule(self, rule: SecurityRule,
                   seeds: Optional[List[SourceSeed]] = None
                   ) -> List[TaintFlow]:
        """Slice one rule.  ``seeds`` restricts the traversal to the
        given source seeds (a shard of the rule's enumeration); ``None``
        means every seed :func:`enumerate_sources` finds.  Flow records
        carry only witness-relative metadata, so the union of disjoint
        seed shards equals the whole-rule slice."""
        raise NotImplementedError

    def _collect(self, collector: FlowCollector) -> List[TaintFlow]:
        """Drain a rule's collector, accumulating its suppression count
        onto the slicer."""
        self.suppressed_by_length += collector.suppressed_by_length
        return collector.flows()

    def make_carrier_index(self, adapter) -> CarrierIndex:
        cache = self._carrier_cache
        if cache is None:
            return CarrierIndex(self.sdg, self.direct, self.heap_graph,
                                adapter, self.budget.max_nested_depth)
        index = cache.get(adapter.rule.name)
        if index is None:
            index = CarrierIndex(self.sdg, self.direct, self.heap_graph,
                                 adapter, self.budget.max_nested_depth)
            cache[adapter.rule.name] = index
        return index

"""Hybrid thin slicing — the paper's primary contribution (§3.2).

Flow through locals: flow- and context-sensitive, via RHS tabulation
over the no-heap SDG.  Flow through the heap: flow-insensitive, via
direct store→load edges justified by the preliminary pointer analysis.
Successors are computed on demand: heap edges only materialize when a
tainted value actually reaches a store.

The traversal also applies the two taint-specific HSDG augmentations:

* taint-carrier edges store→sink (§4.1.1, via :class:`CarrierIndex`);
* by-reference sources that taint a parameter's object state.

The heap-transition budget (§6.2.1) bounds the number of store→load
expansions; exceeding it truncates the slice (``truncated`` flag).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..bounds import StateMeter
from ..sdg.nodes import Stmt, StmtRef
from ..sdg.noheap import StoreSite
from ..sdg.tabulation import Hit, Meta, RuleAdapter, Tabulator
from ..taint.flows import TaintFlow
from ..taint.rules import SecurityRule
from .base import FlowCollector, Slicer, SourceSeed, enumerate_sources


class HybridSlicer(Slicer):
    """Demand-driven traversal of the HSDG."""

    name = "hybrid"

    def __init__(self, *args, meter: Optional[StateMeter] = None,
                 skip_thread_edges: bool = False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.meter = meter
        self.skip_thread_edges = skip_thread_edges
        self.heap_transitions = 0

    # -- per-rule state (reset in slice_rule) --------------------------------

    def slice_rule(self, rule: SecurityRule,
                   seeds: Optional[List[SourceSeed]] = None
                   ) -> List[TaintFlow]:
        adapter = RuleAdapter(self.sdg, rule)
        carriers = self.make_carrier_index(adapter)
        collector = FlowCollector(rule, self.budget)
        sources: Dict[str, StmtRef] = {}
        seeded_loads: Set[Tuple[str, StmtRef]] = set()
        self.heap_transitions = 0

        def on_hit(origin_id: str, hit: Hit) -> None:
            source = sources[origin_id]
            if hit.kind == "sink":
                collector.add(source, hit.stmt, hit.sink_display,
                              hit.meta.steps, hit.meta.crossing, False,
                              hit.meta.transitions)
            elif hit.kind == "store":
                self._expand_store(tab, origin_id, hit, carriers,
                                   collector, sources, seeded_loads)

        tab = self._make_tabulator(adapter, on_hit)
        if seeds is None:
            seeds = enumerate_sources(self.sdg, rule)
        for seed in seeds:
            sources[seed.origin_id] = seed.stmt.ref
            if seed.call_lhs:
                tab.seed_origin(seed.origin_id, seed.stmt.ref.method,
                                seed.call_lhs)
            for arg in seed.ref_args:
                self._seed_ref_source(tab, seed, arg, carriers, collector,
                                      seeded_loads)
        tab.run()
        return self._collect(collector)

    def _make_tabulator(self, adapter: RuleAdapter, on_hit) -> Tabulator:
        """Factory seam: the summary engine (:mod:`repro.summaries`)
        substitutes a cache-sealing tabulator here; everything else in
        the traversal is shared."""
        return Tabulator(self.sdg, adapter, on_hit, meter=self.meter,
                         skip_thread_edges=self.skip_thread_edges,
                         resilience=self.resilience)

    # -- heap expansion ----------------------------------------------------------

    def _budget_left(self) -> bool:
        limit = self.budget.max_heap_transitions
        if limit is not None and self.heap_transitions >= limit:
            self.truncated = True
            return False
        return True

    def _expand_store(self, tab: Tabulator, origin_id: str, hit: Hit,
                      carriers, collector: FlowCollector,
                      sources: Dict[str, StmtRef],
                      seeded_loads: Set[Tuple[str, StmtRef]]) -> None:
        store = hit.store
        source = sources[origin_id]
        # Taint-carrier edges store→sink (§4.1.1), with the clone-precise
        # base resolved by hit replay when available.
        for site, display in carriers.sinks_for_store(store, hit.eff_base):
            collector.add(source, site.stmt, display,
                          hit.meta.steps + 1, hit.meta.crossing, True,
                          hit.meta.transitions)
        # Direct store→load edges.  ``self.heap_transitions`` stays a
        # slicer-global counter for the §6.2.1 budget; the value recorded
        # on flows is the witness-relative ``Meta.transitions``.
        if not self._budget_left():
            return
        loads = self.direct.loads_for_store(store, hit.eff_base)
        if loads:
            self.heap_transitions += 1
        for load in loads:
            token = (origin_id, load.stmt.ref)
            if token in seeded_loads:
                continue
            seeded_loads.add(token)
            crossing = hit.meta.crossing
            if store.stmt.in_application and not load.stmt.in_application:
                crossing = store.stmt.ref
            tab.seed_origin(origin_id, load.stmt.ref.method, load.lhs,
                            Meta(hit.meta.steps + 1, crossing,
                                 hit.meta.transitions + 1))

    def _seed_ref_source(self, tab: Tabulator, seed: SourceSeed, arg: str,
                         carriers, collector: FlowCollector,
                         seeded_loads: Set[Tuple[str, StmtRef]]) -> None:
        """A by-reference source taints the argument's object state."""
        method = seed.stmt.ref.method
        for site, display in carriers.sinks_for_object(method, arg):
            collector.add(seed.stmt.ref, site.stmt, display, 1, None, True)
        if not self._budget_left():
            return
        loads = self.direct.loads_for_tainted_object(method, arg)
        if loads:
            self.heap_transitions += 1
        for load in loads:
            token = (seed.origin_id, load.stmt.ref)
            if token in seeded_loads:
                continue
            seeded_loads.add(token)
            crossing = None
            if seed.stmt.in_application and not load.stmt.in_application:
                crossing = seed.stmt.ref
            tab.seed_origin(seed.origin_id, load.stmt.ref.method,
                            load.lhs, Meta(1, crossing, 1))

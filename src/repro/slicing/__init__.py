"""Thin-slicing strategies: hybrid (the contribution), CS and CI baselines."""

from .base import FlowCollector, Slicer, SourceSeed, enumerate_sources
from .ci import CISlicer
from .cs import CSExtendedSDG, CSSlicer
from .hybrid import HybridSlicer

__all__ = [
    "CISlicer", "CSExtendedSDG", "CSSlicer", "FlowCollector",
    "HybridSlicer", "Slicer", "SourceSeed", "enumerate_sources",
]

"""Context-sensitive (CS) thin slicing — the expensive baseline (§3.2, [33]).

CS thin slicing "tracks heap data dependencies via additional method
parameters and return values".  We realize this by extending the no-heap
SDG with *heap-channel facts*: a synthetic fact ``@f:<field>`` (or
``@s:<Class.field>`` for statics) per method, with

* a store ``base.f = v`` feeding one channel per abstract object its
  base may point to (``@f:f:<instance-key>``) — aliasing decides which
  loads each store can reach, as in the original CS algorithm;
* each channel feeding every load ``u = base.f`` whose base may point to
  that instance key;
* channels threaded through every call edge whose callee (transitively)
  accesses them — the "additional parameters and return values".

Every tainted fact, including channel facts, costs a state unit, and the
channel threading multiplies facts by the size of transitive mod/ref
sets — precisely "the scalability bottleneck" the paper describes.  The
state meter emulates the 1 GB heap: on the large benchmarks the run
aborts with :class:`BudgetExhausted`, which the harness reports the way
the paper reports CS's out-of-memory failures.

CS is also *unsound for multithreaded programs* (paper §3.2): heap state
threaded along the sequential call structure never crosses a
``Thread.start`` boundary, so flows into ``run()`` methods are missed —
reproducing the false negatives the paper observed on BlueBlog, I, and
SBM.  Taint-carrier detection (a code-modeling feature, orthogonal to
the slicing strategy) stays enabled.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..bounds import StateMeter
from ..callgraph.graph import CallGraph
from ..ir import Program
from ..sdg.nodes import Fact, Stmt, StmtRef
from ..sdg.noheap import ANY_FIELD, CallSite, LocalEdge, NoHeapSDG
from ..sdg.tabulation import Hit, Meta, RuleAdapter, Tabulator
from ..taint.flows import TaintFlow
from ..taint.rules import SecurityRule
from .base import FlowCollector, Slicer, SourceSeed, enumerate_sources


def _static_channel(fld: str) -> str:
    return f"@s:{fld}"


class CSExtendedSDG(NoHeapSDG):
    """No-heap SDG + heap-channel facts and their call-edge threading."""

    def __init__(self, program: Program, call_graph: CallGraph,
                 analysis) -> None:
        super().__init__(program, call_graph)
        self.analysis = analysis
        self._extra_succs: Dict[Fact, List[LocalEdge]] = {}
        self.modref: Dict[str, Set[str]] = {}
        self._pts_cache: Dict[Tuple[str, str], frozenset] = {}
        # The degradation ladder (repro.resilience) disables the heap
        # channels when falling back from CS to hybrid/CI, turning this
        # graph back into a plain no-heap SDG for the fallback slicer.
        self.channels_enabled = True
        self._build_channels()
        self._build_modref()

    def disable_channels(self) -> None:
        self.channels_enabled = False

    def _pts(self, method: str, var: str) -> frozenset:
        key = (method, var)
        cached = self._pts_cache.get(key)
        if cached is None:
            cached = frozenset(self.analysis.points_to_var(method, var))
            self._pts_cache[key] = cached
        return cached

    def _channels_for(self, method: str, base: str, fld: str) -> List[str]:
        """One channel per abstract object the base may point to."""
        return [f"@f:{fld}:{ikey}" for ikey in self._pts(method, base)]

    def _build_channels(self) -> None:
        self._gen: Dict[str, Set[str]] = {}
        for fld, stores in self.stores_by_field.items():
            for store in stores:
                if store.base is None:
                    channels = [_static_channel(fld)]
                else:
                    channels = self._channels_for(store.stmt.method,
                                                  store.base, fld)
                src = Fact(store.stmt.method, store.value)
                for ch in channels:
                    self._extra_succs.setdefault(src, []).append(
                        LocalEdge(ch, store.stmt))
                    self._gen.setdefault(store.stmt.method, set()).add(ch)
        for fld, loads in self.loads_by_field.items():
            if fld == ANY_FIELD:
                continue
            for load in loads:
                if load.base is None:
                    channels = [_static_channel(fld)]
                else:
                    channels = self._channels_for(load.stmt.method,
                                                  load.base, fld)
                for ch in channels:
                    src = Fact(load.stmt.method, ch)
                    self._extra_succs.setdefault(src, []).append(
                        LocalEdge(load.lhs, load.stmt))
                    self._gen.setdefault(load.stmt.method, set()).add(ch)

    def _build_modref(self) -> None:
        # Transitive field-access sets over the call graph, excluding
        # thread-spawn edges (the source of CS's unsoundness).
        methods = set(self.call_sites)
        for qname in methods:
            self.modref[qname] = set(self._gen.get(qname, ()))
        changed = True
        while changed:
            changed = False
            for qname in methods:
                acc = self.modref[qname]
                for site in self.call_sites.get(qname, []):
                    for target in site.targets:
                        if self._is_thread_edge(site, target):
                            continue
                        extra = self.modref.get(target)
                        if extra and not extra <= acc:
                            acc |= extra
                            changed = True

    @staticmethod
    def _is_thread_edge(site: CallSite, target: str) -> bool:
        return site.call.method_name == "start" and \
            target.endswith(".run/0")

    # -- overrides ------------------------------------------------------------

    def succs_of(self, fact: Fact) -> List[LocalEdge]:
        base = super().succs_of(fact)
        if not self.channels_enabled:
            return base
        extra = self._extra_succs.get(fact)
        return base + extra if extra else base

    def calls_using(self, method: str,
                    var: str) -> List[Tuple[CallSite, List[int]]]:
        if not var.startswith("@") or not self.channels_enabled:
            return super().calls_using(method, var)
        out: List[Tuple[CallSite, List[int]]] = []
        for site in self.call_sites.get(method, []):
            if any(var in self.modref.get(t, ()) for t in site.targets
                   if not self._is_thread_edge(site, t)):
                out.append((site, [-2]))
        return out

    def bindings(self, site: CallSite,
                 target: str) -> List[Tuple[str, str]]:
        pairs = super().bindings(site, target)
        if not self.channels_enabled or self._is_thread_edge(site, target):
            return pairs
        for ch in sorted(self.modref.get(target, ())):
            pairs.append((ch, ch))
        return pairs


class CSSlicer(Slicer):
    """Tabulation over the channel-extended SDG; no direct heap edges."""

    name = "cs"

    def __init__(self, *args, meter: Optional[StateMeter] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.meter = meter

    def slice_rule(self, rule: SecurityRule,
                   seeds: Optional[List["SourceSeed"]] = None
                   ) -> List[TaintFlow]:
        adapter = RuleAdapter(self.sdg, rule)
        carriers = self.make_carrier_index(adapter)
        collector = FlowCollector(rule, self.budget)
        sources: Dict[str, StmtRef] = {}

        def on_hit(origin_id: str, hit: Hit) -> None:
            source = sources[origin_id]
            if hit.kind == "sink":
                collector.add(source, hit.stmt, hit.sink_display,
                              hit.meta.steps, hit.meta.crossing, False,
                              hit.meta.transitions)
            elif hit.kind == "store":
                # Carrier edges only: heap value flow rides the channels.
                for site, display in carriers.sinks_for_store(
                        hit.store, hit.eff_base):
                    collector.add(source, site.stmt, display,
                                  hit.meta.steps + 1, hit.meta.crossing,
                                  True, hit.meta.transitions)

        tab = Tabulator(self.sdg, adapter, on_hit, meter=self.meter,
                        skip_thread_edges=True,
                        resilience=self.resilience)
        if seeds is None:
            seeds = enumerate_sources(self.sdg, rule)
        for seed in seeds:
            sources[seed.origin_id] = seed.stmt.ref
            if seed.call_lhs:
                tab.seed_origin(seed.origin_id, seed.stmt.ref.method,
                                seed.call_lhs)
            for arg in seed.ref_args:
                method = seed.stmt.ref.method
                for site, display in carriers.sinks_for_object(method,
                                                               arg):
                    collector.add(seed.stmt.ref, site.stmt, display, 1,
                                  None, True)
                # A by-reference source taints the object's whole state:
                # in CS terms, every heap channel of the argument's
                # abstract objects is tainted at the call's method.
                for ikey in self.direct.points_to(method, arg):
                    for fld in self.sdg.loads_by_field:
                        if fld == ANY_FIELD or fld.startswith("static:"):
                            continue
                        tab.seed_origin(seed.origin_id, method,
                                        f"@f:{fld}:{ikey}", Meta(1))
        tab.run()
        return self._collect(collector)

"""Security rules, the taint engine, flows, and carrier detection."""

from .carriers import CarrierIndex
from .engine import TaintEngine, TaintResult, make_slicer
from .flows import TaintFlow, canonical_flows
from .rules import (MethodSpec, RuleSet, SecurityRule, default_rules,
                    extended_rules)

__all__ = [
    "CarrierIndex", "MethodSpec", "RuleSet", "SecurityRule", "TaintEngine",
    "TaintFlow", "TaintResult", "canonical_flows", "default_rules",
    "extended_rules", "make_slicer",
]

"""The taint engine: runs every security rule through a slicing strategy.

Resilience (``repro.resilience``): when the engine is given a
:class:`~repro.resilience.ResilienceContext`, each rule is sliced behind
a cooperative seam check (``slicing.<strategy>``), and a
:class:`~repro.bounds.BudgetExhausted` or
:class:`~repro.resilience.DeadlineExceeded` raised mid-sweep walks the
degradation ladder (cs → hybrid → ci) instead of discarding the run:
flows from completed rules are kept, the tripped rule is re-sliced with
the cheaper strategy, and each step is recorded as a
:class:`~repro.resilience.Degradation`.  Without a context (or with the
ladder disabled) a budget trip is the paper's CS out-of-memory failure:
the run is marked failed — but flows from rules that completed are still
reported, never wiped.

Parallel sweep (``jobs > 1``): the sweep fans out over a **persistent
worker pool** (:mod:`repro.parallel`).  The engine plans a deterministic
shard list — per-(rule × entrypoint seed group) where splitting is
semantics-preserving, whole rules where a shared budget forbids it
(:func:`repro.parallel.shards.plan_shards`) — ships one serialized
engine snapshot to each worker at pool startup (any start method; see
:mod:`repro.parallel.snapshot`), then streams shard indices with
dynamic dispatch.  Each shard walks its *own* rung of the degradation
ladder against a fresh copy of the resilience context (a tripped shard
degrades that shard, not the run, and the behaviour is a function of
the shard — never of worker scheduling), and ships back a picklable
:class:`ShardOutcome`.  The parent collects outcomes **in shard order**
and folds them per rule, so the merged spans, metrics, degradations,
and flows do not depend on completion order.  ``jobs=1`` is the
unmodified serial reference path.  Either way the engine's flows leave
in :func:`~repro.taint.flows.canonical_flows` order, which is what
makes ``--jobs N`` and serial runs byte-identical
(``docs/performance.md``).
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bounds import Budget, BudgetExhausted, StateMeter
from ..obs import DISABLED, MetricsRegistry
from ..pointer.heapgraph import HeapGraph
from ..resilience import (Degradation, DeadlineExceeded, Diagnostic,
                          next_strategy, trigger_of)
from ..sdg.hsdg import DirectEdges
from ..sdg.noheap import NoHeapSDG
from ..slicing import CISlicer, CSSlicer, HybridSlicer, Slicer
from ..slicing.base import enumerate_sources
from .flows import TaintFlow, canonical_flows
from .rules import RuleSet

# Ladder rungs ordered precise -> cheap, for merging per-rule final
# strategies into the sweep-level one.  "summary" sits beside hybrid in
# precision (identical flows by construction) but above it in rank: its
# fallback rung *is* hybrid, so a degraded summary sweep reports the
# strategy it actually finished on.
_STRATEGY_RANK = {"cs": 0, "summary": 1, "hybrid": 2, "ci": 3}
_DEFAULT_RANK = _STRATEGY_RANK["hybrid"]


@dataclass
class TaintResult:
    """Flows found by one engine run (all rules).

    Timing note: the engine keeps no clock of its own — the taint
    phase's duration is the ``phase.taint`` tracer span (surfaced as
    ``TAJResult.times.taint``), the single timing source.
    """

    flows: List[TaintFlow] = field(default_factory=list)
    failed: bool = False              # hard budget failure (CS "OOM")
    failure: Optional[str] = None
    truncated: bool = False           # a soft bound trimmed the slice
    suppressed_by_length: int = 0
    state_units: int = 0              # abstract memory consumed (CS)
    # Degradation-ladder steps taken during the sweep (also recorded on
    # the ResilienceContext, and from there on TAJResult).
    degradations: List[Degradation] = field(default_factory=list)
    # Rules whose slice ran to completion (under whichever strategy was
    # current at the time); rules missing from this list were cut short.
    completed_rules: List[str] = field(default_factory=list)
    # Strategy in effect when the sweep ended (after any fallbacks).
    final_strategy: Optional[str] = None

    def by_rule(self) -> Dict[str, List[TaintFlow]]:
        out: Dict[str, List[TaintFlow]] = {}
        for flow in self.flows:
            out.setdefault(flow.rule, []).append(flow)
        return out


@dataclass
class ShardOutcome:
    """One worker's verdict on one shard — everything the parent needs
    to reconstruct what the serial sweep would have recorded.  Crosses
    the process boundary by pickle; interned keys re-intern on the way
    (``pointer.keys.__reduce__``)."""

    index: int                        # shard index: the merge order
    rule_index: int
    rule: str
    # Seed-group chunk (containing-method names), None = whole rule.
    groups: Optional[Tuple[str, ...]] = None
    flows: List[TaintFlow] = field(default_factory=list)
    completed: bool = False
    failed: bool = False
    failure: Optional[str] = None
    truncated: bool = False
    suppressed_by_length: int = 0
    state_units: int = 0
    final_strategy: str = "hybrid"
    degradations: List[Degradation] = field(default_factory=list)
    diagnostics: List[object] = field(default_factory=list)
    started: float = 0.0
    duration: float = 0.0
    metrics: Optional[MetricsRegistry] = None
    # Collapsed-stack samples from the worker's shard profiler
    # (repro.obs.profile.ProfileData), shipped home so serial and
    # parallel runs both end with one merged whole-pipeline profile.
    profile: Optional[object] = None
    # Pool bookkeeping: which worker process ran the shard, and the
    # one-time snapshot-deserialization cost if this was that worker's
    # first shard (0.0 on every later shard — the persistence signal).
    pid: int = 0
    init_seconds: float = 0.0
    # A forced (injected) deadline expiry happened in the worker; the
    # parent replays it into its own deadline at merge time so the
    # phases downstream of the sweep behave exactly as under serial.
    deadline_tripped: bool = False


def make_slicer(strategy: str, sdg: NoHeapSDG, direct: DirectEdges,
                heap_graph: HeapGraph, budget: Budget,
                meter: Optional[StateMeter] = None,
                resilience: Optional[object] = None,
                carrier_cache: Optional[Dict] = None,
                summary_backend: Optional[object] = None) -> Slicer:
    if strategy == "hybrid":
        return HybridSlicer(sdg, direct, heap_graph, budget, meter=meter,
                            resilience=resilience,
                            carrier_cache=carrier_cache)
    if strategy == "summary":
        from ..summaries import SummarySlicer
        return SummarySlicer(sdg, direct, heap_graph, budget, meter=meter,
                             resilience=resilience,
                             carrier_cache=carrier_cache,
                             backend=summary_backend)
    if strategy == "cs":
        return CSSlicer(sdg, direct, heap_graph, budget, meter=meter,
                        resilience=resilience,
                        carrier_cache=carrier_cache)
    if strategy == "ci":
        return CISlicer(sdg, direct, heap_graph, budget,
                        resilience=resilience,
                        carrier_cache=carrier_cache)
    raise ValueError(f"unknown slicing strategy {strategy!r}")


class TaintEngine:
    """Applies a rule set with one slicing strategy over one SDG."""

    def __init__(self, sdg: NoHeapSDG, direct: DirectEdges,
                 heap_graph: HeapGraph, rules: RuleSet, budget: Budget,
                 strategy: str = "hybrid", obs: Optional[object] = None,
                 resilience: Optional[object] = None,
                 jobs: int = 1, shard_grain: str = "auto",
                 start_method: Optional[str] = None,
                 shards_per_rule: Optional[int] = None,
                 supervision: Optional[object] = None,
                 checkpoint: Optional[object] = None,
                 summary_backend: Optional[object] = None,
                 pool_lease: Optional[object] = None) -> None:
        self.sdg = sdg
        self.direct = direct
        self.heap_graph = heap_graph
        self.rules = rules
        self.budget = budget
        self.strategy = strategy
        self.obs = DISABLED if obs is None else obs
        self.resilience = resilience
        self.jobs = max(1, jobs)
        # Parallel knobs (ignored when jobs == 1): the shard grain
        # ("auto" | "rule" | "entrypoint", see repro.parallel.shards)
        # and the multiprocessing start method (None = fork if
        # available, else spawn).
        self.shard_grain = shard_grain
        self.start_method = start_method
        # Fine-grain chunk bound override (None = the plan default);
        # reports are identical for every value.
        self.shards_per_rule = shards_per_rule
        # Crash-supervision policy (repro.parallel.SupervisionPolicy,
        # None = defaults) and the opt-in checkpoint journal
        # (repro.parallel.CheckpointJournal, None = off).
        self.supervision = supervision
        self.checkpoint = checkpoint
        # Summary-cache backend (repro.summaries.SummaryBackend), used
        # only by strategy == "summary"; prepared by the caller against
        # this SDG before run().
        self.summary_backend = summary_backend
        # Opt-in pool reuse (repro.parallel.PoolLease): amortizes worker
        # startup across runs/apps at the price of crash supervision —
        # see _run_leased.  Ignored when jobs == 1 or a checkpoint
        # journal is attached.
        self.pool_lease = pool_lease
        self._rule_list: List = []
        # Rule-name → CarrierIndex, shared across every slicer this
        # engine creates: the index is a whole-SDG scan, fixed per
        # (rule, nested-depth bound), and a persistent worker would
        # otherwise rebuild it for each of a rule's shards.
        self._carrier_cache: Dict = {}

    # -- strategy construction -----------------------------------------------

    def _make(self, strategy: str,
              meter: Optional[StateMeter]) -> Slicer:
        slicer = make_slicer(strategy, self.sdg, self.direct,
                             self.heap_graph, self.budget, meter,
                             resilience=self.resilience,
                             carrier_cache=self._carrier_cache,
                             summary_backend=self.summary_backend)
        modref = getattr(self.sdg, "modref", None)
        if strategy == "cs" and meter is not None and modref is not None:
            # CS thin slicing threads heap dependencies as additional
            # method parameters; each synthetic parameter costs state
            # up front — the paper's scalability bottleneck.
            meter.charge(sum(len(v) for v in modref.values()))
        return slicer

    def _recover(self, result, strategy: str,
                 exc: Exception) -> Tuple[str, Optional[Slicer]]:
        """One step of the degradation ladder, or abort the sweep.

        ``result`` is the record being built — the serial sweep's
        :class:`TaintResult` or a worker's :class:`ShardOutcome` (both
        carry ``degradations`` / ``failed`` / ``failure``).  Returns
        ``(strategy, slicer)``; a ``None`` slicer means the sweep (or
        the worker's rule) stops — flows collected so far are kept.
        """
        res = self.resilience
        fallback = None
        if res is not None and res.ladder:
            fallback = next_strategy(strategy)
        trigger = trigger_of(exc)
        if fallback is None:
            if res is not None and res.active:
                result.degradations.append(
                    res.degrade("taint", trigger, "abort", str(exc)))
            if not isinstance(exc, DeadlineExceeded):
                # The paper's CS OOM: a budget trip with no rung left.
                # A deadline abort is a *partial* result, not a failure.
                result.failed = True
                result.failure = str(exc)
            return strategy, None
        result.degradations.append(
            res.degrade("taint", trigger, fallback, str(exc)))
        if strategy == "cs" and hasattr(self.sdg, "disable_channels"):
            # Fallback slicers see a plain no-heap SDG: heap channels
            # (and their per-call threading) are a CS-only construct.
            self.sdg.disable_channels()
        # Fresh slicer, no meter: the fallback must not inherit the
        # exhausted state budget or it would trip again instantly.
        return fallback, self._make(fallback, None)

    # -- the sweep -----------------------------------------------------------

    def run(self) -> TaintResult:
        rules = self._rule_list = list(self.rules)
        if self.jobs > 1 and rules:
            result = self._run_parallel(rules)
        else:
            result = self._run_serial(rules)
        # Canonical flow order — shared by every jobs setting, and the
        # form everything downstream (grouping, JSON, differential
        # harness) consumes.
        result.flows = canonical_flows(result.flows)
        progress = getattr(self.obs, "progress", None)
        if progress is not None:
            progress.update(flows=len(result.flows))
            progress.clear("rule", "rules", "shards")
        metrics = self.obs.metrics
        metrics.inc("taint.rules_consulted", len(rules))
        metrics.inc("taint.flows", len(result.flows))
        metrics.inc("taint.suppressed_by_length",
                    result.suppressed_by_length)
        metrics.gauge("taint.state_units", result.state_units)
        if result.degradations:
            metrics.inc("taint.degradations", len(result.degradations))
        if result.failed:
            metrics.inc("taint.budget_failures")
        if self.summary_backend is not None:
            self.summary_backend.publish(metrics)
        return result

    # -- serial reference path ------------------------------------------------

    def _run_serial(self, rules: List) -> TaintResult:
        obs = self.obs
        tracer = obs.tracer
        audit = obs.audit
        res = self.resilience
        result = TaintResult()
        strategy = self.strategy
        meter = StateMeter(self.budget.max_state_units)
        try:
            slicer: Optional[Slicer] = self._make(strategy, meter)
        except (BudgetExhausted, DeadlineExceeded) as exc:
            # CS's upfront channel charge can exhaust the budget before
            # the first rule runs.
            strategy, slicer = self._recover(result, strategy, exc)
        progress = getattr(obs, "progress", None)
        index = 0
        while slicer is not None and index < len(rules):
            rule = rules[index]
            if progress is not None:
                progress.update(rule=rule.name,
                                rules=f"{index + 1}/{len(rules)}")
            try:
                if res is not None:
                    res.check(f"slicing.{strategy}", phase="taint")
                with tracer.span("taint.rule", rule=rule.name,
                                 strategy=strategy) as span:
                    flows = slicer.slice_rule(rule)
                    span.set(flows=len(flows))
            except (BudgetExhausted, DeadlineExceeded) as exc:
                result.truncated = result.truncated or slicer.truncated
                result.suppressed_by_length += slicer.suppressed_by_length
                strategy, slicer = self._recover(result, strategy, exc)
                continue  # retry the same rule on the fallback rung
            except Exception as exc:
                if res is None or not res.active:
                    raise
                # Quarantine the rule: record a diagnostic, keep going.
                res.diagnostics.absorb("taint", exc, rule=rule.name)
                index += 1
                continue
            obs.metrics.record_time("taint.rule_seconds", span.duration)
            obs.metrics.record_value("taint.rule_flows", len(flows))
            if audit.enabled:
                # The witness chain starts at the rule's enumerated
                # source seeds; each surviving flow records what was
                # consulted on its way into the report.
                seeds = len(enumerate_sources(self.sdg, rule))
                audit.record_rule(rule, seeds, len(flows))
                for flow in flows:
                    audit.record_flow(flow, rule, seeds)
            result.flows.extend(flows)
            result.completed_rules.append(rule.name)
            index += 1
        if slicer is not None:
            result.truncated = result.truncated or slicer.truncated
            result.suppressed_by_length += slicer.suppressed_by_length
        result.state_units = meter.used
        result.final_strategy = strategy
        return result

    # -- parallel sweep --------------------------------------------------------

    def _slice_shard(self, shard, rule, seeds: Optional[List] = None,
                     collect_metrics: bool = False) -> ShardOutcome:
        """Worker body: slice one shard behind its own degradation
        ladder.  Runs inside a pool worker against the snapshot-built
        engine; every mutation it makes (its resilience copy, a CS
        SDG's disabled channels) is reset by the worker context before
        the next shard, so everything the parent must know rides home
        on the returned outcome."""
        res = self.resilience
        out = ShardOutcome(index=shard.index, rule_index=shard.rule_index,
                           rule=rule.name, groups=shard.groups,
                           final_strategy=self.strategy)
        if collect_metrics:
            out.metrics = MetricsRegistry()
        strategy = self.strategy
        meter = StateMeter(self.budget.max_state_units)
        out.started = time.perf_counter()
        try:
            slicer: Optional[Slicer] = self._make(strategy, meter)
        except (BudgetExhausted, DeadlineExceeded) as exc:
            strategy, slicer = self._recover(out, strategy, exc)
        while slicer is not None:
            try:
                if res is not None:
                    res.check(f"slicing.{strategy}", phase="taint")
                flows = slicer.slice_rule(rule, seeds=seeds)
            except (BudgetExhausted, DeadlineExceeded) as exc:
                out.truncated = out.truncated or slicer.truncated
                out.suppressed_by_length += slicer.suppressed_by_length
                strategy, slicer = self._recover(out, strategy, exc)
                continue  # same shard, cheaper rung
            except Exception as exc:
                if res is None or not res.active:
                    raise
                out.diagnostics.append(
                    res.diagnostics.absorb("taint", exc, rule=rule.name))
                slicer = None
                break
            out.flows = flows
            out.completed = True
            break
        out.duration = time.perf_counter() - out.started
        if slicer is not None:
            out.truncated = out.truncated or slicer.truncated
            out.suppressed_by_length += slicer.suppressed_by_length
        out.state_units = meter.used
        out.final_strategy = strategy
        if out.metrics is not None:
            out.metrics.record_time("taint.pool.shard_seconds",
                                    out.duration)
        return out

    def _seeds_for_shard(self, shard, rule) -> Optional[List]:
        """A fine shard's seed subset, parent-side (mirrors
        ``WorkerContext._seeds_for``)."""
        if shard.groups is None:
            return None
        by_method: Dict = {}
        for seed in enumerate_sources(self.sdg, rule):
            by_method.setdefault(seed.stmt.ref.method, []).append(seed)
        return [seed for method in shard.groups
                for seed in by_method.get(method, [])]

    def _run_shard_in_parent(self, shard, rule) -> ShardOutcome:
        """Run one shard in the parent exactly as a worker would:
        fresh resilience copy, pristine channel state, same slicing
        body — so a quarantined or checkpoint-remainder shard produces
        the byte-identical outcome a healthy worker would have."""
        saved_res = self.resilience
        saved_channels = getattr(self.sdg, "channels_enabled", None)
        self.resilience = (copy.deepcopy(saved_res)
                           if saved_res is not None else None)
        try:
            out = self._slice_shard(shard, rule,
                                    self._seeds_for_shard(shard, rule),
                                    self.obs.metrics.enabled)
            shard_res = self.resilience
        finally:
            self.resilience = saved_res
            if saved_channels is not None:
                self.sdg.channels_enabled = saved_channels
        if (shard_res is not None and shard_res.deadline is not None
                and shard_res.deadline.tripped):
            out.deadline_tripped = True
        out.pid = os.getpid()
        return out

    def _run_quarantined(self, shards, rules: List, indices: List[int],
                         attempts: Dict[int, int],
                         journal) -> Dict[int, ShardOutcome]:
        """Serially re-run poison shards in the parent.

        A shard the supervisor gave up on gets one parent-side attempt
        under the ordinary degradation ladder.  A scripted crash fault
        that still matches this attempt stands for "deterministically
        kills its host process" — executing it would kill the analysis,
        so the shard is abandoned instead: a ``crash`` degradation plus
        a diagnostic ride the outcome into the merge, the rule's flows
        are dropped, and the run completes as ``partial-crash``."""
        res = self.resilience
        injector = res.injector if res is not None else None
        outs: Dict[int, ShardOutcome] = {}
        for index in sorted(indices):
            shard = shards[index]
            attempt = attempts.get(index, 0)
            fault = None
            if injector is not None:
                fault = injector.process_fault("worker.shard", index,
                                               attempt)
            if fault is not None and fault.action != "corrupt-outcome":
                # corrupt-outcome is transport-level; there is no
                # transport in the parent, so the shard runs normally.
                out = ShardOutcome(index=shard.index,
                                   rule_index=shard.rule_index,
                                   rule=shard.rule,
                                   groups=shard.groups,
                                   final_strategy=self.strategy)
                detail = (fault.message
                          or f"shard {index} ({shard.rule}) kills "
                             f"its worker on every attempt "
                             f"({fault.action}, {attempt} attempts)")
                out.degradations.append(Degradation(
                    "taint", "crash", "abandon-shard", detail))
                out.diagnostics.append(Diagnostic(
                    phase="taint", kind="worker-crash", message=detail,
                    detail={"shard": index, "rule": shard.rule,
                            "action": fault.action,
                            "attempts": attempt}))
                outs[index] = out
                continue
            out = self._run_shard_in_parent(shard,
                                            rules[shard.rule_index])
            if journal is not None:
                journal.record(out)
            outs[index] = out
        return outs

    def _run_parallel(self, rules: List) -> TaintResult:
        from ..parallel import (EngineSnapshot, PoolSupervisor,
                                SnapshotError, plan_fingerprint,
                                plan_shards)
        obs = self.obs
        tracer = obs.tracer
        metrics = obs.metrics
        plan_kwargs = {}
        if self.shards_per_rule is not None:
            plan_kwargs["max_shards_per_rule"] = self.shards_per_rule
        shards = plan_shards(self.sdg, rules, self.strategy, self.budget,
                             self.shard_grain, **plan_kwargs)
        if len(shards) < 2:
            # Nothing to distribute; the pool would be pure overhead.
            return self._run_serial(rules)
        if self.pool_lease is not None and self.checkpoint is None:
            return self._run_leased(rules, shards)
        outcomes: List[Optional[ShardOutcome]] = [None] * len(shards)
        journal = self.checkpoint
        if journal is not None:
            # Outcomes journaled by a compatible interrupted run are
            # banked as-is; only the remainder executes.
            for index, out in journal.resume(plan_fingerprint(shards),
                                             len(shards)).items():
                outcomes[index] = out
            metrics.inc("taint.pool.shards_resumed", journal.resumed)
        pending = [index for index, out in enumerate(outcomes)
                   if out is None]
        if journal is not None:
            metrics.inc("taint.pool.shards_executed", len(pending))
        progress = getattr(obs, "progress", None)
        if progress is not None:
            progress.update(
                shards=f"{len(shards) - len(pending)}/{len(shards)}")
        if len(pending) < 2:
            # Zero or one shard left after resume: the pool would be
            # pure overhead — run the remainder in the parent.  The
            # worker_inits counter stays 0, the resume proof.
            metrics.inc("taint.pool.worker_inits", 0)
            metrics.gauge("taint.pool.shards", len(shards))
            for index in pending:
                outcomes[index] = self._run_shard_in_parent(
                    shards[index], rules[shards[index].rule_index])
                if journal is not None:
                    journal.record(outcomes[index])
            merge_started = time.perf_counter()
            result = self._merge_outcomes(rules, outcomes)
            metrics.gauge("taint.pool.merge_seconds",
                          time.perf_counter() - merge_started)
            return result
        jobs = min(self.jobs, len(pending))
        res = self.resilience
        deadline_seconds = (res.deadline.seconds
                            if res is not None and res.deadline is not None
                            else None)
        start_span = tracer.span("taint.pool.start", jobs=jobs,
                                 shards=len(shards))
        try:
            # One-time cost, paid once per run: snapshot serialization
            # plus worker startup.  Every shard after this reuses the
            # same workers and the same shipped state.
            with start_span as span:
                snapshot = EngineSnapshot(
                    self, shards, collect_metrics=metrics.enabled)
                supervisor = PoolSupervisor(
                    snapshot, jobs, len(shards),
                    policy=self.supervision,
                    start_method=self.start_method,
                    deadline_seconds=deadline_seconds,
                    tracer=tracer)
                span.set(start_method=supervisor.start_method,
                         snapshot_bytes=snapshot.nbytes)
        except SnapshotError:
            # Unshippable state (foreign solver family, injected
            # clock): the serial reference path always works.  The
            # aborted span keeps its auto-recorded ``error`` attr.
            start_span.set(fallback="serial")
            return self._run_serial(rules)
        profiler = getattr(obs, "profiler", None)
        on_outcome = None
        if progress is not None:
            resumed = len(shards) - len(pending)
            on_outcome = (lambda done, total:
                          progress.update(
                              shards=f"{done + resumed}/{total}"))
        on_result = journal.record if journal is not None else None
        try:
            if profiler is not None and profiler.running:
                # Workers profile their own shards; the parent would
                # otherwise attribute its pool-wait frames to the taint
                # phase and double-count the shard work.
                profiler.pause()
            fresh, quarantined = supervisor.run(
                pending, on_outcome=on_outcome, on_result=on_result)
        finally:
            if profiler is not None and profiler.running:
                profiler.resume()
        for index, out in enumerate(fresh):
            if out is not None:
                outcomes[index] = out
        if quarantined:
            # Poison shards: one serial attempt each in the parent,
            # under the degradation ladder (or an honest abandonment —
            # see _run_quarantined).
            for index, out in self._run_quarantined(
                    shards, rules, quarantined, supervisor.attempts,
                    journal).items():
                outcomes[index] = out
        merge_started = time.perf_counter()
        result = self._merge_outcomes(rules, outcomes)
        stats = supervisor.stats
        metrics.gauge("taint.parallel_jobs", jobs)
        metrics.gauge("taint.pool.workers", jobs)
        metrics.gauge("taint.pool.shards", len(shards))
        metrics.gauge("taint.pool.snapshot_bytes", snapshot.nbytes)
        metrics.gauge("taint.pool.snapshot_build_seconds",
                      snapshot.build_seconds)
        metrics.gauge("taint.pool.startup_seconds",
                      snapshot.build_seconds + supervisor.startup_seconds)
        metrics.inc("taint.pool.worker_inits",
                    sum(1 for out in fresh
                        if out is not None and out.init_seconds > 0))
        # Supervision counters appear only when supervision intervened,
        # so an untroubled run's metrics are unchanged.
        if stats.retries:
            metrics.inc("taint.pool.retries", stats.retries)
        if stats.restarts:
            metrics.inc("taint.pool.restarts", stats.restarts)
        if stats.hangs:
            metrics.inc("taint.pool.hangs", stats.hangs)
        if stats.corrupt_outcomes:
            metrics.inc("taint.pool.corrupt_outcomes",
                        stats.corrupt_outcomes)
        if stats.quarantined:
            metrics.inc("taint.pool.quarantined", len(stats.quarantined))
        metrics.gauge("taint.pool.merge_seconds",
                      time.perf_counter() - merge_started)
        return result

    def _run_leased(self, rules: List, shards) -> TaintResult:
        """The sweep over a leased — reused — worker pool.

        The trade against the supervised path: no heartbeat array and
        no :class:`~repro.parallel.PoolSupervisor`, so a worker fault
        aborts the run instead of being retried or quarantined.  In
        exchange the pool outlives the run — the next app on the same
        :class:`~repro.parallel.PoolLease` pays a snapshot *reload*
        into the live workers instead of process startup.  Bench and
        batch-sweep territory (``benchmarks/parallel_scaling.py``), not
        crash-resilient production runs.  A run that does break the
        pool heals lazily: the lease's next ``acquire`` fails the
        reload rendezvous and rebuilds.
        """
        from ..parallel import EngineSnapshot, SnapshotError
        obs = self.obs
        tracer = obs.tracer
        metrics = obs.metrics
        lease = self.pool_lease
        start_span = tracer.span("taint.pool.start", jobs=lease.jobs,
                                 shards=len(shards))
        try:
            with start_span as span:
                snapshot = EngineSnapshot(
                    self, shards, collect_metrics=metrics.enabled)
                builds_before = lease.builds
                pool = lease.acquire(snapshot)
                reused = lease.builds == builds_before
                span.set(start_method=pool.start_method,
                         snapshot_bytes=snapshot.nbytes,
                         pool_reused=reused)
        except SnapshotError:
            start_span.set(fallback="serial")
            return self._run_serial(rules)
        progress = getattr(obs, "progress", None)
        on_outcome = None
        if progress is not None:
            on_outcome = (lambda done, total:
                          progress.update(shards=f"{done}/{total}"))
        profiler = getattr(obs, "profiler", None)
        try:
            if profiler is not None and profiler.running:
                profiler.pause()
            outcomes = pool.run_shards(len(shards),
                                       on_outcome=on_outcome)
        finally:
            if profiler is not None and profiler.running:
                profiler.resume()
        merge_started = time.perf_counter()
        result = self._merge_outcomes(rules, outcomes)
        metrics.gauge("taint.parallel_jobs", lease.jobs)
        metrics.gauge("taint.pool.workers", lease.jobs)
        metrics.gauge("taint.pool.shards", len(shards))
        metrics.gauge("taint.pool.snapshot_bytes", snapshot.nbytes)
        metrics.gauge("taint.pool.snapshot_build_seconds",
                      snapshot.build_seconds)
        # On reuse the startup cost is the reload rendezvous, not
        # process creation — the amortization this path exists for.
        metrics.gauge("taint.pool.startup_seconds",
                      snapshot.build_seconds +
                      (pool.reload_seconds if reused
                       else pool.startup_seconds))
        metrics.gauge("taint.pool.reused", 1.0 if reused else 0.0)
        metrics.inc("taint.pool.worker_inits",
                    sum(1 for out in outcomes
                        if out is not None and out.init_seconds > 0))
        metrics.gauge("taint.pool.merge_seconds",
                      time.perf_counter() - merge_started)
        return result

    def _merge_outcomes(self, rules: List,
                        outcomes: List[ShardOutcome]) -> TaintResult:
        """Fold shard outcomes into one :class:`TaintResult`.

        ``outcomes`` arrives in shard order (the pool re-sorts after
        dynamic dispatch), and shards are planned rule-major, so the
        fold is per rule, in rule order — completion order never
        reaches the result, the metrics registry, or the resilience
        context.

        Failure semantics mirror the serial sweep: the first rule with
        a hard-failed shard (budget trip, no rung left) marks the run
        failed, and flows from later rules are dropped — serial would
        never have sliced them.  Their spans and metrics are still
        merged (the work happened), but their resilience records are
        not replayed.
        """
        obs = self.obs
        tracer = obs.tracer
        audit = obs.audit
        profiler = getattr(obs, "profiler", None)
        res = self.resilience
        result = TaintResult()
        result.final_strategy = self.strategy
        final_rank = _STRATEGY_RANK.get(self.strategy, _DEFAULT_RANK)
        by_rule: Dict[int, List[ShardOutcome]] = {}
        for out in outcomes:
            by_rule.setdefault(out.rule_index, []).append(out)
        for rule_index, rule in enumerate(rules):
            outs = by_rule.get(rule_index, [])
            if not outs:
                continue
            # One pre-timed span and one timing observation per rule —
            # the serial sweep's shape — aggregated over the rule's
            # shards: earliest start, summed busy time.
            started = min(out.started for out in outs)
            duration = sum(out.duration for out in outs)
            rule_rank = max(
                _STRATEGY_RANK.get(out.final_strategy, _DEFAULT_RANK)
                for out in outs)
            rule_strategy = next(
                (out.final_strategy for out in outs
                 if _STRATEGY_RANK.get(out.final_strategy,
                                       _DEFAULT_RANK) == rule_rank),
                self.strategy)
            # Within a rule the serial collector emits sort-key order;
            # concatenated shard flows are re-sorted to match.
            flows = [flow for out in outs for flow in out.flows]
            flows.sort(key=TaintFlow.sort_key)
            tracer.add_completed(
                "taint.rule", started, duration,
                {"rule": rule.name, "strategy": rule_strategy,
                 "flows": len(flows), "parallel": True,
                 "shards": len(outs)})
            for out in outs:
                if out.metrics is not None:
                    obs.metrics.merge(out.metrics)
                if out.profile is not None and profiler is not None:
                    profiler.absorb(out.profile)
            obs.metrics.record_time("taint.rule_seconds", duration)
            obs.metrics.record_value("taint.rule_flows", len(flows))
            if result.failed:
                continue
            for out in outs:
                if res is not None:
                    # Replay the shard's resilience record: the
                    # worker-side context copy died with the shard.
                    res.absorb_child(out.degradations, out.diagnostics)
                    if out.deadline_tripped and res.deadline is not None:
                        res.deadline.trip()
                result.degradations.extend(out.degradations)
                result.truncated = result.truncated or out.truncated
                result.suppressed_by_length += out.suppressed_by_length
            # Per-shard meters are independent; the sweep's abstract
            # memory high-water mark is the worst single rule.
            result.state_units = max(
                result.state_units,
                sum(out.state_units for out in outs))
            if rule_rank > final_rank:
                final_rank = rule_rank
                result.final_strategy = rule_strategy
            failed = next((out for out in outs if out.failed), None)
            if failed is not None:
                result.failed = True
                result.failure = failed.failure
                continue
            if not all(out.completed for out in outs):
                continue
            if audit.enabled:
                seeds = len(enumerate_sources(self.sdg, rule))
                audit.record_rule(rule, seeds, len(flows))
                for flow in flows:
                    audit.record_flow(flow, rule, seeds)
            result.flows.extend(flows)
            result.completed_rules.append(rule.name)
        return result

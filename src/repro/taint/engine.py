"""The taint engine: runs every security rule through a slicing strategy.

Resilience (``repro.resilience``): when the engine is given a
:class:`~repro.resilience.ResilienceContext`, each rule is sliced behind
a cooperative seam check (``slicing.<strategy>``), and a
:class:`~repro.bounds.BudgetExhausted` or
:class:`~repro.resilience.DeadlineExceeded` raised mid-sweep walks the
degradation ladder (cs → hybrid → ci) instead of discarding the run:
flows from completed rules are kept, the tripped rule is re-sliced with
the cheaper strategy, and each step is recorded as a
:class:`~repro.resilience.Degradation`.  Without a context (or with the
ladder disabled) a budget trip is the paper's CS out-of-memory failure:
the run is marked failed — but flows from rules that completed are still
reported, never wiped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bounds import Budget, BudgetExhausted, StateMeter
from ..obs import DISABLED
from ..pointer.heapgraph import HeapGraph
from ..resilience import (Degradation, DeadlineExceeded, next_strategy,
                          trigger_of)
from ..sdg.hsdg import DirectEdges
from ..sdg.noheap import NoHeapSDG
from ..slicing import CISlicer, CSSlicer, HybridSlicer, Slicer
from ..slicing.base import enumerate_sources
from .flows import TaintFlow
from .rules import RuleSet


@dataclass
class TaintResult:
    """Flows found by one engine run (all rules).

    Timing note: the engine keeps no clock of its own — the taint
    phase's duration is the ``phase.taint`` tracer span (surfaced as
    ``TAJResult.times.taint``), the single timing source.
    """

    flows: List[TaintFlow] = field(default_factory=list)
    failed: bool = False              # hard budget failure (CS "OOM")
    failure: Optional[str] = None
    truncated: bool = False           # a soft bound trimmed the slice
    suppressed_by_length: int = 0
    state_units: int = 0              # abstract memory consumed (CS)
    # Degradation-ladder steps taken during the sweep (also recorded on
    # the ResilienceContext, and from there on TAJResult).
    degradations: List[Degradation] = field(default_factory=list)
    # Rules whose slice ran to completion (under whichever strategy was
    # current at the time); rules missing from this list were cut short.
    completed_rules: List[str] = field(default_factory=list)
    # Strategy in effect when the sweep ended (after any fallbacks).
    final_strategy: Optional[str] = None

    def by_rule(self) -> Dict[str, List[TaintFlow]]:
        out: Dict[str, List[TaintFlow]] = {}
        for flow in self.flows:
            out.setdefault(flow.rule, []).append(flow)
        return out


def make_slicer(strategy: str, sdg: NoHeapSDG, direct: DirectEdges,
                heap_graph: HeapGraph, budget: Budget,
                meter: Optional[StateMeter] = None,
                resilience: Optional[object] = None) -> Slicer:
    if strategy == "hybrid":
        return HybridSlicer(sdg, direct, heap_graph, budget, meter=meter,
                            resilience=resilience)
    if strategy == "cs":
        return CSSlicer(sdg, direct, heap_graph, budget, meter=meter,
                        resilience=resilience)
    if strategy == "ci":
        return CISlicer(sdg, direct, heap_graph, budget,
                        resilience=resilience)
    raise ValueError(f"unknown slicing strategy {strategy!r}")


class TaintEngine:
    """Applies a rule set with one slicing strategy over one SDG."""

    def __init__(self, sdg: NoHeapSDG, direct: DirectEdges,
                 heap_graph: HeapGraph, rules: RuleSet, budget: Budget,
                 strategy: str = "hybrid", obs: Optional[object] = None,
                 resilience: Optional[object] = None) -> None:
        self.sdg = sdg
        self.direct = direct
        self.heap_graph = heap_graph
        self.rules = rules
        self.budget = budget
        self.strategy = strategy
        self.obs = DISABLED if obs is None else obs
        self.resilience = resilience

    # -- strategy construction -----------------------------------------------

    def _make(self, strategy: str,
              meter: Optional[StateMeter]) -> Slicer:
        slicer = make_slicer(strategy, self.sdg, self.direct,
                             self.heap_graph, self.budget, meter,
                             resilience=self.resilience)
        modref = getattr(self.sdg, "modref", None)
        if strategy == "cs" and meter is not None and modref is not None:
            # CS thin slicing threads heap dependencies as additional
            # method parameters; each synthetic parameter costs state
            # up front — the paper's scalability bottleneck.
            meter.charge(sum(len(v) for v in modref.values()))
        return slicer

    def _recover(self, result: TaintResult, strategy: str,
                 exc: Exception) -> Tuple[str, Optional[Slicer]]:
        """One step of the degradation ladder, or abort the sweep.

        Returns ``(strategy, slicer)``; a ``None`` slicer means the
        sweep stops (flows collected so far are kept either way).
        """
        res = self.resilience
        fallback = None
        if res is not None and res.ladder:
            fallback = next_strategy(strategy)
        trigger = trigger_of(exc)
        if fallback is None:
            if res is not None and res.active:
                result.degradations.append(
                    res.degrade("taint", trigger, "abort", str(exc)))
            if not isinstance(exc, DeadlineExceeded):
                # The paper's CS OOM: a budget trip with no rung left.
                # A deadline abort is a *partial* result, not a failure.
                result.failed = True
                result.failure = str(exc)
            return strategy, None
        result.degradations.append(
            res.degrade("taint", trigger, fallback, str(exc)))
        if strategy == "cs" and hasattr(self.sdg, "disable_channels"):
            # Fallback slicers see a plain no-heap SDG: heap channels
            # (and their per-call threading) are a CS-only construct.
            self.sdg.disable_channels()
        # Fresh slicer, no meter: the fallback must not inherit the
        # exhausted state budget or it would trip again instantly.
        return fallback, self._make(fallback, None)

    # -- the sweep -----------------------------------------------------------

    def run(self) -> TaintResult:
        obs = self.obs
        tracer = obs.tracer
        audit = obs.audit
        res = self.resilience
        result = TaintResult()
        strategy = self.strategy
        meter = StateMeter(self.budget.max_state_units)
        try:
            slicer: Optional[Slicer] = self._make(strategy, meter)
        except (BudgetExhausted, DeadlineExceeded) as exc:
            # CS's upfront channel charge can exhaust the budget before
            # the first rule runs.
            strategy, slicer = self._recover(result, strategy, exc)
        rules = list(self.rules)
        index = 0
        while slicer is not None and index < len(rules):
            rule = rules[index]
            try:
                if res is not None:
                    res.check(f"slicing.{strategy}", phase="taint")
                with tracer.span("taint.rule", rule=rule.name,
                                 strategy=strategy) as span:
                    flows = slicer.slice_rule(rule)
                    span.set(flows=len(flows))
            except (BudgetExhausted, DeadlineExceeded) as exc:
                result.truncated = result.truncated or slicer.truncated
                result.suppressed_by_length += slicer.suppressed_by_length
                strategy, slicer = self._recover(result, strategy, exc)
                continue  # retry the same rule on the fallback rung
            except Exception as exc:
                if res is None or not res.active:
                    raise
                # Quarantine the rule: record a diagnostic, keep going.
                res.diagnostics.absorb("taint", exc, rule=rule.name)
                index += 1
                continue
            if audit.enabled:
                # The witness chain starts at the rule's enumerated
                # source seeds; each surviving flow records what was
                # consulted on its way into the report.
                seeds = len(enumerate_sources(self.sdg, rule))
                audit.record_rule(rule, seeds, len(flows))
                for flow in flows:
                    audit.record_flow(flow, rule, seeds)
            result.flows.extend(flows)
            result.completed_rules.append(rule.name)
            index += 1
        if slicer is not None:
            result.truncated = result.truncated or slicer.truncated
            result.suppressed_by_length += slicer.suppressed_by_length
        result.state_units = meter.used
        result.final_strategy = strategy
        metrics = obs.metrics
        metrics.inc("taint.rules_consulted", len(rules))
        metrics.inc("taint.flows", len(result.flows))
        metrics.inc("taint.suppressed_by_length",
                    result.suppressed_by_length)
        metrics.gauge("taint.state_units", result.state_units)
        if result.degradations:
            metrics.inc("taint.degradations", len(result.degradations))
        if result.failed:
            metrics.inc("taint.budget_failures")
        return result

"""The taint engine: runs every security rule through a slicing strategy.

Resilience (``repro.resilience``): when the engine is given a
:class:`~repro.resilience.ResilienceContext`, each rule is sliced behind
a cooperative seam check (``slicing.<strategy>``), and a
:class:`~repro.bounds.BudgetExhausted` or
:class:`~repro.resilience.DeadlineExceeded` raised mid-sweep walks the
degradation ladder (cs → hybrid → ci) instead of discarding the run:
flows from completed rules are kept, the tripped rule is re-sliced with
the cheaper strategy, and each step is recorded as a
:class:`~repro.resilience.Degradation`.  Without a context (or with the
ladder disabled) a budget trip is the paper's CS out-of-memory failure:
the run is marked failed — but flows from rules that completed are still
reported, never wiped.

Parallel sweep (``jobs > 1``): the per-rule sweep is embarrassingly
parallel — each rule slices the same read-only SDG — so it fans out over
a fork-based :class:`~concurrent.futures.ProcessPoolExecutor`.  Workers
inherit the SDG, direct edges, and heap graph through fork (nothing is
pickled on the way in); each worker slices one rule, walks its *own*
rung of the ladder on a budget/deadline trip (a tripped worker degrades
that rule, not the run), and ships back a picklable
:class:`_RuleOutcome` — flows, degradations, diagnostics, a metrics
registry, and span timings — which the parent merges **in rule order**,
so the merged result does not depend on worker scheduling.  ``jobs=1``
is the unmodified serial reference path.  Either way the engine's flows
leave in :func:`~repro.taint.flows.canonical_flows` order, which is what
makes ``--jobs N`` and serial runs byte-identical
(``docs/performance.md``).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bounds import Budget, BudgetExhausted, StateMeter
from ..obs import DISABLED, MetricsRegistry
from ..pointer.heapgraph import HeapGraph
from ..resilience import (Degradation, DeadlineExceeded, next_strategy,
                          trigger_of)
from ..sdg.hsdg import DirectEdges
from ..sdg.noheap import NoHeapSDG
from ..slicing import CISlicer, CSSlicer, HybridSlicer, Slicer
from ..slicing.base import enumerate_sources
from .flows import TaintFlow, canonical_flows
from .rules import RuleSet

# Ladder rungs ordered precise -> cheap, for merging per-rule final
# strategies into the sweep-level one.
_STRATEGY_RANK = {"cs": 0, "hybrid": 1, "ci": 2}


@dataclass
class TaintResult:
    """Flows found by one engine run (all rules).

    Timing note: the engine keeps no clock of its own — the taint
    phase's duration is the ``phase.taint`` tracer span (surfaced as
    ``TAJResult.times.taint``), the single timing source.
    """

    flows: List[TaintFlow] = field(default_factory=list)
    failed: bool = False              # hard budget failure (CS "OOM")
    failure: Optional[str] = None
    truncated: bool = False           # a soft bound trimmed the slice
    suppressed_by_length: int = 0
    state_units: int = 0              # abstract memory consumed (CS)
    # Degradation-ladder steps taken during the sweep (also recorded on
    # the ResilienceContext, and from there on TAJResult).
    degradations: List[Degradation] = field(default_factory=list)
    # Rules whose slice ran to completion (under whichever strategy was
    # current at the time); rules missing from this list were cut short.
    completed_rules: List[str] = field(default_factory=list)
    # Strategy in effect when the sweep ended (after any fallbacks).
    final_strategy: Optional[str] = None

    def by_rule(self) -> Dict[str, List[TaintFlow]]:
        out: Dict[str, List[TaintFlow]] = {}
        for flow in self.flows:
            out.setdefault(flow.rule, []).append(flow)
        return out


@dataclass
class _RuleOutcome:
    """One worker's verdict on one rule — everything the parent needs
    to reconstruct what the serial sweep would have recorded.  Crosses
    the process boundary by pickle; interned keys re-intern on the way
    (``pointer.keys.__reduce__``)."""

    index: int
    rule: str
    flows: List[TaintFlow] = field(default_factory=list)
    completed: bool = False
    failed: bool = False
    failure: Optional[str] = None
    truncated: bool = False
    suppressed_by_length: int = 0
    state_units: int = 0
    final_strategy: str = "hybrid"
    degradations: List[Degradation] = field(default_factory=list)
    diagnostics: List[object] = field(default_factory=list)
    started: float = 0.0
    duration: float = 0.0
    metrics: Optional[MetricsRegistry] = None


# Fork-shared worker state: the parent parks the engine here right
# before the pool forks, so children reach the SDG through inherited
# memory instead of pickling it per task.
_WORKER_ENGINE: Optional["TaintEngine"] = None


def _worker_slice(index: int) -> _RuleOutcome:
    return _WORKER_ENGINE._slice_one(index)


def make_slicer(strategy: str, sdg: NoHeapSDG, direct: DirectEdges,
                heap_graph: HeapGraph, budget: Budget,
                meter: Optional[StateMeter] = None,
                resilience: Optional[object] = None) -> Slicer:
    if strategy == "hybrid":
        return HybridSlicer(sdg, direct, heap_graph, budget, meter=meter,
                            resilience=resilience)
    if strategy == "cs":
        return CSSlicer(sdg, direct, heap_graph, budget, meter=meter,
                        resilience=resilience)
    if strategy == "ci":
        return CISlicer(sdg, direct, heap_graph, budget,
                        resilience=resilience)
    raise ValueError(f"unknown slicing strategy {strategy!r}")


class TaintEngine:
    """Applies a rule set with one slicing strategy over one SDG."""

    def __init__(self, sdg: NoHeapSDG, direct: DirectEdges,
                 heap_graph: HeapGraph, rules: RuleSet, budget: Budget,
                 strategy: str = "hybrid", obs: Optional[object] = None,
                 resilience: Optional[object] = None,
                 jobs: int = 1) -> None:
        self.sdg = sdg
        self.direct = direct
        self.heap_graph = heap_graph
        self.rules = rules
        self.budget = budget
        self.strategy = strategy
        self.obs = DISABLED if obs is None else obs
        self.resilience = resilience
        self.jobs = max(1, jobs)
        self._rule_list: List = []

    # -- strategy construction -----------------------------------------------

    def _make(self, strategy: str,
              meter: Optional[StateMeter]) -> Slicer:
        slicer = make_slicer(strategy, self.sdg, self.direct,
                             self.heap_graph, self.budget, meter,
                             resilience=self.resilience)
        modref = getattr(self.sdg, "modref", None)
        if strategy == "cs" and meter is not None and modref is not None:
            # CS thin slicing threads heap dependencies as additional
            # method parameters; each synthetic parameter costs state
            # up front — the paper's scalability bottleneck.
            meter.charge(sum(len(v) for v in modref.values()))
        return slicer

    def _recover(self, result, strategy: str,
                 exc: Exception) -> Tuple[str, Optional[Slicer]]:
        """One step of the degradation ladder, or abort the sweep.

        ``result`` is the record being built — the serial sweep's
        :class:`TaintResult` or a worker's :class:`_RuleOutcome` (both
        carry ``degradations`` / ``failed`` / ``failure``).  Returns
        ``(strategy, slicer)``; a ``None`` slicer means the sweep (or
        the worker's rule) stops — flows collected so far are kept.
        """
        res = self.resilience
        fallback = None
        if res is not None and res.ladder:
            fallback = next_strategy(strategy)
        trigger = trigger_of(exc)
        if fallback is None:
            if res is not None and res.active:
                result.degradations.append(
                    res.degrade("taint", trigger, "abort", str(exc)))
            if not isinstance(exc, DeadlineExceeded):
                # The paper's CS OOM: a budget trip with no rung left.
                # A deadline abort is a *partial* result, not a failure.
                result.failed = True
                result.failure = str(exc)
            return strategy, None
        result.degradations.append(
            res.degrade("taint", trigger, fallback, str(exc)))
        if strategy == "cs" and hasattr(self.sdg, "disable_channels"):
            # Fallback slicers see a plain no-heap SDG: heap channels
            # (and their per-call threading) are a CS-only construct.
            self.sdg.disable_channels()
        # Fresh slicer, no meter: the fallback must not inherit the
        # exhausted state budget or it would trip again instantly.
        return fallback, self._make(fallback, None)

    # -- the sweep -----------------------------------------------------------

    def run(self) -> TaintResult:
        rules = self._rule_list = list(self.rules)
        if self.jobs > 1 and len(rules) > 1 \
                and "fork" in mp.get_all_start_methods():
            result = self._run_parallel(rules)
        else:
            result = self._run_serial(rules)
        # Canonical flow order — shared by every jobs setting, and the
        # form everything downstream (grouping, JSON, differential
        # harness) consumes.
        result.flows = canonical_flows(result.flows)
        metrics = self.obs.metrics
        metrics.inc("taint.rules_consulted", len(rules))
        metrics.inc("taint.flows", len(result.flows))
        metrics.inc("taint.suppressed_by_length",
                    result.suppressed_by_length)
        metrics.gauge("taint.state_units", result.state_units)
        if result.degradations:
            metrics.inc("taint.degradations", len(result.degradations))
        if result.failed:
            metrics.inc("taint.budget_failures")
        return result

    # -- serial reference path ------------------------------------------------

    def _run_serial(self, rules: List) -> TaintResult:
        obs = self.obs
        tracer = obs.tracer
        audit = obs.audit
        res = self.resilience
        result = TaintResult()
        strategy = self.strategy
        meter = StateMeter(self.budget.max_state_units)
        try:
            slicer: Optional[Slicer] = self._make(strategy, meter)
        except (BudgetExhausted, DeadlineExceeded) as exc:
            # CS's upfront channel charge can exhaust the budget before
            # the first rule runs.
            strategy, slicer = self._recover(result, strategy, exc)
        index = 0
        while slicer is not None and index < len(rules):
            rule = rules[index]
            try:
                if res is not None:
                    res.check(f"slicing.{strategy}", phase="taint")
                with tracer.span("taint.rule", rule=rule.name,
                                 strategy=strategy) as span:
                    flows = slicer.slice_rule(rule)
                    span.set(flows=len(flows))
            except (BudgetExhausted, DeadlineExceeded) as exc:
                result.truncated = result.truncated or slicer.truncated
                result.suppressed_by_length += slicer.suppressed_by_length
                strategy, slicer = self._recover(result, strategy, exc)
                continue  # retry the same rule on the fallback rung
            except Exception as exc:
                if res is None or not res.active:
                    raise
                # Quarantine the rule: record a diagnostic, keep going.
                res.diagnostics.absorb("taint", exc, rule=rule.name)
                index += 1
                continue
            obs.metrics.record_time("taint.rule_seconds", span.duration)
            obs.metrics.record_value("taint.rule_flows", len(flows))
            if audit.enabled:
                # The witness chain starts at the rule's enumerated
                # source seeds; each surviving flow records what was
                # consulted on its way into the report.
                seeds = len(enumerate_sources(self.sdg, rule))
                audit.record_rule(rule, seeds, len(flows))
                for flow in flows:
                    audit.record_flow(flow, rule, seeds)
            result.flows.extend(flows)
            result.completed_rules.append(rule.name)
            index += 1
        if slicer is not None:
            result.truncated = result.truncated or slicer.truncated
            result.suppressed_by_length += slicer.suppressed_by_length
        result.state_units = meter.used
        result.final_strategy = strategy
        return result

    # -- parallel sweep --------------------------------------------------------

    def _slice_one(self, index: int) -> _RuleOutcome:
        """Worker body: slice one rule behind its own degradation
        ladder.  Runs in a forked child; every mutation it makes (its
        resilience context, a CS SDG's disabled channels) is invisible
        to the parent, so everything the parent must know rides home on
        the returned outcome."""
        rule = self._rule_list[index]
        res = self.resilience
        out = _RuleOutcome(index=index, rule=rule.name,
                           final_strategy=self.strategy)
        if self.obs.metrics.enabled:
            out.metrics = MetricsRegistry()
        strategy = self.strategy
        meter = StateMeter(self.budget.max_state_units)
        out.started = time.perf_counter()
        try:
            slicer: Optional[Slicer] = self._make(strategy, meter)
        except (BudgetExhausted, DeadlineExceeded) as exc:
            strategy, slicer = self._recover(out, strategy, exc)
        while slicer is not None:
            try:
                if res is not None:
                    res.check(f"slicing.{strategy}", phase="taint")
                flows = slicer.slice_rule(rule)
            except (BudgetExhausted, DeadlineExceeded) as exc:
                out.truncated = out.truncated or slicer.truncated
                out.suppressed_by_length += slicer.suppressed_by_length
                strategy, slicer = self._recover(out, strategy, exc)
                continue  # same rule, cheaper rung
            except Exception as exc:
                if res is None or not res.active:
                    raise
                out.diagnostics.append(
                    res.diagnostics.absorb("taint", exc, rule=rule.name))
                slicer = None
                break
            out.flows = flows
            out.completed = True
            break
        out.duration = time.perf_counter() - out.started
        if slicer is not None:
            out.truncated = out.truncated or slicer.truncated
            out.suppressed_by_length += slicer.suppressed_by_length
        out.state_units = meter.used
        out.final_strategy = strategy
        if out.metrics is not None:
            out.metrics.record_time("taint.rule_seconds", out.duration)
            out.metrics.record_value("taint.rule_flows", len(out.flows))
        return out

    def _run_parallel(self, rules: List) -> TaintResult:
        global _WORKER_ENGINE
        jobs = min(self.jobs, len(rules))
        ctx = mp.get_context("fork")
        _WORKER_ENGINE = self
        try:
            with ProcessPoolExecutor(max_workers=jobs,
                                     mp_context=ctx) as pool:
                outcomes = list(pool.map(_worker_slice,
                                         range(len(rules))))
        finally:
            _WORKER_ENGINE = None
        return self._merge_outcomes(rules, outcomes, jobs)

    def _merge_outcomes(self, rules: List, outcomes: List[_RuleOutcome],
                        jobs: int) -> TaintResult:
        """Fold worker outcomes into one :class:`TaintResult`, in rule
        order — worker scheduling never reaches the result.

        Failure semantics mirror the serial sweep: the first rule whose
        worker hard-failed (budget trip, no rung left) marks the run
        failed, and flows from later rules are dropped — serial would
        never have sliced them.  Their spans and metrics are still
        merged (the work happened), but their resilience records are
        not replayed.
        """
        obs = self.obs
        tracer = obs.tracer
        audit = obs.audit
        res = self.resilience
        result = TaintResult()
        result.final_strategy = self.strategy
        final_rank = _STRATEGY_RANK.get(self.strategy, 1)
        for out in outcomes:
            tracer.add_completed(
                "taint.rule", out.started, out.duration,
                {"rule": out.rule, "strategy": out.final_strategy,
                 "flows": len(out.flows), "parallel": True})
            if out.metrics is not None:
                obs.metrics.merge(out.metrics)
            if result.failed:
                continue
            if res is not None:
                # Replay the worker's resilience record: the child's
                # context mutations died with the fork.
                res.absorb_child(out.degradations, out.diagnostics)
            result.degradations.extend(out.degradations)
            result.truncated = result.truncated or out.truncated
            result.suppressed_by_length += out.suppressed_by_length
            # Per-worker meters are independent; the sweep's abstract
            # memory high-water mark is the worst single rule.
            result.state_units = max(result.state_units, out.state_units)
            rank = _STRATEGY_RANK.get(out.final_strategy, 1)
            if rank > final_rank:
                final_rank = rank
                result.final_strategy = out.final_strategy
            if out.failed:
                result.failed = True
                result.failure = out.failure
                continue
            if not out.completed:
                continue
            if audit.enabled:
                rule = rules[out.index]
                seeds = len(enumerate_sources(self.sdg, rule))
                audit.record_rule(rule, seeds, len(out.flows))
                for flow in out.flows:
                    audit.record_flow(flow, rule, seeds)
            result.flows.extend(out.flows)
            result.completed_rules.append(out.rule)
        obs.metrics.gauge("taint.parallel_jobs", jobs)
        return result

"""The taint engine: runs every security rule through a slicing strategy."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bounds import Budget, BudgetExhausted, StateMeter
from ..obs import DISABLED
from ..pointer.heapgraph import HeapGraph
from ..sdg.hsdg import DirectEdges
from ..sdg.noheap import NoHeapSDG
from ..slicing import CISlicer, CSSlicer, HybridSlicer, Slicer
from ..slicing.base import enumerate_sources
from .flows import TaintFlow
from .rules import RuleSet


@dataclass
class TaintResult:
    """Flows found by one engine run (all rules)."""

    flows: List[TaintFlow] = field(default_factory=list)
    failed: bool = False              # hard budget failure (CS "OOM")
    failure: Optional[str] = None
    truncated: bool = False           # a soft bound trimmed the slice
    suppressed_by_length: int = 0
    state_units: int = 0              # abstract memory consumed (CS)
    seconds: float = 0.0

    def by_rule(self) -> Dict[str, List[TaintFlow]]:
        out: Dict[str, List[TaintFlow]] = {}
        for flow in self.flows:
            out.setdefault(flow.rule, []).append(flow)
        return out


def make_slicer(strategy: str, sdg: NoHeapSDG, direct: DirectEdges,
                heap_graph: HeapGraph, budget: Budget,
                meter: Optional[StateMeter] = None) -> Slicer:
    if strategy == "hybrid":
        return HybridSlicer(sdg, direct, heap_graph, budget, meter=meter)
    if strategy == "cs":
        return CSSlicer(sdg, direct, heap_graph, budget, meter=meter)
    if strategy == "ci":
        return CISlicer(sdg, direct, heap_graph, budget)
    raise ValueError(f"unknown slicing strategy {strategy!r}")


class TaintEngine:
    """Applies a rule set with one slicing strategy over one SDG."""

    def __init__(self, sdg: NoHeapSDG, direct: DirectEdges,
                 heap_graph: HeapGraph, rules: RuleSet, budget: Budget,
                 strategy: str = "hybrid", obs: Optional[object] = None
                 ) -> None:
        self.sdg = sdg
        self.direct = direct
        self.heap_graph = heap_graph
        self.rules = rules
        self.budget = budget
        self.strategy = strategy
        self.obs = DISABLED if obs is None else obs

    def run(self) -> TaintResult:
        started = time.perf_counter()
        obs = self.obs
        tracer = obs.tracer
        audit = obs.audit
        result = TaintResult()
        meter = StateMeter(self.budget.max_state_units)
        slicer = make_slicer(self.strategy, self.sdg, self.direct,
                             self.heap_graph, self.budget, meter)
        try:
            modref = getattr(self.sdg, "modref", None)
            if self.strategy == "cs" and modref is not None:
                # CS thin slicing threads heap dependencies as additional
                # method parameters; each synthetic parameter costs state
                # up front — the paper's scalability bottleneck.
                meter.charge(sum(len(v) for v in modref.values()))
            for rule in self.rules:
                with tracer.span("taint.rule", rule=rule.name) as span:
                    flows = slicer.slice_rule(rule)
                    span.set(flows=len(flows))
                if audit.enabled:
                    # The witness chain starts at the rule's enumerated
                    # source seeds; each surviving flow records what was
                    # consulted on its way into the report.
                    seeds = len(enumerate_sources(self.sdg, rule))
                    audit.record_rule(rule, seeds, len(flows))
                    for flow in flows:
                        audit.record_flow(flow, rule, seeds)
                result.flows.extend(flows)
        except BudgetExhausted as exc:
            result.failed = True
            result.failure = str(exc)
            result.flows = []
        result.state_units = meter.used
        result.truncated = slicer.truncated
        result.suppressed_by_length = slicer.suppressed_by_length
        result.seconds = time.perf_counter() - started
        metrics = obs.metrics
        metrics.inc("taint.rules_consulted", len(self.rules))
        metrics.inc("taint.flows", len(result.flows))
        metrics.inc("taint.suppressed_by_length",
                    result.suppressed_by_length)
        metrics.gauge("taint.state_units", result.state_units)
        if result.failed:
            metrics.inc("taint.budget_failures")
        return result

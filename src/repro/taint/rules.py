"""Security rules: (sources, sanitizers, sinks) triples (paper §3).

A *source* is a method whose return value is tainted (or, per the
paper's footnote on ``RandomAccessFile.readFully``, a method that taints
the internal state of a by-reference parameter).  A *sanitizer* endorses
its input.  A *sink* is a method with taint-vulnerable parameters.  Each
rule carries an issue type and a remediation action — the latter drives
the LCP-based grouping of §5 (flows are equivalent only if they require
the same remediation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir import Call, StringOp


@dataclass(frozen=True)
class MethodSpec:
    """Identifies library methods by ``Class.name`` display name."""

    display: str

    @property
    def class_name(self) -> str:
        return self.display.rsplit(".", 1)[0]

    @property
    def method_name(self) -> str:
        return self.display.rsplit(".", 1)[-1]


@dataclass
class SecurityRule:
    """One vulnerability class: its sources, sanitizers, and sinks."""

    name: str                      # e.g. "XSS"
    sources: Set[str] = field(default_factory=set)
    sanitizers: Set[str] = field(default_factory=set)
    # sink display name -> vulnerable parameter indices (None = all).
    sinks: Dict[str, Optional[Tuple[int, ...]]] = field(default_factory=dict)
    # display name -> by-reference-tainted parameter indices (footnote 2).
    ref_sources: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    remediation: str = ""          # remediation action label (for §5)

    def _match(self, call: Call, names: Iterable[str],
               resolved: Optional[str]) -> Optional[str]:
        if resolved is not None and resolved in names:
            return resolved
        syntactic = call.target_id()
        if syntactic in names:
            return syntactic
        if not call.class_name:
            # Unresolved virtual call: match on the bare method name.
            for display in names:
                if display.rsplit(".", 1)[-1] == call.method_name:
                    return display
        return None

    def source_match(self, call: Call,
                     resolved: Optional[str] = None) -> Optional[str]:
        return self._match(call, self.sources, resolved)

    def sink_match(self, call: Call,
                   resolved: Optional[str] = None) -> Optional[str]:
        return self._match(call, self.sinks, resolved)

    def sanitizer_match_call(self, call: Call,
                             resolved: Optional[str] = None) -> Optional[str]:
        return self._match(call, self.sanitizers, resolved)

    def sanitizer_match_strop(self, strop: StringOp) -> Optional[str]:
        return strop.method if strop.method in self.sanitizers else None

    def ref_source_match(self, call: Call,
                         resolved: Optional[str] = None) -> Optional[str]:
        return self._match(call, self.ref_sources, resolved)

    def sink_params(self, display: str) -> Optional[Tuple[int, ...]]:
        return self.sinks.get(display)


class RuleSet:
    """A collection of security rules plus convenience indexes."""

    def __init__(self, rules: Iterable[SecurityRule]) -> None:
        self.rules: List[SecurityRule] = list(rules)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def by_name(self, name: str) -> SecurityRule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(name)

    def all_source_methods(self) -> Set[str]:
        out: Set[str] = set()
        for rule in self.rules:
            out |= rule.sources
            out |= set(rule.ref_sources)
        return out

    def all_sink_methods(self) -> Set[str]:
        out: Set[str] = set()
        for rule in self.rules:
            out |= set(rule.sinks)
        return out

    def all_sanitizer_methods(self) -> Set[str]:
        out: Set[str] = set()
        for rule in self.rules:
            out |= rule.sanitizers
        return out

    def taint_api_methods(self) -> Set[str]:
        """Everything deserving 1-call-string context (paper §3.1)."""
        return (self.all_source_methods() | self.all_sink_methods() |
                self.all_sanitizer_methods())


# -- default rules for the modeled library -----------------------------------

_REQUEST_SOURCES = {
    "HttpServletRequest.getParameter",
    "HttpServletRequest.getHeader",
    "HttpServletRequest.getQueryString",
    "HttpServletRequest.getRequestURI",
    "Cookie.getValue",
    "BufferedReader.readLine",
    "ActionForm.taintAll",      # synthesized Struts form population
    "TaintSupport.source",      # generic source used by synthetic models
}

_RENDER_SINKS: Dict[str, Optional[Tuple[int, ...]]] = {
    "PrintWriter.println": (0,),
    "PrintWriter.print": (0,),
    "PrintWriter.write": (0,),
    "JspWriter.print": (0,),
    "JspWriter.println": (0,),
}


def default_rules() -> RuleSet:
    """The rule set covering the paper's four attack vectors (§1)."""
    xss = SecurityRule(
        name="XSS",
        sources=set(_REQUEST_SOURCES),
        sanitizers={
            "URLEncoder.encode",
            "Encoder.encodeForHTML",
            "StringEscapeUtils.escapeHtml",
        },
        sinks=dict(_RENDER_SINKS),
        ref_sources={"RandomAccessFile.readFully": (0,)},
        remediation="html-encode-output",
    )
    sqli = SecurityRule(
        name="SQLI",
        sources=set(_REQUEST_SOURCES),
        sanitizers={
            "StringEscapeUtils.escapeSql",
            "Codec.encodeForSQL",
        },
        sinks={
            "Statement.executeQuery": (0,),
            "Statement.executeUpdate": (0,),
            "Statement.execute": (0,),
            "Connection.prepareStatement": (0,),
        },
        remediation="parameterize-query",
    )
    mfe = SecurityRule(
        name="MALICIOUS_FILE",
        sources=set(_REQUEST_SOURCES),
        sanitizers={
            "FilenameUtils.normalize",
            "PathValidator.validate",
        },
        sinks={
            "File.<init>": (0,),
            "FileReader.<init>": (0,),
            "FileWriter.<init>": (0,),
            "FileInputStream.<init>": (0,),
            "Runtime.exec": (0,),
        },
        remediation="validate-file-path",
    )
    leak = SecurityRule(
        name="INFO_LEAK",
        sources={
            "Exception.getMessage",
            "Exception.toString",
            "System.getProperty",
        },
        sanitizers={"MessageSanitizer.scrub"},
        sinks=dict(_RENDER_SINKS),
        remediation="scrub-error-message",
    )
    return RuleSet([xss, sqli, mfe, leak])


def extended_rules() -> RuleSet:
    """The default rules plus the coverage extensions the paper lists as
    future work (§9: "we plan to extend our coverage of security
    rules"): open redirects and HTTP response splitting."""
    base = default_rules()
    redirect = SecurityRule(
        name="OPEN_REDIRECT",
        sources=set(_REQUEST_SOURCES),
        sanitizers={"URLValidator.validate"},
        sinks={"HttpServletResponse.sendRedirect": (0,)},
        remediation="validate-redirect-target",
    )
    splitting = SecurityRule(
        name="RESPONSE_SPLITTING",
        sources=set(_REQUEST_SOURCES),
        sanitizers={"HeaderSanitizer.strip"},
        sinks={"HttpServletResponse.addHeader": (1,)},
        remediation="strip-crlf-from-header",
    )
    return RuleSet(list(base.rules) + [redirect, splitting])

"""Tainted-flow records produced by the engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sdg.nodes import StmtRef


@dataclass(frozen=True)
class TaintFlow:
    """One source→sink flow with no sanitizer on the path.

    ``lcp`` is the library call point (paper §5): the last statement on
    the flow where data crosses from application code into library code.
    ``length`` is the traversed-edge count (the §6.2.2 flow-length
    metric).  ``via_carrier`` marks flows completed by taint-carrier
    detection (§4.1.1) rather than by direct value flow into the sink.
    """

    rule: str
    source: StmtRef
    sink: StmtRef
    sink_display: str
    lcp: StmtRef
    length: int
    via_carrier: bool = False
    heap_transitions: int = 0

    def key(self):
        """Identity for deduplication: one report per source/sink pair
        per rule."""
        return (self.rule, self.source, self.sink)

    def describe(self) -> str:
        kind = "carrier" if self.via_carrier else "direct"
        return (f"[{self.rule}] {self.source} -> {self.sink} "
                f"({self.sink_display}, {kind}, len={self.length}, "
                f"lcp={self.lcp})")

"""Tainted-flow records produced by the engine.

:func:`canonical_flows` defines the engine's output order.  Everything
downstream of the per-rule sweep — report grouping, JSON payloads, the
differential harness — consumes flows in this canonical form, which is
what makes serial and parallel (``--jobs N``) runs byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..sdg.nodes import StmtRef


@dataclass(frozen=True)
class TaintFlow:
    """One source→sink flow with no sanitizer on the path.

    ``lcp`` is the library call point (paper §5): the last statement on
    the flow where data crosses from application code into library code.
    ``length`` is the traversed-edge count (the §6.2.2 flow-length
    metric).  ``via_carrier`` marks flows completed by taint-carrier
    detection (§4.1.1) rather than by direct value flow into the sink.
    """

    rule: str
    source: StmtRef
    sink: StmtRef
    sink_display: str
    lcp: StmtRef
    length: int
    via_carrier: bool = False
    heap_transitions: int = 0

    def key(self):
        """Identity for deduplication: one report per source/sink pair
        per rule."""
        return (self.rule, self.source, self.sink)

    def sort_key(self) -> Tuple:
        """Total order over flows that is stable across processes.

        Built from rendered strings and plain ints only — never from
        identity hashes or interning order — so any two runs (serial,
        parallel, different worker layouts) sort the same flow set into
        the same sequence.
        """
        return (self.rule, str(self.source), str(self.sink),
                self.sink_display, str(self.lcp), self.length,
                self.via_carrier, self.heap_transitions)

    def describe(self) -> str:
        kind = "carrier" if self.via_carrier else "direct"
        return (f"[{self.rule}] {self.source} -> {self.sink} "
                f"({self.sink_display}, {kind}, len={self.length}, "
                f"lcp={self.lcp})")


def canonical_flows(flows: Iterable[TaintFlow]) -> List[TaintFlow]:
    """Dedupe by :meth:`TaintFlow.key` and sort by
    :meth:`TaintFlow.sort_key`.

    When duplicates disagree on the path-dependent attributes (length,
    lcp, carrier-ness — possible when several slices reach the same
    source/sink pair), the sort-key-smallest witness is kept, so the
    survivor does not depend on discovery order either.
    """
    best: dict = {}
    for flow in flows:
        key = flow.key()
        kept = best.get(key)
        if kept is None or flow.sort_key() < kept.sort_key():
            best[key] = flow
    return sorted(best.values(), key=TaintFlow.sort_key)

"""Taint-carrier detection (paper §4.1.1).

A *taint carrier* is an object whose internal state holds tainted data.
Passing a carrier to a sink is reported even though the tainted value
itself is not the argument.  The algorithm is the paper's, verbatim:

1. for a store ``st``, let ``I_st`` be the points-to set of its base;
2. for a sink invocation ``sk``, let ``I*_sk`` be the instance keys
   reachable in the heap graph from the points-to sets of its sensitive
   actual parameters (bounded by the nested-taint depth of §6.2.3);
3. synthesize the HSDG edge ``st → sk`` iff ``I_st ∩ I*_sk ≠ ∅``.

The index below precomputes, per rule, the map from instance key to the
sink statements whose ``I*`` contains it, so step 3 is a set lookup at
each tainted store."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..pointer.heapgraph import HeapGraph
from ..pointer.keys import InstanceKey
from ..sdg.hsdg import DirectEdges
from ..sdg.noheap import CallSite, NoHeapSDG, StoreSite
from ..sdg.tabulation import RuleAdapter


class CarrierIndex:
    """Per-rule instance-key → sink-sites index."""

    def __init__(self, sdg: NoHeapSDG, direct: DirectEdges,
                 heap_graph: HeapGraph, adapter: RuleAdapter,
                 max_nested_depth: Optional[int]) -> None:
        self.sdg = sdg
        self.direct = direct
        self.heap_graph = heap_graph
        self.adapter = adapter
        self.max_nested_depth = max_nested_depth
        self._by_ikey: Dict[InstanceKey, List[Tuple[CallSite, str]]] = {}
        self._build()

    def _build(self) -> None:
        for sites in self.sdg.call_sites.values():
            for site in sites:
                vulnerable, _, sink_display = self.adapter.classify(site)
                if sink_display is None:
                    continue
                roots: Set[InstanceKey] = set()
                for idx, arg in enumerate(site.call.args):
                    if vulnerable == () or idx in (vulnerable or ()):
                        roots |= self.direct.points_to(site.stmt.method,
                                                       arg)
                if not roots:
                    continue
                reachable = self.heap_graph.reachable(
                    roots, self.max_nested_depth)
                for ikey in reachable:
                    self._by_ikey.setdefault(ikey, []).append(
                        (site, sink_display))

    def sinks_for_store(self, store: StoreSite,
                        eff_base: Optional[Tuple[str, str]] = None
                        ) -> List[Tuple[CallSite, str]]:
        """Sink sites receiving a carrier the store writes into.

        ``eff_base`` narrows the base to the clone-precise (method, var)
        resolved during hit replay (paper §4.1.1's per-clone edge).
        """
        if store.base is None:
            return []
        if eff_base is not None:
            base_pts = self.direct.points_to(*eff_base)
        else:
            base_pts = self.direct.points_to(store.stmt.method, store.base)
        out: List[Tuple[CallSite, str]] = []
        seen: Set[Tuple[Tuple[str, int], str]] = set()
        for ikey in base_pts:
            for site, display in self._by_ikey.get(ikey, []):
                token = (site.key, display)
                if token not in seen:
                    seen.add(token)
                    out.append((site, display))
        return out

    def sinks_for_object(self, method: str,
                         var: str) -> List[Tuple[CallSite, str]]:
        """Sink sites receiving (state reachable from) ``var``'s objects —
        used for by-reference sources."""
        out: List[Tuple[CallSite, str]] = []
        seen: Set[Tuple[Tuple[str, int], str]] = set()
        for ikey in self.direct.points_to(method, var):
            for site, display in self._by_ikey.get(ikey, []):
                token = (site.key, display)
                if token not in seen:
                    seen.add(token)
                    out.append((site, display))
        return out

"""Analysis budgets (paper §6).

A :class:`Budget` gathers every bound TAJ supports:

* ``max_cg_nodes`` — call-graph size bound for priority-driven /
  prioritized construction (§6.1);
* ``max_heap_transitions`` — store-to-load expansions during hybrid thin
  slicing (§6.2.1);
* ``max_flow_length`` — reported-flow length filter (§6.2.2);
* ``max_nested_depth`` — field-dereference depth for taint-carrier
  detection (§6.2.3);
* ``max_state_units`` — an abstract memory budget, used to emulate the
  1 GB JVM heap that the CS thin-slicing baseline exhausts on the large
  benchmarks (the paper reports those runs as out-of-memory failures).

``None`` means unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class BudgetExhausted(Exception):
    """Raised when a hard budget (memory emulation) is exceeded.

    A trigger of the degradation ladder (``repro.resilience``): the
    taint engine catches it per rule, keeps the flows already
    collected, and — when the ladder is enabled — retries the rule with
    the next cheaper slicing strategy.
    """

    def __init__(self, dimension: str, limit: int) -> None:
        self.dimension = dimension
        self.limit = limit
        super().__init__(f"analysis budget exhausted: {dimension} > {limit}")


@dataclass
class Budget:
    """Bounds for one analysis run; ``None`` disables a bound."""

    max_cg_nodes: Optional[int] = None
    max_heap_transitions: Optional[int] = None
    max_flow_length: Optional[int] = None
    max_nested_depth: Optional[int] = None
    max_state_units: Optional[int] = None

    def copy(self) -> "Budget":
        return Budget(self.max_cg_nodes, self.max_heap_transitions,
                      self.max_flow_length, self.max_nested_depth,
                      self.max_state_units)


class StateMeter:
    """Counts abstract state units against ``max_state_units``.

    The CS thin-slicing baseline charges one unit per exploded
    supergraph node it materializes; exceeding the limit raises
    :class:`BudgetExhausted`, modeling the out-of-memory failures the
    paper observed for CS on 16 of the 22 benchmarks.
    """

    def __init__(self, limit: Optional[int]) -> None:
        self.limit = limit
        self.used = 0

    def charge(self, units: int = 1) -> None:
        self.used += units
        if self.limit is not None and self.used > self.limit:
            raise BudgetExhausted("state_units", self.limit)


UNBOUNDED = Budget()

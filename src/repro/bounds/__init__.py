"""Budget objects shared by every bounded-analysis technique."""

from .budget import Budget, BudgetExhausted, StateMeter, UNBOUNDED

__all__ = ["Budget", "BudgetExhausted", "StateMeter", "UNBOUNDED"]

"""The regression sentinel: diff the newest ledger entry against a
baseline window with noise-aware thresholds.

Given a run ledger (:mod:`repro.obs.ledger`), the sentinel takes the
newest record, collects the last *k* **comparable** records (same kind,
config fingerprint, and corpus hash), and flags every phase, the total,
and every work counter whose newest value exceeds a robust threshold
built from the baseline window:

    threshold = max(median + k_mad * 1.4826 * MAD,   # noise band
                    median * min_ratio,              # relative floor
                    median + min_abs)                # absolute floor

Median/MAD (not mean/stddev) so one outlier baseline run cannot poison
the window; the 1.4826 factor makes the MAD a consistent estimator of
the standard deviation under normal noise.  The *min_ratio* and
*min_abs* floors keep microsecond phases from tripping on scheduler
jitter.

Wall-clock gates (phases, total) additionally require the newest
record's **host fingerprint** to match the whole baseline window —
comparing a laptop's wall time against a CI runner's is noise, not
signal.  Work-counter gates (propagations, flows, …) are deterministic
and always apply.  ``benchmarks/regression.py`` is the CI entry point;
this module is also runnable directly::

    python -m repro.obs.compare BENCH_ledger.jsonl --check
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

from .ledger import comparable_records, read_ledger

# Robust-threshold defaults (overridable per call / per CLI flag).
DEFAULT_WINDOW = 5           # baseline records considered
DEFAULT_MIN_BASELINE = 2     # fewer comparable records => no verdict
DEFAULT_K_MAD = 4.0          # noise band width, in consistent MADs
DEFAULT_MIN_RATIO = 1.30     # never flag below +30% of the median
DEFAULT_MIN_ABS = 0.010      # ... or below +10ms absolute (seconds)
DEFAULT_COUNTER_RATIO = 1.10  # counters are deterministic: +10% is real

_MAD_CONSISTENCY = 1.4826


@dataclass
class Finding:
    """One flagged (or cleared) metric."""

    metric: str                 # "phase.taint" | "seconds" | "counter.*"
    newest: float
    median: float
    mad: float
    threshold: float
    regressed: bool

    @property
    def ratio(self) -> float:
        return self.newest / self.median if self.median else float("inf")

    def render(self) -> str:
        state = "REGRESSED" if self.regressed else "ok"
        return (f"{self.metric:<32} newest={self.newest:>12.4f} "
                f"median={self.median:>12.4f} mad={self.mad:>10.4f} "
                f"threshold={self.threshold:>12.4f} "
                f"x{self.ratio:>5.2f}  {state}")


@dataclass
class Comparison:
    """The sentinel's full verdict on one newest-vs-baseline diff."""

    baseline_size: int
    wall_gated: bool            # were wall-clock gates applied?
    skipped_reason: Optional[str]  # why wall gates (or all) were skipped
    findings: List[Finding]

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_payload(self) -> Dict:
        return {
            "baseline_size": self.baseline_size,
            "wall_gated": self.wall_gated,
            "skipped_reason": self.skipped_reason,
            "regressions": [f.metric for f in self.regressions],
            "findings": [{
                "metric": f.metric, "newest": f.newest,
                "median": f.median, "mad": f.mad,
                "threshold": f.threshold, "regressed": f.regressed,
            } for f in self.findings],
        }


def _threshold(values: List[float], k_mad: float, min_ratio: float,
               min_abs: float) -> Dict[str, float]:
    median = statistics.median(values)
    mad = statistics.median([abs(v - median) for v in values])
    threshold = max(median + k_mad * _MAD_CONSISTENCY * mad,
                    median * min_ratio,
                    median + min_abs)
    return {"median": median, "mad": mad, "threshold": threshold}


def _gate(metric: str, newest: float, values: List[float],
          k_mad: float, min_ratio: float, min_abs: float) -> Finding:
    stats = _threshold(values, k_mad, min_ratio, min_abs)
    return Finding(metric=metric, newest=newest,
                   median=stats["median"], mad=stats["mad"],
                   threshold=stats["threshold"],
                   regressed=newest > stats["threshold"])


def compare(newest: Dict, baseline: List[Dict],
            k_mad: float = DEFAULT_K_MAD,
            min_ratio: float = DEFAULT_MIN_RATIO,
            min_abs: float = DEFAULT_MIN_ABS,
            counter_ratio: float = DEFAULT_COUNTER_RATIO,
            wall: bool = True) -> Comparison:
    """Diff one record against its baseline window.

    ``baseline`` must already be filtered to comparable records (use
    :func:`~repro.obs.ledger.comparable_records`); ``wall=False`` skips
    the wall-clock gates and checks only work counters.
    """
    findings: List[Finding] = []
    skipped = None
    if wall:
        # Per-phase walls: the phase diff is what *names* the
        # regression — "taint regressed" beats "the run got slower".
        phases = sorted(newest.get("phases", {}))
        for phase in phases:
            values = [rec["phases"][phase] for rec in baseline
                      if phase in rec.get("phases", {})]
            if not values:
                continue
            findings.append(_gate(f"phase.{phase}",
                                  newest["phases"][phase], values,
                                  k_mad, min_ratio, min_abs))
        totals = [rec["seconds"] for rec in baseline
                  if "seconds" in rec]
        if totals:
            findings.append(_gate("seconds", newest.get("seconds", 0.0),
                                  totals, k_mad, min_ratio, min_abs))
    else:
        skipped = "wall-clock gates skipped"
    # Work counters: host-independent, so the MAD band is usually zero
    # and the ratio floor does the work.
    for name in sorted(newest.get("counters", {})):
        values = [rec["counters"][name] for rec in baseline
                  if name in rec.get("counters", {})]
        if not values:
            continue
        findings.append(_gate(f"counter.{name}",
                              newest["counters"][name], values,
                              k_mad, counter_ratio, 0.0))
    return Comparison(baseline_size=len(baseline), wall_gated=wall,
                      skipped_reason=skipped, findings=findings)


def compare_ledger(path: str, window: int = DEFAULT_WINDOW,
                   min_baseline: int = DEFAULT_MIN_BASELINE,
                   wall: str = "auto", **thresholds) -> Comparison:
    """Sentinel over a ledger file: newest record vs its last-*k*
    comparable predecessors.

    ``wall`` policy: ``"auto"`` applies wall gates only when the whole
    baseline window shares the newest record's host fingerprint (the
    1-core-container / CI-runner case degrades to counter gates, the
    same spirit as the parallel-scaling CI gate); ``"on"`` forces them;
    ``"off"`` disables them.
    """
    records = read_ledger(path)
    if not records:
        return Comparison(0, False, "empty ledger", [])
    newest = records[-1]
    baseline = comparable_records(records[:-1], newest)[-window:]
    if len(baseline) < min_baseline:
        return Comparison(len(baseline), False,
                          f"insufficient history "
                          f"({len(baseline)} comparable baseline "
                          f"record(s), need {min_baseline})", [])
    same_host = len(comparable_records(baseline + [newest], newest,
                                       same_host=True)) == len(baseline)
    if wall == "on":
        use_wall = True
    elif wall == "off":
        use_wall = False
    else:
        use_wall = same_host
    comparison = compare(newest, baseline, wall=use_wall, **thresholds)
    if not use_wall and comparison.skipped_reason:
        comparison.skipped_reason += (
            "" if wall == "off"
            else " (host fingerprint differs from baseline window)")
    return comparison


def render(comparison: Comparison) -> str:
    lines = [f"regression sentinel: {comparison.baseline_size} baseline "
             f"record(s), wall gates "
             f"{'on' if comparison.wall_gated else 'off'}"]
    if comparison.skipped_reason:
        lines.append(f"note: {comparison.skipped_reason}")
    for finding in comparison.findings:
        lines.append("  " + finding.render())
    if not comparison.findings:
        lines.append("  (no gated metrics)")
    lines.append("verdict: " + ("OK" if comparison.ok else
                                "REGRESSED: " + ", ".join(
                                    f.metric
                                    for f in comparison.regressions)))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.compare",
        description="Diff the newest run-ledger entry against a "
                    "baseline window with noise-aware thresholds.")
    parser.add_argument("ledger", help="JSONL run ledger path")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any gated metric regressed")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help=f"baseline window size "
                             f"(default {DEFAULT_WINDOW})")
    parser.add_argument("--min-baseline", type=int,
                        default=DEFAULT_MIN_BASELINE,
                        help="comparable records required for a verdict "
                             f"(default {DEFAULT_MIN_BASELINE})")
    parser.add_argument("--k-mad", type=float, default=DEFAULT_K_MAD,
                        help=f"noise band width in consistent MADs "
                             f"(default {DEFAULT_K_MAD})")
    parser.add_argument("--min-ratio", type=float,
                        default=DEFAULT_MIN_RATIO,
                        help="relative wall floor "
                             f"(default {DEFAULT_MIN_RATIO})")
    parser.add_argument("--wall", choices=("auto", "on", "off"),
                        default="auto",
                        help="wall-clock gate policy: auto = only when "
                             "the host fingerprint matches the whole "
                             "baseline window (default)")
    parser.add_argument("--json", action="store_true",
                        help="emit the comparison as JSON")
    args = parser.parse_args(argv)

    comparison = compare_ledger(args.ledger, window=args.window,
                                min_baseline=args.min_baseline,
                                wall=args.wall, k_mad=args.k_mad,
                                min_ratio=args.min_ratio)
    if args.json:
        print(json.dumps(comparison.to_payload(), indent=2,
                         sort_keys=True))
    else:
        print(render(comparison))
    if args.check and not comparison.ok:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""``repro.obs`` — zero-dependency observability for the TAJ pipeline.

Three instruments behind one bundle (:class:`Observability`):

* :class:`~repro.obs.tracer.Tracer` — hierarchical span tracer; every
  pipeline phase (modeling, pointer analysis, SDG construction, taint
  tracking, reporting) opens exactly one top-level ``phase.*`` span,
  with nested spans for sub-passes.  Exportable as JSONL or Chrome
  trace-event JSON (:mod:`repro.obs.export`).
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  timer/value histograms with p50/p95/max summaries; absorbs the
  pointer kernel's counters, worklist depths, points-to set sizes, and
  ``tracemalloc`` memory high-water marks.
* :class:`~repro.obs.provenance.ProvenanceAudit` — per-flow witness
  chains (source seed → path length → rules/sanitizers consulted →
  §5 grouping decision), opt-in via ``Observability(audit=True)``.

The module-level :data:`DISABLED` singleton is the no-op recorder: all
instrumentation points accept it and degrade to (nearly) free calls, so
un-instrumented runs pay no measurable overhead.  Memory sampling is
opt-in (``memory=True``) because ``tracemalloc`` itself is costly.

Naming conventions and exporter formats: ``docs/observability.md``.
"""

from __future__ import annotations

import tracemalloc
from typing import Dict, Optional, Union

from .export import (chrome_trace_events, span_dicts, write_audit_json,
                     write_chrome_trace, write_metrics_json,
                     write_spans_jsonl)
from .ledger import (LedgerError, append_record, comparable_records,
                     config_fingerprint, corpus_hash, host_fingerprint,
                     read_ledger, record_from_result)
from .metrics import (Histogram, MetricsRegistry, NULL_REGISTRY,
                      NullMetricsRegistry, percentile)
from .profile import (ProfileData, SamplingProfiler, profile_shard,
                      write_collapsed)
from .progress import NULL_PROGRESS, NullProgress, Progress
from .provenance import (FlowWitness, NULL_AUDIT, NullProvenanceAudit,
                         ProvenanceAudit, RuleConsultation)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "DISABLED", "FlowWitness", "Histogram", "LedgerError",
    "MetricsRegistry", "NullMetricsRegistry", "NullProgress",
    "NullProvenanceAudit", "NullTracer", "Observability", "ProfileData",
    "Progress", "ProvenanceAudit", "RuleConsultation",
    "SamplingProfiler", "Span", "Tracer", "append_record",
    "chrome_trace_events", "comparable_records", "config_fingerprint",
    "corpus_hash", "host_fingerprint", "percentile", "profile_shard",
    "read_ledger", "record_from_result", "span_dicts",
    "write_audit_json", "write_chrome_trace", "write_collapsed",
    "write_metrics_json", "write_spans_jsonl",
]


class Observability:
    """Tracer + metrics registry + provenance audit, as one handle.

    The default construction enables the tracer and the registry (both
    cheap at the pipeline's phase/pass/rule granularity); the audit,
    memory sampling, the sampling profiler, and the progress heartbeat
    are opt-in::

        obs = Observability(audit=True, memory=True, profile=True)
        result = TAJ(config, obs=obs).analyze_sources([source])
        write_chrome_trace(obs.tracer, "trace.json")
        write_collapsed(obs.profiler.data, "profile.collapsed")
    """

    enabled = True

    def __init__(self,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 audit: Union[bool, ProvenanceAudit] = False,
                 memory: bool = False,
                 profile: Union[bool, SamplingProfiler] = False,
                 progress: Union[bool, Progress] = False) -> None:
        self.tracer = Tracer() if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics
        if audit is True:
            self.audit = ProvenanceAudit()
        elif audit:
            self.audit = audit
        else:
            self.audit = NULL_AUDIT
        # Phase-attributed sampling profiler (repro.obs.profile): the
        # facade starts/stops it around each pipeline run.
        if profile is True:
            self.profiler: Optional[SamplingProfiler] = \
                SamplingProfiler(tracer=self.tracer)
        elif profile:
            self.profiler = profile
            if self.profiler.tracer is None:
                self.profiler.tracer = self.tracer
        else:
            self.profiler = None
        # Live progress heartbeat (repro.obs.progress): seams update
        # it; the CLI's --progress starts the printing thread.
        if progress is True:
            self.progress: Union[Progress, NullProgress] = \
                Progress(tracer=self.tracer)
        elif progress:
            self.progress = progress
            if getattr(self.progress, "tracer", None) is None:
                self.progress.tracer = self.tracer
        else:
            self.progress = NULL_PROGRESS
        self._memory = memory
        self._owns_tracemalloc = False
        if memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    # -- conveniences ------------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        return self.tracer.span(name, **attrs)

    def sample_memory(self) -> None:
        """Record current/peak traced memory as gauges (no-op unless
        constructed with ``memory=True`` and tracemalloc is tracing)."""
        if not self._memory or not tracemalloc.is_tracing():
            return
        current, peak = tracemalloc.get_traced_memory()
        self.metrics.gauge("memory.current_bytes", current)
        self.metrics.gauge_max("memory.peak_bytes", peak)

    def finish(self) -> None:
        """Final memory sample; stops tracemalloc if this bundle
        started it.  Safe to call multiple times."""
        self.sample_memory()
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False

    @staticmethod
    def disabled() -> "_DisabledObservability":
        return DISABLED


class _DisabledObservability:
    """The no-op bundle: null tracer/registry/audit, nothing recorded."""

    enabled = False

    def __init__(self) -> None:
        self.tracer = NULL_TRACER
        self.metrics = NULL_REGISTRY
        self.audit = NULL_AUDIT
        self.profiler = None
        self.progress = NULL_PROGRESS

    def span(self, name: str, **attrs: object):
        return self.tracer.span(name)

    def sample_memory(self) -> None:
        pass

    def finish(self) -> None:
        pass

    @staticmethod
    def disabled() -> "_DisabledObservability":
        return DISABLED


DISABLED = _DisabledObservability()

"""Live progress heartbeat for multi-minute runs (CLI ``--progress``).

A 1-core analysis of a scaled corpus runs for minutes with no output;
the heartbeat is a daemon thread that prints one status line to stderr
every ``interval`` seconds:

    [taj 12.4s] phase=pointer_analysis worklist=481 cg_nodes=96
    [taj 48.9s] phase=taint rule=XSS rules=3/7 shards=5/9

The *phase* comes from the tracer's open-span stack (the outermost
``phase.*`` span); everything after it is a free-form field dict that
pipeline seams update through :meth:`Progress.update` — the pointer
solver publishes its worklist depth per alternation, the taint sweep
its rule/shard progress.  Updates are plain dict writes (GIL-atomic)
at per-alternation/per-rule granularity, so the hot loops stay
untouched.  :class:`NullProgress` is the disabled default: ``update``
is a no-op, nothing is printed, nothing is allocated.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, Optional, TextIO

DEFAULT_INTERVAL = 1.0

# Render order for well-known fields; anything else follows, sorted.
_FIELD_ORDER = ("worklist", "cg_nodes", "rule", "rules", "shards",
                "flows")


class Progress:
    """Mutable run state plus the heartbeat thread that renders it."""

    enabled = True

    def __init__(self, stream: Optional[TextIO] = None,
                 interval: float = DEFAULT_INTERVAL,
                 tracer: Optional[object] = None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.tracer = tracer
        self.fields: Dict[str, object] = {}
        self.beats = 0
        self._started_at: Optional[float] = None
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- state -------------------------------------------------------------

    def update(self, **fields: object) -> None:
        """Merge fields into the status line (cheap: dict writes)."""
        self.fields.update(fields)

    def clear(self, *names: str) -> None:
        """Drop fields that no longer apply (e.g. the solver's
        worklist once the pointer phase ends)."""
        for name in names:
            self.fields.pop(name, None)

    def current_phase(self) -> Optional[str]:
        tracer = self.tracer
        stack = getattr(tracer, "_stack", None) if tracer else None
        if not stack:
            return None
        name = stack[0].name
        return name[len("phase."):] if name.startswith("phase.") \
            else name

    def render_line(self) -> str:
        elapsed = 0.0 if self._started_at is None \
            else time.perf_counter() - self._started_at
        parts = [f"[taj {elapsed:.1f}s]"]
        phase = self.current_phase()
        if phase:
            parts.append(f"phase={phase}")
        fields = dict(self.fields)
        for name in _FIELD_ORDER:
            if name in fields:
                parts.append(f"{name}={fields.pop(name)}")
        for name in sorted(fields):
            parts.append(f"{name}={fields[name]}")
        return " ".join(parts)

    # -- heartbeat ---------------------------------------------------------

    def _beat_loop(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.emit()

    def emit(self) -> None:
        """Print one status line now (the heartbeat calls this; tests
        and the CLI's final flush may too)."""
        print(self.render_line(), file=self.stream, flush=True)
        self.beats += 1

    def start(self) -> "Progress":
        if self._thread is not None:
            return self
        self._started_at = time.perf_counter()
        self._stop_event.clear()
        self._thread = threading.Thread(target=self._beat_loop,
                                        name="repro-progress",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=self.interval * 20)
        self._thread = None

    def __enter__(self) -> "Progress":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


class NullProgress:
    """Disabled-mode progress: every call is a no-op."""

    enabled = False
    fields: Dict[str, object] = {}
    beats = 0

    def update(self, **fields: object) -> None:
        pass

    def clear(self, *names: str) -> None:
        pass

    def current_phase(self) -> None:
        return None

    def render_line(self) -> str:
        return ""

    def emit(self) -> None:
        pass

    def start(self) -> "NullProgress":
        return self

    def stop(self) -> None:
        pass

    def __enter__(self) -> "NullProgress":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_PROGRESS = NullProgress()

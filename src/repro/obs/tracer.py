"""Hierarchical span tracer: the timing backbone of the pipeline.

A *span* is a named, attributed interval on the monotonic clock
(``time.perf_counter``).  Spans nest: entering a span while another is
open makes it a child, so one analysis run yields a forest whose roots
are the pipeline phases (``phase.modeling``, ``phase.pointer_analysis``,
``phase.sdg``, ``phase.taint``, ``phase.reporting`` — see
``docs/observability.md`` for the naming conventions).

Usage::

    tracer = Tracer()
    with tracer.span("phase.modeling", sources=3) as span:
        ...
        span.set(classes=12)

Hot paths that measure time themselves (the pointer solver's
alternating sub-phases) report aggregates through
:meth:`Tracer.add_completed`, which records a pre-timed span without a
context manager.

:class:`NullTracer` is the disabled-mode recorder: ``span()`` returns a
shared no-op singleton and nothing is retained, so instrumentation
points cost one attribute lookup and one method call.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple


class Span:
    """One named interval; a node in the span tree."""

    __slots__ = ("name", "start", "end", "attrs", "children", "parent",
                 "_tracer")

    def __init__(self, name: str, tracer: "Tracer",
                 attrs: Optional[Dict] = None) -> None:
        self.name = name
        self.start = 0.0
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.parent: Optional["Span"] = None
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Seconds from start to end (to *now* while still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return max(0.0, end - self.start)

    def set(self, **attrs: object) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if exc is not None:
            self.attrs.setdefault("error", repr(exc))
        self._tracer._close(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.3f}ms" if self.end is not None \
            else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class Tracer:
    """Records a forest of :class:`Span` objects."""

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        """A new span; time starts at ``__enter__``."""
        return Span(name, self, attrs)

    def add_completed(self, name: str, start: float, duration: float,
                      attrs: Optional[Dict] = None) -> Span:
        """Record an already-measured interval as a child of the current
        span (a root if none is open).  For aggregates measured inline
        by hot loops, e.g. the solver's constraint-adding/solving
        alternation."""
        span = Span(name, self, attrs)
        span.start = start
        span.end = start + max(0.0, duration)
        self._attach(span)
        return span

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- reading -----------------------------------------------------------

    def iter_spans(self) -> Iterator[Tuple[Span, int]]:
        """Every recorded span with its depth, pre-order."""
        stack: List[Tuple[Span, int]] = [(s, 0) for s in
                                         reversed(self.roots)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))

    def find(self, name: str) -> List[Span]:
        """All spans with the given name, pre-order."""
        return [span for span, _ in self.iter_spans() if span.name == name]

    def phase_durations(self) -> Dict[str, float]:
        """``phase.*`` root name (sans prefix) -> total seconds."""
        out: Dict[str, float] = {}
        for root in self.roots:
            if root.name.startswith("phase."):
                key = root.name[len("phase."):]
                out[key] = out.get(key, 0.0) + root.duration
        return out

    # -- span tree maintenance --------------------------------------------

    def _open(self, span: Span) -> None:
        self._attach(span)
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        # Tolerate out-of-order exits (an exception unwinding through
        # several open spans): pop through the target.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end is None:
                top.end = span.end

    def _attach(self, span: Span) -> None:
        parent = self.current()
        span.parent = parent
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)


class _NullSpan:
    """Shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()
    name = ""
    start = 0.0
    end = 0.0
    duration = 0.0
    attrs: Dict[str, object] = {}
    children: Tuple = ()
    parent = None

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled-mode tracer: records nothing, allocates nothing."""

    enabled = False
    roots: Tuple = ()

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def add_completed(self, name: str, start: float, duration: float,
                      attrs: Optional[Dict] = None) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def iter_spans(self) -> Iterator:
        return iter(())

    def find(self, name: str) -> List:
        return []

    def phase_durations(self) -> Dict[str, float]:
        return {}


NULL_TRACER = NullTracer()

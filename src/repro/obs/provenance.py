"""Flow-provenance audit: the witness chain behind every reported flow.

When precision shifts between two runs — an issue appears, disappears,
or regroups — the report alone says nothing about *why*.  The audit
records, per :class:`~repro.taint.flows.TaintFlow`, everything the
pipeline consulted on the way to reporting it:

* the **source seed** (the source call statement that started the
  slice) and how many seeds the rule enumerated in total;
* the **SDG path length** (traversed-edge count, the §6.2.2 metric)
  plus the carrier/heap-transition character of the witness path;
* the **rule consulted** and the **sanitizers checked** against the
  path (a flow is only reported if none endorsed it);
* the **grouping decision** of §5: which LCP equivalence class the flow
  fell into, the class size, the remediation label, and whether this
  flow is the class representative that becomes the reported issue.

The audit is duck-typed against :class:`TaintFlow`/``FlowGroup`` (no
imports from the analysis packages, keeping ``repro.obs`` a leaf).
:class:`NullProvenanceAudit` is the disabled default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class FlowWitness:
    """The recorded provenance of one deduplicated flow."""

    rule: str
    source: str                 # the source seed, "Method@iid"
    sink: str
    sink_display: str
    path_length: int
    via_carrier: bool
    heap_transitions: int
    lcp: str
    rule_seeds: int             # source seeds the rule enumerated
    sanitizers_checked: Tuple[str, ...]
    # grouping decision (filled by the reporting phase)
    grouped: bool = False
    group_size: int = 0
    representative: bool = False
    remediation: str = ""
    group_lcp: str = ""

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "source": self.source,
            "sink": self.sink,
            "sink_display": self.sink_display,
            "path_length": self.path_length,
            "via_carrier": self.via_carrier,
            "heap_transitions": self.heap_transitions,
            "lcp": self.lcp,
            "rule_seeds": self.rule_seeds,
            "sanitizers_checked": list(self.sanitizers_checked),
            "grouping": {
                "grouped": self.grouped,
                "group_size": self.group_size,
                "representative": self.representative,
                "remediation": self.remediation,
                "group_lcp": self.group_lcp,
            },
        }


@dataclass
class RuleConsultation:
    """What applying one security rule involved."""

    rule: str
    seeds: int                  # enumerated source statements
    sanitizers: Tuple[str, ...]
    sinks: int
    flows: int = 0              # deduplicated flows the rule yielded

    def to_dict(self) -> Dict:
        return {"rule": self.rule, "seeds": self.seeds,
                "sanitizers": list(self.sanitizers), "sinks": self.sinks,
                "flows": self.flows}


class ProvenanceAudit:
    """Collects witnesses during the taint + reporting phases."""

    enabled = True

    def __init__(self) -> None:
        self.rules: List[RuleConsultation] = []
        self.witnesses: List[FlowWitness] = []
        self._by_key: Dict[Tuple, FlowWitness] = {}

    # -- taint phase -------------------------------------------------------

    def record_rule(self, rule, seeds: int, flows: int) -> None:
        """One security rule was applied (``rule`` is a SecurityRule)."""
        self.rules.append(RuleConsultation(
            rule=rule.name, seeds=seeds,
            sanitizers=tuple(sorted(rule.sanitizers)),
            sinks=len(rule.sinks), flows=flows))

    def record_flow(self, flow, rule, seeds: int) -> FlowWitness:
        """One deduplicated flow survived slicing under ``rule``."""
        witness = FlowWitness(
            rule=flow.rule, source=str(flow.source), sink=str(flow.sink),
            sink_display=flow.sink_display, path_length=flow.length,
            via_carrier=flow.via_carrier,
            heap_transitions=flow.heap_transitions, lcp=str(flow.lcp),
            rule_seeds=seeds,
            sanitizers_checked=tuple(sorted(rule.sanitizers)))
        self._by_key[flow.key()] = witness
        self.witnesses.append(witness)
        return witness

    # -- reporting phase ---------------------------------------------------

    def record_groups(self, groups) -> None:
        """Attach the §5 grouping decision to each member's witness
        (``groups`` is the FlowGroup list from report building)."""
        for group in groups:
            for member in group.members:
                witness = self._by_key.get(member.key())
                if witness is None:
                    continue
                witness.grouped = True
                witness.group_size = group.size
                witness.representative = member is group.representative
                witness.remediation = group.key.remediation
                witness.group_lcp = str(group.key.lcp)

    # -- output ------------------------------------------------------------

    def to_payload(self) -> Dict:
        """The full audit as a JSON-serializable dict."""
        return {
            "rules_consulted": [r.to_dict() for r in self.rules],
            "flows": [w.to_dict() for w in self.witnesses],
        }


class NullProvenanceAudit:
    """Disabled-mode audit."""

    enabled = False
    rules: Tuple = ()
    witnesses: Tuple = ()

    def record_rule(self, rule, seeds: int, flows: int) -> None:
        pass

    def record_flow(self, flow, rule, seeds: int) -> None:
        pass

    def record_groups(self, groups) -> None:
        pass

    def to_payload(self) -> Dict:
        return {}


NULL_AUDIT = NullProvenanceAudit()

"""Exporters: span trees and metric snapshots to files.

Two trace formats:

* **JSONL** — one span per line (pre-order), each a flat object with
  ``name/start_s/end_s/duration_s/depth/parent/attrs``.  Easy to grep
  and to diff across runs.

A span still open at export time (a fault- or deadline-aborted run
unwinding past its context managers) is rendered with its
duration-so-far and an explicit ``"incomplete": true`` marker — never
silently as a zero-duration interval.  Attribute values that are not
JSON primitives are coerced to strings in both formats, so an exporter
never crashes on an attached object.
* **Chrome trace-event** — the ``chrome://tracing`` / Perfetto format:
  an object with a ``traceEvents`` array of complete (``"ph": "X"``)
  events with microsecond ``ts``/``dur``.  Load a written file directly
  in ``chrome://tracing`` to see the nested phase flame graph.

Metrics snapshots are written as a single indented JSON object (the
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` shape), provenance
audits as :meth:`~repro.obs.provenance.ProvenanceAudit.to_payload`.
"""

from __future__ import annotations

import json
from typing import Dict, List


def span_dicts(tracer) -> List[Dict]:
    """Flat pre-order dicts for every span in the tracer.

    An unclosed span (``end is None``) renders its duration-so-far with
    ``end_s = start_s + duration_s`` and ``"incomplete": true``."""
    out: List[Dict] = []
    for span, depth in tracer.iter_spans():
        duration = span.duration
        row = {
            "name": span.name,
            "start_s": span.start,
            "end_s": span.end if span.end is not None
            else span.start + duration,
            "duration_s": duration,
            "depth": depth,
            "parent": span.parent.name if span.parent is not None else None,
            "attrs": _jsonable(span.attrs),
        }
        if span.end is None:
            row["incomplete"] = True
        out.append(row)
    return out


def write_spans_jsonl(tracer, path: str) -> int:
    """One JSON object per line per span; returns the span count."""
    rows = span_dicts(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")
    return len(rows)


def chrome_trace_events(tracer) -> List[Dict]:
    """Chrome trace-event "complete" events, timestamps rebased to the
    earliest span so traces start at t=0."""
    spans = list(tracer.iter_spans())
    if not spans:
        return []
    base = min(span.start for span, _ in spans)
    events: List[Dict] = []
    for span, _depth in spans:
        args = _jsonable(span.attrs)
        if span.end is None:
            args["incomplete"] = True
        events.append({
            "name": span.name,
            "cat": "taj",
            "ph": "X",
            "ts": round((span.start - base) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": 1,
            "tid": 1,
            "args": args,
        })
    return events


def write_chrome_trace(tracer, path: str,
                       metadata: Dict = None) -> int:
    """Write a ``chrome://tracing``-loadable file; returns event count."""
    events = chrome_trace_events(tracer)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(events)


def write_metrics_json(snapshot: Dict, path: str) -> None:
    """Write a registry snapshot (or any JSON-serializable dict)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_audit_json(audit, path: str) -> None:
    """Write a provenance audit's payload."""
    write_metrics_json(audit.to_payload(), path)


def _jsonable(attrs: Dict) -> Dict:
    """Attribute values coerced to JSON-serializable primitives."""
    out: Dict[str, object] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out

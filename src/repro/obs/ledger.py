"""The append-only run ledger: one JSONL record per analysis/bench run.

A single trace answers "how fast is this run"; the ledger answers "is
this run slower than last week, and which phase regressed" — it is the
run *history* the regression sentinel (:mod:`repro.obs.compare`,
``benchmarks/regression.py``) diffs against.

Each record is one flat JSON object (schema version
:data:`LEDGER_SCHEMA`) with:

* ``kind`` — ``"analysis"`` (one TAJ pipeline run) or ``"bench"`` (one
  ``bench_solver`` suite sweep);
* ``config`` — the configuration name plus a **fingerprint** (sha-256
  over the canonical JSON of every knob), so only like-configured runs
  are ever compared;
* ``corpus`` — a sha-256 over the analyzed sources (or the suite
  corpus), so a corpus change is never mistaken for a regression;
* ``host`` — python version / CPU count / platform, the comparability
  gate for wall-clock diffs;
* ``phases`` — per-phase span durations (pipeline phases for analysis
  records, per-suite walls for bench records);
* ``counters`` — deterministic work counters (propagations, flows, …)
  that regress independently of host speed;
* ``completeness`` / ``confirm`` — the resilience verdict and the
  dynamic-confirmation verdict counts;
* ``commit`` — the VCS commit id, passed in via ``--commit`` (the
  ledger never shells out to git itself).

Appends are atomic at line granularity (one ``write`` of one
newline-terminated line in append mode); the reader skips blank lines
and raises :class:`LedgerError` on malformed or wrong-schema records.
Ledger schema reference: ``docs/observability.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from typing import Dict, Iterable, List, Optional

LEDGER_SCHEMA = 1

# Counters copied from a metrics snapshot into ``record["counters"]``:
# deterministic work measures, comparable across hosts.  The
# ``taint.pool.*`` supervision counters are deterministic under a
# scripted fault plan (benchmarks/fault_injection.py rows record them),
# and present only when supervision actually intervened — so the
# sentinel gates them exactly when the scenario says they must appear.
WORK_COUNTERS = (
    "pointer.propagations", "pointer.edges", "pointer.nodes_processed",
    "pointer.cycles_collapsed", "pointer.keys_merged",
    "taint.rules_consulted", "taint.flows",
    "taint.suppressed_by_length", "report.issues",
    "taint.pool.retries", "taint.pool.restarts",
    "taint.pool.quarantined",
    # Summary-cache effectiveness (repro.summaries): deterministic for
    # a given (cache state, corpus) pair, present only on "summary"
    # runs — the sentinel flags a cache that stopped hitting, not just
    # the wall-clock consequence.
    "summary.cache.hits", "summary.cache.misses",
    "summary.cache.evictions", "summary.cache.stale",
)


class LedgerError(ValueError):
    """A ledger file (or one of its records) is malformed."""


def sha256_fingerprint(payload: object) -> str:
    """Short stable digest of any JSON-serializable value."""
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def corpus_hash(sources: Iterable[str]) -> str:
    """Order-independent digest of a source corpus."""
    digest = hashlib.sha256()
    for piece in sorted(hashlib.sha256(src.encode("utf-8")).hexdigest()
                        for src in sources):
        digest.update(piece.encode("ascii"))
    return digest.hexdigest()[:16]


def config_fingerprint(config) -> str:
    """Digest of every :class:`~repro.core.config.TAJConfig` knob (via
    dataclass fields, so new knobs change the fingerprint by default)."""
    import dataclasses
    if dataclasses.is_dataclass(config):
        knobs = {}
        for field in dataclasses.fields(config):
            value = getattr(config, field.name)
            if dataclasses.is_dataclass(value):
                value = dataclasses.asdict(value)
            elif isinstance(value, frozenset):
                value = sorted(value)
            knobs[field.name] = value
        return sha256_fingerprint(knobs)
    return sha256_fingerprint(config)


def host_fingerprint() -> Dict[str, object]:
    """The wall-clock comparability gate: records from different hosts
    (or python versions) are never wall-diffed against each other."""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    return {
        "python": "%d.%d" % sys.version_info[:2],
        "cores": cores,
        "platform": sys.platform,
    }


def make_record(kind: str, config_name: str, fingerprint: str,
                corpus: Dict[str, object], phases: Dict[str, float],
                seconds: float, counters: Dict[str, float],
                completeness: str = "complete",
                issues: int = 0, raw_flows: int = 0,
                confirm: Optional[Dict[str, int]] = None,
                commit: Optional[str] = None,
                extra: Optional[Dict[str, object]] = None) -> Dict:
    """Assemble one schema-stable ledger record."""
    record = {
        "schema": LEDGER_SCHEMA,
        "kind": kind,
        "ts": round(time.time(), 3),
        "commit": commit,
        "config": {"name": config_name, "fingerprint": fingerprint},
        "corpus": dict(corpus),
        "host": host_fingerprint(),
        "phases": {name: round(float(value), 6)
                   for name, value in sorted(phases.items())},
        "seconds": round(float(seconds), 6),
        "counters": {name: counters[name]
                     for name in sorted(counters)},
        "completeness": completeness,
        "issues": issues,
        "raw_flows": raw_flows,
        "confirm": dict(confirm) if confirm else None,
    }
    if extra:
        record.update(extra)
    return record


def record_from_result(result, config, sources: Iterable[str],
                       commit: Optional[str] = None,
                       extra: Optional[Dict[str, object]] = None) -> Dict:
    """A ledger record for one :class:`~repro.core.results.TAJResult`.

    Phase durations come from ``result.times`` (span-derived, the
    single timing source); work counters from the metrics snapshot.
    """
    sources = list(sources)
    times = result.times
    phases = {
        "modeling": times.modeling,
        "pointer_analysis": times.pointer_analysis,
        "sdg": times.sdg,
        "taint": times.taint,
        "reporting": times.reporting,
    }
    if times.confirm:
        phases["confirm"] = times.confirm
    counters: Dict[str, float] = {}
    snapshot_counters = (result.metrics or {}).get("counters", {})
    for name in WORK_COUNTERS:
        if name in snapshot_counters:
            counters[name] = snapshot_counters[name]
    confirm = None
    if result.confirmation is not None:
        confirm = dict(result.confirmation.counts())
    return make_record(
        kind="analysis",
        config_name=config.name,
        fingerprint=config_fingerprint(config),
        corpus={"hash": corpus_hash(sources), "files": len(sources)},
        phases=phases,
        seconds=times.total,
        counters=counters,
        completeness=result.completeness,
        issues=result.issues,
        raw_flows=result.raw_flows,
        confirm=confirm,
        commit=commit,
        extra=extra,
    )


def append_record(path: str, record: Dict) -> None:
    """Append one record as a single JSONL line (atomic at line
    granularity: one write of one newline-terminated line)."""
    line = json.dumps(record, sort_keys=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def read_ledger(path: str) -> List[Dict]:
    """All records, oldest first.  Blank lines are skipped; a
    malformed line or an unknown schema raises :class:`LedgerError`
    naming the line number.

    Crash tolerance: a malformed **final** line with no terminating
    newline is a partial append — the writer (or its host) died mid
    ``write``.  That record never finished existing, so it is skipped
    with a :class:`UserWarning` naming ``path:lineno`` instead of
    poisoning the whole ledger; every *terminated* line must still
    parse.  The checkpoint journal
    (:mod:`repro.parallel.checkpoint`) leans on exactly this tolerance
    to survive interruption at any byte."""
    records: List[Dict] = []
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    lines = text.split("\n")
    # A trailing newline yields a final empty element; its absence
    # means the last line was never terminated (crash-truncated).
    truncated_tail = lines[-1].strip() != ""
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            if truncated_tail and lineno == len(lines):
                import warnings
                warnings.warn(
                    f"{path}:{lineno}: skipping crash-truncated "
                    f"partial record: {exc}")
                continue
            raise LedgerError(
                f"{path}:{lineno}: malformed record: {exc}") from exc
        if not isinstance(record, dict):
            raise LedgerError(
                f"{path}:{lineno}: record is not an object")
        if record.get("schema") != LEDGER_SCHEMA:
            raise LedgerError(
                f"{path}:{lineno}: unsupported ledger schema "
                f"{record.get('schema')!r} "
                f"(expected {LEDGER_SCHEMA})")
        records.append(record)
    return records


def comparable_records(records: List[Dict], reference: Dict,
                       same_host: bool = False) -> List[Dict]:
    """Records comparable to ``reference``: same kind, same config
    fingerprint, same corpus hash — optionally also the same host
    fingerprint (required before wall-clock diffs mean anything)."""
    def key(rec: Dict):
        parts = [rec.get("kind"),
                 (rec.get("config") or {}).get("fingerprint"),
                 (rec.get("corpus") or {}).get("hash")]
        if same_host:
            parts.append(tuple(sorted((rec.get("host") or {}).items())))
        return tuple(parts)

    want = key(reference)
    return [rec for rec in records
            if rec is not reference and key(rec) == want]

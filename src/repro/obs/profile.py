"""Zero-dependency sampling profiler with pipeline-phase attribution.

The span tracer answers "how long did each phase take"; this module
answers "*where inside the phase* did the time go" without touching the
hot loops.  A :class:`SamplingProfiler` interrupts the running analysis
at a fixed interval, captures the Python call stack, and attributes the
sample to the pipeline phase whose ``phase.*`` span is currently open
(read from the tracer's open-span stack — racy by construction, and
fine: a misattributed sample costs one interval of resolution).

Two backends, both stdlib-only:

* ``signal`` — ``signal.setitimer(ITIMER_PROF)`` + a ``SIGPROF``
  handler sampling the interrupted frame.  CPU-time (user+sys)
  sampling: the timer only advances while the process executes, so the
  totals are *self-time* and never exceed wall clock.  Main thread
  only (CPython delivers signals there).
* ``thread`` — a daemon thread sampling the target thread's frame via
  ``sys._current_frames()``.  Wall-clock sampling; works anywhere,
  including where another component owns the process's signals.

``backend="auto"`` picks ``signal`` on the main thread of platforms
that have ``setitimer``, ``thread`` otherwise.

Samples accumulate in a picklable :class:`ProfileData`: collapsed call
stacks (root→leaf, prefixed with the phase) keyed to sample counts —
Brendan Gregg's *collapsed stack* format, renderable with any
``flamegraph.pl``-compatible tool.  Worker processes of the parallel
taint sweep (:mod:`repro.parallel`) run their own profiler per shard
and ship the data home on the :class:`~repro.taint.engine.ShardOutcome`;
:meth:`SamplingProfiler.absorb` merges them, so serial and ``--jobs N``
runs both end with one whole-pipeline profile (``docs/observability.md``).
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

# Sampling interval default: 4 ms — coarse enough to stay far below 1%
# overhead, fine enough that a multi-second phase collects hundreds of
# samples.
DEFAULT_INTERVAL = 0.004

# Phase label used when no tracer is attached (pool workers profile
# only shard slicing, which is taint-phase work by construction).
DEFAULT_PHASE = "untracked"

# Frames from these filenames are the profiler observing itself (or the
# interpreter's threading plumbing under the thread backend) and are
# trimmed from every captured stack.
_SELF_FILES = (__name__.rsplit(".", 1)[-1] + ".py",)

# Hot-loop markers (docs/observability.md): function names whose
# presence anywhere in a stack classifies the sample as solver or
# tabulation hot-loop work, reported by ``ProfileData.hot_loop_seconds``.
HOT_LOOPS = {
    "_solve_constraints": "pointer.constraint_solving",
    "_add_constraints": "pointer.constraint_adding",
    "_collapse_cycles": "pointer.scc_collapse",
    "tabulate": "sdg.tabulation",
    "slice_rule": "taint.slice_rule",
    "stitch": "summaries.stitch",
}


class ProfileData:
    """Accumulated samples: ``(phase, stack) -> count``, picklable.

    ``stack`` is a root-first tuple of ``"file.function"`` frames.  All
    arithmetic is in sample counts against one fixed ``interval``;
    :meth:`merge` rescales a donor recorded at a different interval so
    seconds are conserved.
    """

    __slots__ = ("interval", "counts")

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        self.interval = interval
        self.counts: Dict[Tuple[str, Tuple[str, ...]], int] = {}

    @property
    def samples(self) -> int:
        return sum(self.counts.values())

    def add(self, phase: str, stack: Tuple[str, ...],
            count: int = 1) -> None:
        key = (phase, stack)
        self.counts[key] = self.counts.get(key, 0) + count

    def merge(self, other: "ProfileData") -> None:
        """Absorb another profile; donor counts recorded at a different
        sampling interval are rescaled so *seconds* are conserved."""
        if not other.counts:
            return
        scale = other.interval / self.interval
        for key, count in other.counts.items():
            scaled = count if scale == 1.0 else max(
                1, round(count * scale))
            self.counts[key] = self.counts.get(key, 0) + scaled

    # -- reading -----------------------------------------------------------

    def phase_self_seconds(self) -> Dict[str, float]:
        """Sampled self-time per pipeline phase, seconds."""
        out: Dict[str, float] = {}
        for (phase, _stack), count in self.counts.items():
            out[phase] = out.get(phase, 0.0) + count * self.interval
        return {phase: round(seconds, 6)
                for phase, seconds in sorted(out.items())}

    def function_self_seconds(self) -> Dict[str, float]:
        """Sampled self-time per *leaf* frame (the function actually on
        CPU), seconds, descending."""
        out: Dict[str, float] = {}
        for (_phase, stack), count in self.counts.items():
            leaf = stack[-1] if stack else "<unknown>"
            out[leaf] = out.get(leaf, 0.0) + count * self.interval
        return dict(sorted(((name, round(s, 6))
                            for name, s in out.items()),
                           key=lambda item: (-item[1], item[0])))

    def hot_loop_seconds(self) -> Dict[str, float]:
        """Sampled time inside the known solver/tabulation hot loops
        (a sample counts toward the innermost marker on its stack)."""
        out: Dict[str, float] = {}
        for (_phase, stack), count in self.counts.items():
            for frame in reversed(stack):
                name = frame.rsplit(".", 1)[-1]
                label = HOT_LOOPS.get(name)
                if label is not None:
                    out[label] = out.get(label, 0.0) + \
                        count * self.interval
                    break
        return {name: round(s, 6) for name, s in sorted(out.items())}

    def collapsed_lines(self) -> List[str]:
        """Collapsed-stack flamegraph lines, ``phase;f1;f2 count``,
        sorted for stable diffs."""
        lines = []
        for (phase, stack), count in self.counts.items():
            frames = ";".join((phase,) + stack) if stack else phase
            lines.append(f"{frames} {count}")
        return sorted(lines)

    def payload(self) -> Dict[str, object]:
        """JSON-serializable summary (what ``TAJResult.profile``
        carries): totals per phase and hot loop, the heaviest leaves,
        and the sample bookkeeping needed to interpret them."""
        functions = self.function_self_seconds()
        return {
            "interval_seconds": self.interval,
            "samples": self.samples,
            "phase_self_seconds": self.phase_self_seconds(),
            "hot_loop_seconds": self.hot_loop_seconds(),
            "top_functions": dict(list(functions.items())[:15]),
        }


def write_collapsed(data: ProfileData, path: str) -> int:
    """Write the collapsed-stack file; returns the line count.  Render
    with e.g. ``flamegraph.pl profile.txt > profile.svg``."""
    lines = data.collapsed_lines()
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    return len(lines)


def _capture(frame, max_depth: int) -> Tuple[str, ...]:
    """Root-first ``"file.function"`` stack of ``frame``, trimmed of
    the profiler's own frames."""
    frames: List[str] = []
    while frame is not None and len(frames) < max_depth:
        code = frame.f_code
        filename = code.co_filename.rsplit("/", 1)[-1]
        if filename not in _SELF_FILES:
            frames.append(f"{filename[:-3]}.{code.co_name}"
                          if filename.endswith(".py")
                          else f"{filename}.{code.co_name}")
        frame = frame.f_back
    frames.reverse()
    return tuple(frames)


class SamplingProfiler:
    """Periodic stack sampler with phase attribution.

    ``tracer`` (a :class:`~repro.obs.tracer.Tracer`) supplies the
    current phase: the outermost open ``phase.*`` span, read at sample
    time.  Without one, every sample lands under ``fixed_phase``.

    Thread-safety: ``start``/``stop``/``pause``/``resume`` are intended
    for the owning thread; the sample handlers only append to the data
    dict, which the GIL serializes.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 tracer: Optional[object] = None,
                 backend: str = "auto",
                 fixed_phase: str = DEFAULT_PHASE,
                 max_depth: int = 64) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if backend not in ("auto", "signal", "thread"):
            raise ValueError(f"unknown profiler backend {backend!r}")
        self.interval = interval
        self.tracer = tracer
        self.fixed_phase = fixed_phase
        self.max_depth = max_depth
        self.data = ProfileData(interval)
        self.backend = self._pick_backend(backend)
        self.running = False
        self._paused = False
        self._prev_handler = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._target_ident: Optional[int] = None

    @staticmethod
    def _pick_backend(requested: str) -> str:
        if requested != "auto":
            return requested
        on_main = threading.current_thread() is threading.main_thread()
        if on_main and hasattr(signal, "setitimer"):
            return "signal"
        return "thread"

    # -- phase attribution -------------------------------------------------

    def _current_phase(self) -> str:
        tracer = self.tracer
        if tracer is None:
            return self.fixed_phase
        stack = getattr(tracer, "_stack", None)
        if not stack:
            return self.fixed_phase
        # Roots of the span forest are the pipeline phases; the
        # outermost open span names the one we are inside.
        root = stack[0]
        name = root.name
        if name.startswith("phase."):
            return name[len("phase."):]
        return name or self.fixed_phase

    # -- signal backend ----------------------------------------------------

    def _on_signal(self, _signum, frame) -> None:
        if self._paused:
            return
        self.data.add(self._current_phase(),
                      _capture(frame, self.max_depth))

    # -- thread backend ----------------------------------------------------

    def _sample_loop(self) -> None:
        ident = self._target_ident
        while not self._stop_event.wait(self.interval):
            if self._paused:
                continue
            frame = sys._current_frames().get(ident)
            if frame is None:
                continue
            self.data.add(self._current_phase(),
                          _capture(frame, self.max_depth))

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._paused = False
        if self.backend == "signal":
            self._prev_handler = signal.signal(signal.SIGPROF,
                                               self._on_signal)
            signal.setitimer(signal.ITIMER_PROF, self.interval,
                             self.interval)
        else:
            self._target_ident = threading.get_ident()
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._sample_loop, name="repro-profiler",
                daemon=True)
            self._thread.start()
        self.running = True
        return self

    def stop(self) -> ProfileData:
        if not self.running:
            return self.data
        if self.backend == "signal":
            signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
            if self._prev_handler is not None:
                signal.signal(signal.SIGPROF, self._prev_handler)
                self._prev_handler = None
        else:
            self._stop_event.set()
            if self._thread is not None:
                self._thread.join(timeout=self.interval * 20)
                self._thread = None
        self.running = False
        return self.data

    def pause(self) -> None:
        """Suspend sampling without tearing the backend down — used by
        the taint engine while the worker pool runs, so parent
        pool-wait frames do not double-count the shard work the
        workers profile themselves."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    def absorb(self, data: Optional[ProfileData]) -> None:
        """Merge a worker shard's shipped profile into this one."""
        if data is not None:
            self.data.merge(data)

    def payload(self) -> Dict[str, object]:
        return self.data.payload()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def profile_shard(interval: Optional[float]):
    """Worker-side helper: a started profiler attributing everything to
    the taint phase (shards are taint-phase work by construction), or
    ``None`` when profiling is off.  The worker runs single-shard, so
    the thread backend is chosen only off the main thread."""
    if interval is None:
        return None
    return SamplingProfiler(interval=interval, fixed_phase="taint").start()

"""The central metrics registry: counters, gauges, and histograms.

Four instrument families, all addressed by dotted names
(``pointer.propagations``, ``memory.peak_bytes`` — conventions in
``docs/observability.md``):

* **counters** — monotonically accumulated totals (``inc``);
* **gauges** — last-written values, with a high-water variant
  (``gauge`` / ``gauge_max``);
* **timers** — histograms of seconds (``record_time``), summarized as
  count/total/p50/p95/max;
* **value histograms** — histograms of unitless magnitudes such as
  points-to set sizes or worklist depths (``record_value``), with the
  same summary shape.

:meth:`MetricsRegistry.snapshot` returns the whole registry as plain
JSON-serializable dicts; that snapshot is what ``TAJResult.metrics``
carries, what ``--metrics FILE`` writes, and what the bench artifacts
embed.  :class:`NullMetricsRegistry` is the disabled-mode no-op.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if q <= 0.0:
        return sorted_values[0]
    if q >= 100.0:
        return sorted_values[-1]
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[max(rank, 1) - 1]


class Histogram:
    """Raw-observation histogram summarized on demand."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0, "total": 0.0, "p50": 0.0, "p95": 0.0,
                    "max": 0.0}
        ordered = sorted(self.values)
        return {
            "count": len(ordered),
            "total": sum(ordered),
            "p50": percentile(ordered, 50.0),
            "p95": percentile(ordered, 95.0),
            "max": ordered[-1],
        }


class MetricsRegistry:
    """Counters + gauges + timer/value histograms behind one facade."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, Histogram] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- writing -----------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """High-water gauge: keeps the maximum ever written."""
        if value > self._gauges.get(name, float("-inf")):
            self._gauges[name] = value

    def record_time(self, name: str, seconds: float) -> None:
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Histogram()
        timer.observe(seconds)

    def record_value(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def record_values(self, name: str, values: Iterable[float]) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.values.extend(values)

    def merge_counters(self, counters: Mapping[str, float],
                       prefix: str = "") -> None:
        """Absorb a plain stats dict (e.g. the solver's kernel counters)
        under an optional dotted prefix."""
        for name, value in counters.items():
            self.inc(prefix + name, value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Absorb another registry (e.g. a parallel worker's snapshot).

        Counters sum; gauges keep the maximum (a worker's high-water
        mark is a lower bound on the run's); timer and value histograms
        concatenate their raw observations, so merged summaries are the
        summaries of the pooled data.  Disabled registries contribute
        nothing.
        """
        if not getattr(other, "enabled", False):
            return
        for name, value in other._counters.items():
            self.inc(name, value)
        for name, value in other._gauges.items():
            self.gauge_max(name, value)
        for name, hist in other._timers.items():
            mine = self._timers.get(name)
            if mine is None:
                mine = self._timers[name] = Histogram()
            mine.values.extend(hist.values)
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram()
            mine.values.extend(hist.values)

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def timer_summary(self, name: str) -> Dict[str, float]:
        timer = self._timers.get(name)
        return timer.summary() if timer else Histogram().summary()

    def snapshot(self) -> Dict[str, Dict]:
        """The registry as JSON-serializable plain dicts."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "timers": {name: self._timers[name].summary()
                       for name in sorted(self._timers)},
            "histograms": {name: self._histograms[name].summary()
                           for name in sorted(self._histograms)},
        }


class NullMetricsRegistry:
    """Disabled-mode registry: every write is a no-op."""

    enabled = False

    def inc(self, name: str, amount: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def record_time(self, name: str, seconds: float) -> None:
        pass

    def record_value(self, name: str, value: float) -> None:
        pass

    def record_values(self, name: str, values: Iterable[float]) -> None:
        pass

    def merge_counters(self, counters: Mapping[str, float],
                       prefix: str = "") -> None:
        pass

    def merge(self, other: object) -> None:
        pass

    def counter_value(self, name: str) -> float:
        return 0

    def gauge_value(self, name: str) -> None:
        return None

    def timer_summary(self, name: str) -> Dict[str, float]:
        return Histogram().summary()

    def snapshot(self) -> Dict[str, Dict]:
        return {}


NULL_REGISTRY = NullMetricsRegistry()

"""The witness-guided replay oracle.

Takes the flows a static analysis reported, derives a
partial-instrumentation plan from their witness chains
(:mod:`repro.confirm.plan`), replays the program concretely in both
interpreter modes (normal, and fault-injection for catch-block /
INFO_LEAK flows), and classifies every flow as ``confirmed`` /
``refuted`` / ``inconclusive`` (:mod:`repro.confirm.verdicts`).

The static analysis ran on the *modeled* program while the replay runs
on the execution-prepared one (:func:`execution_options`: entrypoint
synthesis only), so instruction ids differ between the two; flows and
dynamic events are therefore matched on containing-method qname +
sink display + label kind + sanitizer annotations, never on iids.

Matching granularity is therefore the *method*: when several reported
flows share a sink method and display (e.g. adjacent ``println`` calls
in the motivating example), one genuinely tainted sink event witnesses
them all, and the oracle resolves the ambiguity optimistically —
confirming a flow no unambiguous evidence refutes.  This caps measured
oracle precision on corpora whose cases stack same-display sinks in
one method (``benchmarks/confirmation.py`` records it honestly); the
generated corpus plants one flow per method, where the attribution is
exact.

Determinism: the replay is a pure function of (program, seed, fault
mode) — sources mint seeded payloads, the schedule is sequential —
and verdicts are canonically ordered, so repeated runs and any
``--jobs N`` analysis of the same program produce byte-identical
verdict lists.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..interp.interpreter import RunResult, execute
from ..interp.validation import parse_label, prepare_for_execution
from ..obs import DISABLED
from ..taint.rules import RuleSet, SecurityRule, default_rules
from .plan import FlowProbe, InstrumentationPlan, build_plan
from .verdicts import (CONFIRMED, INCONCLUSIVE, REFUTED,
                       ConfirmationResult, FlowVerdict,
                       canonical_verdicts)

# Default payload seed: nonzero so replay payloads are visibly
# seed-stamped (``<text#s1>``) and distinct from legacy validation runs.
DEFAULT_SEED = 1


class ReplayOracle:
    """Confirms or refutes reported flows by partial-instrumentation
    replay."""

    def __init__(self, rules: Optional[RuleSet] = None,
                 fuel: int = 200_000, seed: int = DEFAULT_SEED,
                 obs=None) -> None:
        self.rules = rules or default_rules()
        self.fuel = fuel
        self.seed = seed
        self.obs = obs or DISABLED

    # -- public API ---------------------------------------------------------

    def confirm(self, flows: Iterable, sources: List[str],
                deployment_descriptor: Optional[Dict[str, str]] = None,
                program=None) -> ConfirmationResult:
        """Classify ``flows`` against a replay of ``sources``.

        ``program`` may carry a pre-built execution program (from
        :func:`prepare_for_execution`) to share across configs.
        """
        plan = build_plan(flows)
        result = ConfirmationResult(
            seed=self.seed,
            instrumented_sources=len(plan.source_methods),
            instrumented_sinks=len(plan.sink_methods))
        metrics = self.obs.metrics
        metrics.inc("confirm.probes", len(plan))
        if not plan.probes:
            return result
        if program is None:
            with self.obs.span("confirm.prepare"):
                program = prepare_for_execution(sources,
                                                deployment_descriptor)
        metrics.gauge("confirm.instrumented_methods",
                      len(plan.instrumented_methods))

        runs = self._replay(program, plan, result)
        verdicts = [self._classify(probe, program, runs)
                    for probe in plan.probes]
        result.verdicts = canonical_verdicts(verdicts)
        for name, count in result.counts().items():
            if count:
                metrics.inc(f"confirm.{name}", count)
        return result

    # -- replay -------------------------------------------------------------

    def _replay(self, program, plan: InstrumentationPlan,
                result: ConfirmationResult
                ) -> List[Tuple[bool, RunResult]]:
        """One partially-instrumented run per interpreter mode."""
        runs: List[Tuple[bool, RunResult]] = []
        for fault in (False, True):
            with self.obs.span("confirm.replay", fault=fault) as span:
                run = execute(program, fuel=self.fuel,
                              fault_injection=fault,
                              source_methods=plan.source_methods,
                              sink_methods=plan.sink_methods,
                              seed=self.seed)
                span.set(steps=run.steps, events=len(run.events),
                         aborted=len(run.aborted_entrypoints))
            result.replays += 1
            result.replay_steps += run.steps
            result.aborted_entrypoints.extend(run.aborted_entrypoints)
            result.fuel_exhausted.extend(run.fuel_exhausted)
            runs.append((fault, run))
        return runs

    # -- classification -----------------------------------------------------

    def _classify(self, probe: FlowProbe, program,
                  runs: List[Tuple[bool, RunResult]]) -> FlowVerdict:
        try:
            rule = self.rules.by_name(probe.rule)
        except KeyError:
            return self._verdict(probe, INCONCLUSIVE, "unknown-rule")
        if program.lookup_method(probe.sink_method) is None:
            return self._verdict(probe, INCONCLUSIVE,
                                 "sink-not-executable")
        if program.lookup_method(probe.source_method) is None:
            return self._verdict(probe, INCONCLUSIVE,
                                 "source-not-executable")

        witnessing: List[str] = []     # labels that confirm the flow
        sanitized: List[str] = []      # matching kind/origin, endorsed
        witness_fault_only = True
        sink_reached_with_source = False
        sink_reached = False
        source_entered = False
        for fault, run in runs:
            entered = probe.source_method in run.entered_methods
            source_entered = source_entered or entered
            for event in run.events:
                if event.method != probe.sink_method:
                    continue
                if event.display != probe.sink_display:
                    continue
                sink_reached = True
                sink_reached_with_source = (sink_reached_with_source
                                            or entered)
                for label in event.all_taint:
                    parsed = parse_label(label)
                    if parsed.origin_method != probe.source_method:
                        continue
                    if parsed.witnesses(rule.name,
                                        frozenset(rule.sanitizers)):
                        witnessing.append(label)
                        if not fault:
                            witness_fault_only = False
                    elif self._kind_matches(parsed, rule):
                        sanitized.append(label)

        if witnessing:
            return self._verdict(probe, CONFIRMED, "tainted-witness",
                                 labels=witnessing,
                                 fault_replay=witness_fault_only)
        if sanitized:
            return self._verdict(probe, REFUTED, "sanitized",
                                 labels=sanitized)
        if sink_reached_with_source:
            return self._verdict(probe, REFUTED, "no-tainted-witness")
        budget_hit = any(run.fuel_exhausted for _, run in runs)
        if budget_hit:
            return self._verdict(probe, INCONCLUSIVE,
                                 "replay-budget-exhausted")
        if not source_entered:
            return self._verdict(probe, INCONCLUSIVE,
                                 "source-not-reached")
        return self._verdict(probe, INCONCLUSIVE, "sink-not-reached")

    @staticmethod
    def _kind_matches(parsed, rule: SecurityRule) -> bool:
        from ..interp.validation import LABEL_KINDS
        return parsed.kind in LABEL_KINDS.get(rule.name, {"src"})

    @staticmethod
    def _verdict(probe: FlowProbe, verdict: str, reason: str,
                 labels: Optional[List[str]] = None,
                 fault_replay: bool = False) -> FlowVerdict:
        return FlowVerdict(
            rule=probe.rule, source=probe.source, sink=probe.sink,
            sink_display=probe.sink_display, verdict=verdict,
            reason=reason,
            labels=tuple(sorted(set(labels or ()))),
            fault_replay=fault_replay)


def confirm_result(result, sources: List[str],
                   deployment_descriptor: Optional[Dict[str, str]]
                   = None,
                   rules: Optional[RuleSet] = None,
                   fuel: int = 200_000, seed: int = DEFAULT_SEED,
                   obs=None, program=None) -> ConfirmationResult:
    """Confirm every flow of a ``TAJResult`` (convenience wrapper)."""
    oracle = ReplayOracle(rules=rules, fuel=fuel, seed=seed, obs=obs)
    return oracle.confirm(result.flows, sources,
                          deployment_descriptor, program=program)

"""Partial-instrumentation plans derived from flow witness chains.

arXiv 2411.19354 observes that to triage a *candidate* flow
dynamically, it suffices to instrument the methods on that flow's
path — everything else can run uninstrumented.  The static engine
already names those methods: every :class:`~repro.taint.flows.TaintFlow`
carries its source seed, its sink, and the library call point (LCP,
paper §5), each a ``Method@iid`` statement reference whose containing
method is on the witness chain.  A plan is the union of those methods
across all flows under confirmation: sources may only mint taint labels
inside ``source_methods``, sinks only record events inside
``sink_methods`` (see ``Interpreter`` partial instrumentation).

Plans are built from flows, not from the provenance payload, so the
oracle works on any ``TAJResult``; when provenance *is* enabled the
recorded witness chains describe exactly the same method set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple


@dataclass(frozen=True)
class FlowProbe:
    """One reported flow, reduced to what replay classification needs.

    All fields are plain strings/ints — probes are detached from the
    analysis program so they serialize and compare stably (verdict
    determinism across ``--jobs`` counts rides on this).
    """

    rule: str
    source: str               # "Method@iid" statement references
    sink: str
    sink_display: str         # e.g. "PrintWriter.println"
    lcp: str
    via_carrier: bool
    source_method: str        # containing-method qnames: the witness
    sink_method: str          # chain that gets instrumented
    lcp_method: str

    @staticmethod
    def from_flow(flow) -> "FlowProbe":
        """Build a probe from a :class:`~repro.taint.flows.TaintFlow`."""
        return FlowProbe(
            rule=flow.rule,
            source=str(flow.source),
            sink=str(flow.sink),
            sink_display=flow.sink_display,
            lcp=str(flow.lcp),
            via_carrier=flow.via_carrier,
            source_method=flow.source.method,
            sink_method=flow.sink.method,
            lcp_method=flow.lcp.method,
        )

    @property
    def witness_methods(self) -> FrozenSet[str]:
        return frozenset((self.source_method, self.sink_method,
                          self.lcp_method))

    def sort_key(self) -> Tuple:
        return (self.rule, self.source, self.sink, self.sink_display)


@dataclass(frozen=True)
class InstrumentationPlan:
    """The union instrumentation for one batch of probes."""

    probes: Tuple[FlowProbe, ...]
    source_methods: FrozenSet[str]
    sink_methods: FrozenSet[str]

    @property
    def instrumented_methods(self) -> FrozenSet[str]:
        return self.source_methods | self.sink_methods

    def __len__(self) -> int:
        return len(self.probes)


def build_plan(flows: Iterable) -> InstrumentationPlan:
    """Derive the partial-instrumentation plan for ``flows``.

    Probes are deduplicated by (rule, source, sink) and sorted into a
    canonical order — mirroring
    :func:`~repro.taint.flows.canonical_flows` so verdict lists come
    out identical regardless of how the flow list was produced.
    """
    seen = {}
    for flow in flows:
        probe = FlowProbe.from_flow(flow)
        key = (probe.rule, probe.source, probe.sink)
        if key not in seen:
            seen[key] = probe
    probes: List[FlowProbe] = sorted(seen.values(),
                                     key=FlowProbe.sort_key)
    sources = frozenset(p.source_method for p in probes)
    sinks = frozenset(p.sink_method for p in probes)
    return InstrumentationPlan(probes=tuple(probes),
                               source_methods=sources,
                               sink_methods=sinks)

"""``repro.confirm`` — dynamic confirmation of reported flows.

The static analysis says *what might flow*; this package says which of
those reports are real.  For each reported flow it instruments only the
methods on the flow's witness chain (partial instrumentation, arXiv
2411.19354), replays the program concretely in :mod:`repro.interp`
with seeded deterministic inputs, and issues a verdict:
``confirmed`` / ``refuted`` / ``inconclusive``.

Pipeline integration: ``TAJConfig.with_confirm()`` / CLI ``--confirm``
run the oracle as a ``phase.confirm`` span after reporting and attach
the :class:`ConfirmationResult` to ``TAJResult.confirmation``;
``benchmarks/confirmation.py`` scores the verdicts against planted
ground truth corpus-wide.  Semantics: ``docs/validation.md``.
"""

from .oracle import DEFAULT_SEED, ReplayOracle, confirm_result
from .plan import FlowProbe, InstrumentationPlan, build_plan
from .verdicts import (CONFIRMED, INCONCLUSIVE, REFUTED, VERDICT_ORDER,
                       ConfirmationResult, FlowVerdict,
                       canonical_verdicts)

__all__ = [
    "CONFIRMED", "ConfirmationResult", "DEFAULT_SEED", "FlowProbe",
    "FlowVerdict", "INCONCLUSIVE", "InstrumentationPlan", "REFUTED",
    "ReplayOracle", "VERDICT_ORDER", "build_plan", "canonical_verdicts",
    "confirm_result",
]

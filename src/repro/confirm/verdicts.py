"""Flow verdicts: the replay oracle's classification vocabulary.

Every reported flow gets exactly one verdict:

* ``confirmed`` — a replay delivered a value carrying a matching taint
  label (right kind for the rule, minted in the flow's source method,
  no rule sanitizer applied) into the flow's sink.
* ``refuted`` — the replay reached the flow's sink with the source
  method executed, but the only matching labels arriving were
  sanitized (``reason="sanitized"``) or no matching label arrived at
  all (``reason="no-tainted-witness"``).
* ``inconclusive`` — the replay could not decide: the source or sink
  method does not exist in the execution program
  (``source-not-executable`` / ``sink-not-executable``), was never
  reached (``source-not-reached`` / ``sink-not-reached``), or the
  interpreter's step budget expired mid-run
  (``replay-budget-exhausted``).

``canonical_verdicts`` fixes the output order the same way
:func:`~repro.taint.flows.canonical_flows` does for flows, which is
what makes ``--confirm`` output byte-identical across ``--jobs``
counts and repeated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

CONFIRMED = "confirmed"
REFUTED = "refuted"
INCONCLUSIVE = "inconclusive"

# Rendering/summary order: most decisive first.
VERDICT_ORDER = (CONFIRMED, REFUTED, INCONCLUSIVE)


@dataclass(frozen=True)
class FlowVerdict:
    """The replay oracle's judgment on one reported flow."""

    rule: str
    source: str               # "Method@iid", matching TaintFlow refs
    sink: str
    sink_display: str
    verdict: str              # CONFIRMED | REFUTED | INCONCLUSIVE
    reason: str               # e.g. "tainted-witness", "sanitized"
    labels: Tuple[str, ...] = ()   # the dynamic labels that decided it
    fault_replay: bool = False     # decided only by the fault-mode run

    def sort_key(self) -> Tuple:
        """Stable total order from rendered strings only (the same
        discipline as :meth:`TaintFlow.sort_key`)."""
        return (self.rule, self.source, self.sink, self.sink_display)

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "source": self.source,
            "sink": self.sink,
            "sink_display": self.sink_display,
            "verdict": self.verdict,
            "reason": self.reason,
            "labels": list(self.labels),
            "fault_replay": self.fault_replay,
        }


def canonical_verdicts(verdicts: Iterable[FlowVerdict]
                       ) -> List[FlowVerdict]:
    """Dedupe by (rule, source, sink) and sort by
    :meth:`FlowVerdict.sort_key` — one verdict per reported flow, in a
    process-independent order."""
    best: Dict[Tuple, FlowVerdict] = {}
    for verdict in verdicts:
        key = (verdict.rule, verdict.source, verdict.sink)
        kept = best.get(key)
        if kept is None or verdict.sort_key() < kept.sort_key():
            best[key] = verdict
    return sorted(best.values(), key=FlowVerdict.sort_key)


@dataclass
class ConfirmationResult:
    """Everything one confirm pass produced."""

    verdicts: List[FlowVerdict] = field(default_factory=list)
    seed: int = 0
    replays: int = 0              # interpreter runs performed (modes)
    replay_steps: int = 0         # total interpreter steps across them
    instrumented_sources: int = 0  # |plan.source_methods|
    instrumented_sinks: int = 0    # |plan.sink_methods|
    aborted_entrypoints: List[str] = field(default_factory=list)
    fuel_exhausted: List[str] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out = {v: 0 for v in VERDICT_ORDER}
        for verdict in self.verdicts:
            out[verdict.verdict] = out.get(verdict.verdict, 0) + 1
        return out

    @property
    def confirmed(self) -> List[FlowVerdict]:
        return [v for v in self.verdicts if v.verdict == CONFIRMED]

    @property
    def refuted(self) -> List[FlowVerdict]:
        return [v for v in self.verdicts if v.verdict == REFUTED]

    @property
    def inconclusive(self) -> List[FlowVerdict]:
        return [v for v in self.verdicts if v.verdict == INCONCLUSIVE]

    def verdict_for(self, rule: str, source: str,
                    sink: str) -> FlowVerdict:
        """The verdict for one flow identity; raises ``KeyError`` when
        the flow was not under confirmation."""
        for verdict in self.verdicts:
            if (verdict.rule, verdict.source, verdict.sink) == (
                    rule, source, sink):
                return verdict
        raise KeyError((rule, source, sink))

    def to_payload(self) -> Dict:
        """JSON-serializable form (CLI ``--json`` / bench artifacts)."""
        return {
            "seed": self.seed,
            "replays": self.replays,
            "replay_steps": self.replay_steps,
            "instrumented_sources": self.instrumented_sources,
            "instrumented_sinks": self.instrumented_sinks,
            "aborted_entrypoints": list(self.aborted_entrypoints),
            "fuel_exhausted": list(self.fuel_exhausted),
            "counts": self.counts(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

"""Structured diagnostics: every failure the pipeline absorbs leaves one.

A :class:`Diagnostic` is the machine-readable record of a fault the
pipeline survived — a quarantined source unit, an injected fault, a
phase that had to be abandoned.  The contract enforced by the
fault-injection harness (``benchmarks/fault_injection.py``) is that no
absorbed failure is silent: a run that degraded carries at least one
diagnostic or degradation explaining why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Diagnostic:
    """One absorbed failure.

    ``phase`` uses the pipeline phase names (``frontend``, ``modeling``,
    ``pointer_analysis``, ``sdg``, ``taint``, ``reporting``); ``kind``
    is a stable machine key (``source-error``, ``injected-fault``,
    ``budget``, ``deadline``, ``internal-error``).
    """

    phase: str
    kind: str
    message: str
    source_index: Optional[int] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"phase": self.phase, "kind": self.kind,
                                  "message": self.message}
        if self.source_index is not None:
            out["source_index"] = self.source_index
        if self.detail:
            out["detail"] = dict(self.detail)
        return out

    def render(self) -> str:
        where = f" (source #{self.source_index})" \
            if self.source_index is not None else ""
        return f"[{self.phase}] {self.kind}{where}: {self.message}"


def classify_exception(exc: BaseException) -> str:
    """Map an exception to a diagnostic ``kind`` without importing the
    whole pipeline (matched by class name so this module stays leaf)."""
    for klass in type(exc).__mro__:
        name = klass.__name__
        if name == "SourceError":
            return "source-error"
        if name == "BudgetExhausted":
            return "budget"
        if name == "DeadlineExceeded":
            return "deadline"
        if name == "InjectedFault":
            return "injected-fault"
    return "internal-error"


class DiagnosticsCollector:
    """Accumulates :class:`Diagnostic` records for one analysis run."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    def record(self, phase: str, kind: str, message: str,
               source_index: Optional[int] = None,
               **detail: object) -> Diagnostic:
        diag = Diagnostic(phase=phase, kind=kind, message=message,
                          source_index=source_index,
                          detail=dict(detail) if detail else {})
        self.diagnostics.append(diag)
        return diag

    def absorb(self, phase: str, exc: BaseException,
               source_index: Optional[int] = None,
               **detail: object) -> Diagnostic:
        """Record an exception as a diagnostic, classifying its kind."""
        return self.record(phase, classify_exception(exc), str(exc),
                           source_index=source_index,
                           exception=type(exc).__name__, **detail)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [d.to_dict() for d in self.diagnostics]

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

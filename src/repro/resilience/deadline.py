"""Cooperative wall-clock deadlines for the analysis pipeline.

The paper's §6 budgets bound *work* (call-graph nodes, heap
transitions, abstract state units); a :class:`Deadline` bounds *time*.
It is cooperative: long-running loops — the pointer solver's node loop,
the tabulation worklist, the CI slicer's BFS — call :meth:`check` at
their iteration seams, and an expired deadline surfaces as
:class:`DeadlineExceeded` there rather than at some arbitrary stack
depth.  The degradation ladder (``repro.resilience.context``) treats it
exactly like :class:`~repro.bounds.BudgetExhausted`: already-collected
flows are kept and the run is reported as ``partial-deadline``.

The clock is injectable so tests (and the fault injector's
``trip-deadline`` action) can drive expiry deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class DeadlineExceeded(Exception):
    """Raised at a cooperative check point once the deadline passed."""

    def __init__(self, phase: str, limit_seconds: float,
                 elapsed_seconds: float) -> None:
        self.phase = phase
        self.limit_seconds = limit_seconds
        self.elapsed_seconds = elapsed_seconds
        super().__init__(
            f"deadline exceeded in {phase}: "
            f"{elapsed_seconds:.3f}s elapsed > {limit_seconds:.3f}s budget")


class Deadline:
    """A wall-clock budget, armed on first use.

    ``seconds`` is the total budget; the clock starts on the first
    :meth:`check`/:meth:`remaining` call (i.e. when the pipeline starts
    consuming it), not at construction.
    """

    def __init__(self, seconds: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.seconds = float(seconds)
        self._clock = clock
        self._started: Optional[float] = None
        self._tripped = False

    # -- state -------------------------------------------------------------

    def start(self) -> "Deadline":
        if self._started is None:
            self._started = self._clock()
        return self

    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return max(0.0, self._clock() - self._started)

    def remaining(self) -> float:
        """Seconds left (0.0 once expired); arms the deadline."""
        self.start()
        if self._tripped:
            return 0.0
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        self.start()
        return self._tripped or self.elapsed() > self.seconds

    def trip(self) -> None:
        """Force immediate expiry (fault injection: ``trip-deadline``)."""
        self.start()
        self._tripped = True

    @property
    def tripped(self) -> bool:
        """Whether :meth:`trip` forced expiry (as opposed to the clock
        running out).  A pool worker ships this home so the parent's
        deadline expires too — a forced trip in a child process is
        invisible to the parent's own clock."""
        return self._tripped

    def check(self, phase: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(phase, self.seconds, self.elapsed())

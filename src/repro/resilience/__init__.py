"""``repro.resilience`` — deadlines, graceful degradation, and fault
injection for the TAJ pipeline.

The paper's headline robustness claim (§6) is that the bounded analysis
stays *useful under bounded resources*: where exact CS thin slicing
aborts out-of-memory, the bounded hybrid keeps reporting.  This package
generalizes that into a subsystem:

* :class:`Deadline` / :class:`DeadlineExceeded` — a cooperative
  wall-clock budget checked at the pointer-solver, tabulation, and
  slicing seams, alongside §6's work budgets;
* :class:`Degradation` + the ladder (``cs`` → ``hybrid`` → ``ci`` →
  abandon-remaining) — budget/deadline failures descend one rung per
  rule, always keeping the flows already collected;
* :class:`Diagnostic` / :class:`DiagnosticsCollector` — the structured
  record of every absorbed failure, including per-source quarantine in
  the frontend;
* :class:`Fault` / :class:`FaultPlan` / :class:`FaultInjector` —
  deterministic scripted faults at the phase seams, so tests and CI
  (``benchmarks/fault_injection.py``) can prove each seam failure yields
  a ``TAJResult`` with diagnostics, never an unhandled traceback;
* :class:`ResilienceContext` — the per-run bundle threaded through the
  pipeline, whose :meth:`~ResilienceContext.completeness` summarizes the
  run (``complete`` / ``partial-budget`` / ``partial-deadline`` /
  ``partial-fault`` / ``failed``).

Semantics and the fault-plan format: ``docs/robustness.md``.
"""

from .context import (COMPLETE, FAILED, LADDER, PARTIAL_BUDGET,
                      PARTIAL_CRASH, PARTIAL_DEADLINE, PARTIAL_FAULT,
                      Degradation, ResilienceContext, next_strategy,
                      trigger_of)
from .deadline import Deadline, DeadlineExceeded
from .diagnostics import Diagnostic, DiagnosticsCollector, \
    classify_exception
from .faults import (ACTIONS, EXCEPTIONS, PROCESS_ACTIONS, PROCESS_SEAMS,
                     Fault, FaultInjector, FaultPlan, InjectedFault,
                     WorkerCrashError)

__all__ = [
    "ACTIONS", "COMPLETE", "Deadline", "DeadlineExceeded", "Degradation",
    "Diagnostic", "DiagnosticsCollector", "EXCEPTIONS", "FAILED", "Fault",
    "FaultInjector", "FaultPlan", "InjectedFault", "LADDER",
    "PARTIAL_BUDGET", "PARTIAL_CRASH", "PARTIAL_DEADLINE", "PARTIAL_FAULT",
    "PROCESS_ACTIONS", "PROCESS_SEAMS", "ResilienceContext",
    "WorkerCrashError", "classify_exception", "next_strategy",
    "trigger_of",
]

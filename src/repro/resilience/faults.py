"""Deterministic fault injection at the pipeline's phase seams.

Every cooperative check point in the pipeline is a named *seam*:

========================  ====================================================
seam                      fired
========================  ====================================================
``frontend.source``       once per application source unit (supports
                          ``corrupt``: the source text is replaced)
``modeling.pass``         once per model pass in :func:`repro.modeling.prepare`
``pointer.solve``         once per call-graph node the solver processes
``sdg.build``             once, before dependence-graph construction
``tabulation.step``       once per tabulation worklist pop (hybrid / CS)
``ci.step``               once per CI-slicer BFS pop
``slicing.hybrid``        once per rule attempted with the hybrid strategy
``slicing.cs``            once per rule attempted with the CS strategy
``slicing.ci``            once per rule attempted with the CI strategy
``reporting.build``       once, before §5 report construction
``worker.init``           once per pool-worker initialization (process
                          actions only; ``at`` is ignored, ``attempts``
                          counts pool generations)
``worker.shard``          once per shard execution in a pool worker
                          (process actions only; ``at`` is the *shard
                          index*, ``attempts`` the shard's retry count)
========================  ====================================================

A :class:`FaultPlan` scripts faults against those seams: *"raise
BudgetExhausted on the 2nd rule sliced"*, *"trip the deadline at
tabulation step 40"*, *"corrupt source unit 0"*.  Firing is purely
counter-driven — the Nth visit to a seam fires the fault — so a plan
replays identically on every run, which is what lets the test suite and
the CI job (``benchmarks/fault_injection.py``) prove that every seam
failure yields a :class:`~repro.core.results.TAJResult` with
diagnostics instead of an unhandled traceback.

The ``worker.*`` seams script **process-level crash modes** for the
parallel sweep's supervisor (``repro.parallel.supervisor``): a worker
that SIGKILLs itself (``kill-worker``), wedges until the heartbeat
watchdog reaps it (``hang-worker``), or ships home garbage instead of a
:class:`~repro.taint.engine.ShardOutcome` (``corrupt-outcome``).  These
actions only ever execute inside a pool worker process — in the parent
(the serial quarantine re-run of a poison shard) a matching crash fault
raises :class:`WorkerCrashError` instead, standing in for "this shard
deterministically kills its host process".  Matching is positional, not
counter-driven: ``at`` names the shard index (``-1`` = every shard) and
``attempts`` bounds how many retries keep crashing (``-1`` = all of
them), so crash plans replay identically under any worker scheduling.

Plans serialize to/from plain dicts (the *fault-plan format* of
``docs/robustness.md``) so CI jobs can keep them as JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..bounds import BudgetExhausted
from ..lang.errors import SourceError
from .deadline import Deadline, DeadlineExceeded

# Process actions execute in (or stand for) a pool worker's *process*,
# not at a cooperative seam of its interpreter loop; the supervisor is
# the component that survives them.
PROCESS_ACTIONS = ("kill-worker", "hang-worker", "corrupt-outcome")
ACTIONS = ("raise", "trip-deadline", "corrupt") + PROCESS_ACTIONS
EXCEPTIONS = ("fault", "budget", "deadline", "source")

# Seams that only accept process actions (and vice versa).
PROCESS_SEAMS = ("worker.init", "worker.shard")

_CORRUPTION = "class { this is not jlang @@"


class InjectedFault(RuntimeError):
    """The generic scripted failure (``exception: "fault"``)."""


class WorkerCrashError(RuntimeError):
    """A scripted process crash matched outside a pool worker.

    Raised in the parent when a quarantined shard's serial re-run hits a
    ``kill-worker``/``hang-worker`` fault that still matches: actually
    executing the crash would take down the whole analysis, so the
    supervisor records the shard as crash-degraded instead
    (``docs/robustness.md``)."""


@dataclass
class Fault:
    """One scripted fault.

    ``at`` counts seam visits from 0: the fault fires on the visit whose
    ordinal equals ``at``.  ``action`` is ``raise`` (throw
    ``exception``), ``trip-deadline`` (force the run's deadline to
    expire, so the *next* deadline check raises), or ``corrupt``
    (replace the seam's payload — only meaningful for
    ``frontend.source``).

    Process actions (``worker.*`` seams) read the fields differently:
    ``at`` is the shard index (``-1`` = every shard) and ``attempts``
    bounds how many of that shard's attempts crash — ``1`` means only
    the first attempt dies (the retry recovers), ``-1`` means every
    attempt dies (the shard is poisoned).
    """

    seam: str
    at: int = 0
    action: str = "raise"
    exception: str = "fault"
    message: str = ""
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.exception not in EXCEPTIONS:
            raise ValueError(f"unknown fault exception {self.exception!r}")
        if (self.seam in PROCESS_SEAMS) != (self.action in PROCESS_ACTIONS):
            raise ValueError(
                f"fault action {self.action!r} does not pair with seam "
                f"{self.seam!r}: process actions {PROCESS_ACTIONS} belong "
                f"on the worker seams {PROCESS_SEAMS} and nowhere else")

    def is_process(self) -> bool:
        return self.action in PROCESS_ACTIONS

    def matches_attempt(self, ordinal: int, attempt: int) -> bool:
        """Does this process fault fire for attempt N of shard/generation
        ``ordinal``?"""
        if self.at not in (-1, ordinal):
            return False
        return self.attempts == -1 or attempt < self.attempts

    def to_dict(self) -> Dict[str, object]:
        return {"seam": self.seam, "at": self.at, "action": self.action,
                "exception": self.exception, "message": self.message,
                "attempts": self.attempts}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Fault":
        return Fault(seam=str(data["seam"]), at=int(data.get("at", 0)),
                     action=str(data.get("action", "raise")),
                     exception=str(data.get("exception", "fault")),
                     message=str(data.get("message", "")),
                     attempts=int(data.get("attempts", 1)))

    def build_exception(self) -> BaseException:
        message = self.message or f"injected fault at {self.seam}#{self.at}"
        if self.exception == "budget":
            return BudgetExhausted(f"injected:{self.seam}", 0)
        if self.exception == "deadline":
            return DeadlineExceeded(self.seam, 0.0, 0.0)
        if self.exception == "source":
            return SourceError(message)
        return InjectedFault(message)


@dataclass
class FaultPlan:
    """An ordered collection of scripted faults."""

    faults: List[Fault] = field(default_factory=list)

    @staticmethod
    def of(*faults: Fault) -> "FaultPlan":
        return FaultPlan(list(faults))

    @staticmethod
    def from_dicts(rows: Iterable[Dict[str, object]]) -> "FaultPlan":
        return FaultPlan([Fault.from_dict(row) for row in rows])

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        return FaultPlan.from_dicts(json.loads(text))

    def to_dicts(self) -> List[Dict[str, object]]:
        return [fault.to_dict() for fault in self.faults]

    def __bool__(self) -> bool:
        return bool(self.faults)


class FaultInjector:
    """Counts seam visits and fires the plan's faults deterministically.

    One injector instance belongs to one analysis run (counters are
    run-local state); build a fresh one per run from the shared plan.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._by_seam: Dict[str, List[Fault]] = {}
        for fault in plan.faults:
            self._by_seam.setdefault(fault.seam, []).append(fault)
        self._ticks: Dict[str, int] = {}
        self.fired: List[Fault] = []

    def visit(self, seam: str, deadline: Optional[Deadline] = None,
              payload: Optional[str] = None) -> Optional[str]:
        """Count one visit to ``seam`` and fire any scheduled fault.

        Returns the (possibly corrupted) payload; raises for ``raise``
        faults; trips ``deadline`` for ``trip-deadline`` faults.
        """
        faults = self._by_seam.get(seam)
        if faults is None:
            return payload
        tick = self._ticks.get(seam, 0)
        self._ticks[seam] = tick + 1
        for fault in faults:
            if fault.is_process() or fault.at != tick:
                continue
            self.fired.append(fault)
            if fault.action == "corrupt":
                payload = fault.message or _CORRUPTION
            elif fault.action == "trip-deadline":
                if deadline is not None:
                    deadline.trip()
            else:
                raise fault.build_exception()
        return payload

    def process_fault(self, seam: str, ordinal: int,
                      attempt: int) -> Optional[Fault]:
        """Match (without executing) a process-crash fault.

        Positional, not counter-driven: the caller names the shard (or
        pool generation) and its attempt count, so the same plan fires
        identically no matter which worker picks the shard up or in what
        order shards finish.  Returns the first matching fault; the
        caller decides what "fire" means (SIGKILL in a worker,
        :class:`WorkerCrashError` in the parent's quarantine re-run).
        """
        for fault in self._by_seam.get(seam, ()):
            if fault.is_process() and fault.matches_attempt(ordinal, attempt):
                self.fired.append(fault)
                return fault
        return None

"""The per-run resilience context: deadline + faults + diagnostics +
the degradation ladder's bookkeeping.

One :class:`ResilienceContext` accompanies one analysis run.  Pipeline
components call :meth:`check` at their seams (near-free when nothing is
armed); failure handlers call :meth:`degrade` / :meth:`fail` so every
survived fault is accounted for.  :meth:`completeness` folds the record
into the run's completeness state:

* ``complete``          — nothing was absorbed;
* ``partial-deadline``  — the wall-clock budget cut work short;
* ``partial-budget``    — a §6 work budget cut work short;
* ``partial-fault``     — a fault was absorbed (quarantined source,
  injected/internal error in a non-essential phase) but results exist;
* ``partial-crash``     — a worker *process* died repeatedly (SIGKILL,
  hang, OOM) and a quarantined shard could not be salvaged, so some
  rules' flows are missing (``repro.parallel.supervisor``);
* ``failed``            — an essential phase died; the result carries
  diagnostics but no useful analysis.

The **degradation ladder** (``LADDER``) orders the slicing strategies
from most precise to cheapest: a rule that exhausts its budget or
deadline under CS is retried with the hybrid strategy, a hybrid failure
falls back to CI, and a CI failure abandons the remaining rules —
keeping, at every step, the flows already collected.  This mirrors the
paper's central robustness claim (§6): the bounded configurations keep
reporting where the exact CS configuration aborts out-of-memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bounds import BudgetExhausted
from .deadline import Deadline, DeadlineExceeded
from .diagnostics import DiagnosticsCollector
from .faults import FaultInjector, FaultPlan

# Completeness states (docs/robustness.md).
COMPLETE = "complete"
PARTIAL_BUDGET = "partial-budget"
PARTIAL_DEADLINE = "partial-deadline"
PARTIAL_FAULT = "partial-fault"
PARTIAL_CRASH = "partial-crash"
FAILED = "failed"

# The fallback order: most precise strategy -> cheapest.  ``None`` means
# no further fallback: abandon remaining work, keep collected flows.
# "summary" is hybrid-precision with a cache in front, so its fallback
# rung is plain hybrid: a tripped summary sweep re-slices without the
# cache machinery rather than losing precision straight to ci.
LADDER: Dict[str, Optional[str]] = {"cs": "hybrid", "summary": "hybrid",
                                    "hybrid": "ci", "ci": None}


def next_strategy(strategy: str) -> Optional[str]:
    return LADDER.get(strategy)


def trigger_of(exc: BaseException) -> str:
    """Classify a ladder trigger exception."""
    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    if isinstance(exc, BudgetExhausted):
        return "budget"
    return "fault"


@dataclass
class Degradation:
    """One rung descended: ``phase`` degraded to ``fallback`` because of
    ``trigger`` (``budget`` | ``deadline`` | ``fault``)."""

    phase: str
    trigger: str
    fallback: str
    detail: str = ""

    def to_dict(self) -> Dict[str, str]:
        out = {"phase": self.phase, "trigger": self.trigger,
               "fallback": self.fallback}
        if self.detail:
            out["detail"] = self.detail
        return out


class ResilienceContext:
    """Deadline + fault injector + diagnostics for one analysis run."""

    def __init__(self, deadline: Optional[Deadline] = None,
                 faults: Optional[FaultPlan] = None,
                 quarantine: bool = False,
                 ladder: bool = False) -> None:
        self.deadline = deadline
        self.injector = FaultInjector(faults) if faults else None
        # Quarantine: skip (and diagnose) source units that fail the
        # frontend instead of failing the whole run.
        self.quarantine = quarantine
        # Ladder: retry budget/deadline-failed rules with the next
        # cheaper slicing strategy instead of aborting the sweep.
        self.ladder = ladder
        self.diagnostics = DiagnosticsCollector()
        self.degradations: List[Degradation] = []
        self.failed_phase: Optional[str] = None

    # -- activity ----------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any resilience feature is armed.  Inactive contexts
        preserve the legacy contract: exceptions propagate."""
        return (self.deadline is not None or self.injector is not None
                or self.quarantine or self.ladder)

    # -- seams -------------------------------------------------------------

    def check(self, seam: str, phase: Optional[str] = None) -> None:
        """The cooperative check point: fire scripted faults, then the
        deadline.  Cheap when nothing is armed."""
        if self.injector is not None:
            self.injector.visit(seam, self.deadline)
        if self.deadline is not None:
            self.deadline.check(phase or seam)

    def corrupt(self, seam: str, payload: str) -> str:
        """Seam variant for payload-carrying seams (source text)."""
        if self.injector is not None:
            out = self.injector.visit(seam, self.deadline, payload)
            payload = payload if out is None else out
        if self.deadline is not None:
            self.deadline.check(seam)
        return payload

    # -- bookkeeping -------------------------------------------------------

    def degrade(self, phase: str, trigger: str, fallback: str,
                detail: str = "") -> Degradation:
        deg = Degradation(phase, trigger, fallback, detail)
        self.degradations.append(deg)
        return deg

    def quarantine_source(self, exc: BaseException,
                          source_index: Optional[int],
                          **detail: object) -> None:
        self.diagnostics.absorb("frontend", exc, source_index=source_index,
                                **detail)
        self.degrade("frontend", "fault", "quarantine-source",
                     detail=str(exc))

    def fail(self, phase: str, exc: BaseException) -> None:
        """An essential phase died: record it and mark the run failed."""
        self.diagnostics.absorb(phase, exc)
        if self.failed_phase is None:
            self.failed_phase = phase

    def absorb_child(self, degradations: List[Degradation],
                     diagnostics: List) -> None:
        """Replay the resilience record of a child process.

        A forked worker (the parallel taint sweep) degrades and
        diagnoses against its *copy* of this context; those mutations
        die with the fork, so the worker ships its records home and the
        parent replays them here — keeping :meth:`completeness` correct
        no matter which process absorbed the fault."""
        self.degradations.extend(degradations)
        self.diagnostics.diagnostics.extend(diagnostics)

    # -- summary -----------------------------------------------------------

    def completeness(self) -> str:
        if self.failed_phase is not None:
            return FAILED
        triggers = {d.trigger for d in self.degradations}
        # A crash outranks the other partial verdicts: work is missing
        # because a *process* died (a failure mode cooperative checks
        # never saw), which the reader must not mistake for a budget
        # decision they configured.
        if "crash" in triggers:
            return PARTIAL_CRASH
        if "deadline" in triggers:
            return PARTIAL_DEADLINE
        if "budget" in triggers:
            return PARTIAL_BUDGET
        if self.degradations or self.diagnostics:
            return PARTIAL_FAULT
        return COMPLETE

    def deadline_remaining(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return self.deadline.remaining()

"""The five evaluated configurations (paper Table 1).

|                    | Hybrid |           |           | CS | CI |
|                    | Unbnd. | Priorit.  | Optimized |    |    |
| synthetic models   |   ✓    |    ✓      |    ✓      | ✓  | ✓  |
| priority-driven CG |        |    ✓      |    ✓      |    |    |
| bounds (§6.2)      |        |           |    ✓      |    |    |

The paper used a call-graph bound of 20 000 nodes, a heap-transition
bound of 20 000, a flow-length cutoff of 14, and a nested-taint depth of
2 on applications of 100-800 KLoC, with CS thin slicing limited by a
1 GB JVM heap.  Our benchmark suite is scaled down ~100× and the flow
"length" here counts fine-grained value-flow steps, so the preset
constructors use rescaled defaults (320 call-graph nodes, 200 heap
transitions, length 25, 800 abstract state units); everything stays
overridable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..bounds import Budget
from ..modeling import ModelOptions

# Scaled defaults (paper values / ~100, matching the suite's scale).
DEFAULT_CG_NODE_BOUND = 320
DEFAULT_HEAP_TRANSITION_BOUND = 200
DEFAULT_FLOW_LENGTH_BOUND = 25
DEFAULT_NESTED_DEPTH = 2
# Abstract memory budget emulating the 1 GB JVM heap for CS slicing.
DEFAULT_CS_STATE_UNITS = 800


@dataclass
class TAJConfig:
    """A complete analysis configuration."""

    name: str
    slicing: str = "hybrid"          # "hybrid" | "cs" | "ci" | "summary"
    prioritized: bool = False             # §6.1 priority-driven CG
    budget: Budget = field(default_factory=Budget)
    models: ModelOptions = field(default_factory=ModelOptions)
    # Context-policy toggles (paper §3.1); ablations flip these.
    # CI thin slicing (Sridharan et al. [33]) pairs with a fully
    # context-insensitive pointer analysis.
    context_insensitive_pointers: bool = False
    # Whitelist code reduction (§4.2.1) — one of the "optimizations" of
    # the fully-optimized configuration.  ``whitelist_extra`` holds the
    # per-application hand-written entries (benign app-bundled library
    # classes), mirroring how the paper's whitelist was maintained.
    use_whitelist: bool = False
    whitelist_extra: frozenset = frozenset()
    object_sensitive: bool = True
    collections_unlimited: bool = True
    factory_call_strings: bool = True
    taint_api_call_strings: bool = True
    # Resilience (repro.resilience, docs/robustness.md).  A wall-clock
    # budget alongside the §6 work budgets; ``None`` disables it.
    deadline_seconds: Optional[float] = None
    # Graceful-degradation mode: quarantine source units that fail the
    # frontend, and descend the slicing ladder (cs → hybrid → ci) on
    # budget/deadline exhaustion instead of aborting the rule sweep.
    # Off by default so the paper's CS out-of-memory reproduction (and
    # the strict-frontend contract) are preserved.
    resilient: bool = False
    # Worker processes for the taint sweep (``--jobs``).  1 is the
    # serial reference path; N > 1 runs a persistent worker pool over a
    # deterministic shard plan (repro.parallel).  Reports are
    # byte-identical for every value (docs/performance.md).
    jobs: int = 1
    # Shard grain for the parallel sweep: "auto" splits rules into
    # per-entrypoint seed groups exactly when that preserves whole-rule
    # semantics; "rule" forces whole-rule shards; "entrypoint" forces
    # the fine grain (repro.parallel.shards).
    shard_grain: str = "auto"
    # Multiprocessing start method for the pool (None = fork when
    # available, else spawn); the snapshot protocol supports both.
    start_method: Optional[str] = None
    # Crash supervision for the pool (repro.parallel.supervisor,
    # docs/robustness.md): failed attempts a shard may accumulate
    # beyond its first before it is quarantined to a serial parent
    # re-run, and pool rebuilds the run may spend before every pending
    # shard is quarantined wholesale.
    max_shard_retries: int = 2
    max_pool_restarts: int = 3
    # Hang watchdog: a shard in flight longer than ``hang_seconds``
    # (explicit) or ``hang_multiple`` × the deadline gets its worker
    # SIGKILLed and is retried.  Neither set (no deadline, no explicit
    # seconds) = watchdog off.
    hang_multiple: float = 4.0
    hang_seconds: Optional[float] = None
    # Opt-in shard checkpoint journal (``--checkpoint DIR``,
    # repro.parallel.checkpoint): an interrupted parallel sweep resumes
    # re-running only unfinished shards.  None = off.
    checkpoint_dir: Optional[str] = None
    # Dynamic flow confirmation (repro.confirm, docs/validation.md):
    # after reporting, replay the program with partial instrumentation
    # derived from each flow's witness chain and attach per-flow
    # confirmed/refuted/inconclusive verdicts to the result.
    confirm: bool = False
    # Interpreter step budget per replay run.
    confirm_fuel: int = 200_000
    # Payload seed mixed into every source value during replay, making
    # verdicts a deterministic function of (program, seed, fault mode).
    confirm_seed: int = 1
    # Phase-attributed sampling profiler (repro.obs.profile,
    # docs/observability.md): when enabled the facade installs a
    # profiler on the run's observability bundle, pool workers profile
    # their shards, and the merged collapsed-stack data lands in
    # ``TAJResult.profile`` (CLI ``--profile FILE`` writes the
    # flamegraph-renderable file).  Off by default: profiling never
    # changes reports, only adds measurement.
    profile: bool = False
    # Sampling interval in seconds (shared by parent and pool workers).
    profile_interval: float = 0.004
    # Persistent summary cache directory for the "summary" strategy
    # (repro.summaries, docs/performance.md): a cold run harvests
    # per-method summaries into it, a warm run on the same or an
    # overlapping app seals them back in.  None = in-memory only
    # (summary behaves like hybrid plus harvest bookkeeping).
    summary_cache_dir: Optional[str] = None

    def with_budget(self, **kwargs) -> "TAJConfig":
        budget = self.budget.copy()
        for key, value in kwargs.items():
            setattr(budget, key, value)
        return replace(self, budget=budget)

    def with_resilience(self, deadline_seconds: Optional[float] = None,
                        resilient: bool = True) -> "TAJConfig":
        """This configuration with graceful degradation enabled (and,
        optionally, a wall-clock deadline)."""
        return replace(self, deadline_seconds=deadline_seconds,
                       resilient=resilient)

    def with_confirm(self, confirm: bool = True,
                     fuel: int = 200_000, seed: int = 1) -> "TAJConfig":
        """This configuration with the dynamic replay oracle enabled:
        every reported flow gets a confirmed/refuted/inconclusive
        verdict (``TAJResult.confirmation``)."""
        return replace(self, confirm=confirm, confirm_fuel=fuel,
                       confirm_seed=seed)

    def with_profile(self, profile: bool = True,
                     interval: float = 0.004) -> "TAJConfig":
        """This configuration with the sampling profiler enabled: the
        run's phase-attributed collapsed-stack profile lands in
        ``TAJResult.profile`` (docs/observability.md)."""
        return replace(self, profile=profile, profile_interval=interval)

    def with_jobs(self, jobs: int, shard_grain: str = "auto",
                  start_method: Optional[str] = None) -> "TAJConfig":
        """This configuration with the taint sweep fanned over ``jobs``
        pool workers (1 = serial), optionally pinning the shard grain
        or the multiprocessing start method."""
        return replace(self, jobs=max(1, jobs), shard_grain=shard_grain,
                       start_method=start_method)

    def with_supervision(self, max_shard_retries: int = 2,
                         max_pool_restarts: int = 3,
                         hang_multiple: float = 4.0,
                         hang_seconds: Optional[float] = None) \
            -> "TAJConfig":
        """This configuration with explicit crash-supervision knobs for
        the parallel sweep (docs/robustness.md)."""
        return replace(self, max_shard_retries=max_shard_retries,
                       max_pool_restarts=max_pool_restarts,
                       hang_multiple=hang_multiple,
                       hang_seconds=hang_seconds)

    def with_checkpoint(self, directory: Optional[str]) -> "TAJConfig":
        """This configuration journaling completed shards under
        ``directory`` so an interrupted parallel sweep can resume."""
        return replace(self, checkpoint_dir=directory)

    def with_summary_cache(self, directory: Optional[str]) -> "TAJConfig":
        """This configuration on the summary strategy, persisting
        per-method taint-transfer summaries under ``directory`` (warm
        runs reuse them; see docs/performance.md)."""
        return replace(self, slicing="summary",
                       summary_cache_dir=directory)

    # -- the five Table 1 presets ------------------------------------------

    @staticmethod
    def hybrid_unbounded() -> "TAJConfig":
        """Hybrid thin slicing, run to completion, no bounds."""
        return TAJConfig(name="hybrid-unbounded", slicing="hybrid")

    @staticmethod
    def hybrid_prioritized(
            max_cg_nodes: int = DEFAULT_CG_NODE_BOUND) -> "TAJConfig":
        """Hybrid + priority-driven call-graph construction under a
        node budget (§6.1)."""
        return TAJConfig(name="hybrid-prioritized", slicing="hybrid",
                         prioritized=True,
                         budget=Budget(max_cg_nodes=max_cg_nodes))

    @staticmethod
    def hybrid_optimized(
            max_cg_nodes: int = DEFAULT_CG_NODE_BOUND,
            max_heap_transitions: int = DEFAULT_HEAP_TRANSITION_BOUND,
            max_flow_length: int = DEFAULT_FLOW_LENGTH_BOUND,
            max_nested_depth: int = DEFAULT_NESTED_DEPTH) -> "TAJConfig":
        """Hybrid + priority + every §6.2 bound (the paper's recommended
        configuration)."""
        return TAJConfig(
            name="hybrid-optimized", slicing="hybrid", prioritized=True,
            use_whitelist=True,
            budget=Budget(max_cg_nodes=max_cg_nodes,
                          max_heap_transitions=max_heap_transitions,
                          max_flow_length=max_flow_length,
                          max_nested_depth=max_nested_depth))

    @staticmethod
    def cs(max_state_units: int = DEFAULT_CS_STATE_UNITS) -> "TAJConfig":
        """CS thin slicing under the memory-emulation budget."""
        return TAJConfig(name="cs", slicing="cs",
                         budget=Budget(max_state_units=max_state_units))

    @staticmethod
    def ci() -> "TAJConfig":
        """CI thin slicing, unbounded."""
        return TAJConfig(name="ci", slicing="ci",
                         context_insensitive_pointers=True)

    @staticmethod
    def summary(cache_dir: Optional[str] = None) -> "TAJConfig":
        """Summary-based modular engine (repro.summaries): hybrid
        precision, per-method summaries reused from ``cache_dir`` when
        given.  Not part of :meth:`all_presets` — it is an engine
        variant of hybrid-unbounded, not a sixth Table 1 row."""
        return TAJConfig(name="summary", slicing="summary",
                         summary_cache_dir=cache_dir)

    @staticmethod
    def all_presets() -> list:
        return [TAJConfig.hybrid_unbounded(), TAJConfig.hybrid_prioritized(),
                TAJConfig.hybrid_optimized(), TAJConfig.cs(),
                TAJConfig.ci()]


def settings_matrix() -> str:
    """Render the Table 1 settings matrix."""
    rows = [
        ("Configuration", "Models", "Priority", "Bounds", "Slicing"),
        ("hybrid-unbounded", "yes", "no", "no", "hybrid"),
        ("hybrid-prioritized", "yes", "yes", "cg-nodes", "hybrid"),
        ("hybrid-optimized", "yes", "yes", "all (§6.2)", "hybrid"),
        ("cs", "yes", "no", "memory emulation", "context-sensitive"),
        ("ci", "yes", "no", "no", "context-insensitive"),
    ]
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = []
    for idx, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)

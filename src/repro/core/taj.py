"""The TAJ facade: the paper's two-stage analysis as one call.

Stage 1 — pointer analysis and call-graph construction (§3.1), with the
custom context-sensitivity policy, optional priority-driven ordering
(§6.1), and the whitelist code reduction.

Stage 2 — taint tracking by thin slicing over the HSDG (§3.2), carrier
detection (§4.1.1), bounds (§6.2), and LCP-grouped reporting (§5).

Every phase runs inside a tracer span from :mod:`repro.obs`; the span
durations are the single timing source for both :class:`PhaseTimes` and
the metrics registry.  Pass an :class:`~repro.obs.Observability` bundle
to keep (and export) the trace, metrics, and provenance audit; without
one, each call gets a private bundle whose registry snapshot lands in
``TAJResult.metrics``.

Typical use::

    from repro import TAJ, TAJConfig

    taj = TAJ(TAJConfig.hybrid_optimized())
    result = taj.analyze_sources([open("app.jlang").read()])
    for issue in result.report.issues:
        print(issue.rule, issue.sink_method, issue.remediation)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..bounds import Budget
from ..callgraph import PriorityOrder
from ..modeling import (COLLECTION_CLASSES, FACTORY_METHODS, ModelOptions,
                        PreparedProgram, default_natives, prepare)
from ..obs import Observability
from ..pointer import (ChaoticOrder, ContextPolicy, PointerAnalysis,
                       PolicyConfig)
from ..pointer.heapgraph import HeapGraph
from ..reporting import build_report
from ..sdg.hsdg import DirectEdges
from ..sdg.noheap import NoHeapSDG
from ..slicing.cs import CSExtendedSDG
from ..taint import RuleSet, TaintEngine, default_rules
from .config import TAJConfig
from .results import PhaseTimes, TAJResult


class TAJ:
    """Taint Analysis for jlang — the reproduction's entry point."""

    def __init__(self, config: Optional[TAJConfig] = None,
                 rules: Optional[RuleSet] = None,
                 obs: Optional[Observability] = None) -> None:
        self.config = config or TAJConfig.hybrid_optimized()
        self.rules = rules or default_rules()
        self.obs = obs

    # -- public API ------------------------------------------------------------

    def analyze_sources(self, sources: List[str],
                        deployment_descriptor: Optional[Dict[str, str]]
                        = None,
                        extra_entrypoints: Optional[List[str]] = None,
                        obs: Optional[Observability] = None
                        ) -> TAJResult:
        """Model + analyze jlang application sources."""
        obs = self._resolve_obs(obs)
        with obs.tracer.span("phase.modeling",
                             sources=len(sources)) as span:
            prepared = prepare(sources, deployment_descriptor,
                               self.config.models, extra_entrypoints,
                               obs=obs)
        obs.sample_memory()
        times = PhaseTimes(modeling=span.duration)
        return self.analyze_prepared(prepared, times, obs=obs)

    def analyze_prepared(self, prepared: PreparedProgram,
                         times: Optional[PhaseTimes] = None,
                         obs: Optional[Observability] = None) -> TAJResult:
        """Analyze an already modeled program (lets callers share the
        modeling phase across configurations)."""
        config = self.config
        obs = self._resolve_obs(obs)
        tracer = obs.tracer
        times = times or PhaseTimes()
        result = TAJResult(config_name=config.name, times=times)
        program = prepared.program

        # ---- stage 1: pointer analysis + call graph -----------------------
        with tracer.span("phase.pointer_analysis",
                         config=config.name) as span:
            policy = ContextPolicy(self._policy_config())
            order = self._ordering(config)
            excluded = set()
            if config.use_whitelist:
                excluded = set(prepared.whitelist) | {
                    name for name in config.whitelist_extra
                    if (cls := program.get_class(name)) and cls.is_library}
            analysis = PointerAnalysis(
                program, policy, natives=default_natives(), order=order,
                budget=config.budget,
                excluded_classes=excluded, obs=obs)
            analysis.solve()
            span.set(cg_nodes=analysis.call_graph.node_count(),
                     truncated=analysis.truncated)
        times.pointer_analysis = span.duration
        obs.sample_memory()
        result.cg_nodes = analysis.call_graph.node_count()
        result.cg_edges = analysis.call_graph.edge_count()
        result.truncated = analysis.truncated

        # ---- stage 2: dependence graphs + taint tracking ---------------------
        with tracer.span("phase.sdg", strategy=config.slicing) as span:
            with tracer.span("sdg.build"):
                if config.slicing == "cs":
                    sdg = CSExtendedSDG(program, analysis.call_graph,
                                        analysis)
                else:
                    sdg = NoHeapSDG(program, analysis.call_graph)
            with tracer.span("sdg.direct_edges"):
                direct = DirectEdges(sdg, analysis)
            with tracer.span("sdg.heap_graph"):
                heap_graph = HeapGraph(analysis)
            obs.metrics.gauge("sdg.call_sites",
                              sum(len(sites) for sites
                                  in sdg.call_sites.values()))
        times.sdg = span.duration
        obs.sample_memory()

        with tracer.span("phase.taint", strategy=config.slicing) as span:
            engine = TaintEngine(sdg, direct, heap_graph, self.rules,
                                 config.budget, strategy=config.slicing,
                                 obs=obs)
            taint = engine.run()
            span.set(flows=len(taint.flows), failed=taint.failed)
        times.taint = span.duration
        obs.sample_memory()

        result.flows = taint.flows
        result.failed = taint.failed
        result.failure = taint.failure
        result.truncated = result.truncated or taint.truncated
        result.stats = dict(prepared.stats)
        result.stats.update(analysis.stats)
        for phase, seconds in analysis.phase_seconds.items():
            result.stats[f"time_{phase}"] = seconds
        result.stats["suppressed_by_length"] = taint.suppressed_by_length
        result.stats["state_units"] = taint.state_units

        # ---- reporting (§5) ---------------------------------------------------
        with tracer.span("phase.reporting") as span:
            result.report = build_report(taint.flows, self.rules, program,
                                         obs=obs)
            span.set(issues=result.report.count(),
                     raw_flows=len(taint.flows))
        times.reporting = span.duration
        obs.finish()
        result.metrics = obs.metrics.snapshot()
        result.provenance = obs.audit.to_payload()
        return result

    # -- internals ----------------------------------------------------------------

    def _resolve_obs(self, obs: Optional[Observability]) -> Observability:
        """Explicit argument > bundle given at construction > a fresh
        private bundle for this call (so default runs still collect
        metrics into ``TAJResult.metrics``)."""
        if obs is not None:
            return obs
        if self.obs is not None:
            return self.obs
        return Observability()

    def _policy_config(self) -> PolicyConfig:
        config = self.config
        if config.context_insensitive_pointers:
            return PolicyConfig.insensitive()
        return PolicyConfig(
            object_sensitive=config.object_sensitive,
            collections_unlimited=config.collections_unlimited,
            factory_call_strings=config.factory_call_strings,
            taint_api_call_strings=config.taint_api_call_strings,
            collection_classes=set(COLLECTION_CLASSES),
            factory_methods=set(FACTORY_METHODS),
            taint_api_methods=self.rules.taint_api_methods(),
        )

    def _ordering(self, config: TAJConfig):
        if not config.prioritized:
            return ChaoticOrder()
        max_nodes = config.budget.max_cg_nodes or 10 ** 9
        return PriorityOrder(self.rules.all_source_methods(), max_nodes)


def analyze(sources: List[str], config: Optional[TAJConfig] = None,
            rules: Optional[RuleSet] = None, **kwargs) -> TAJResult:
    """One-shot convenience wrapper around :class:`TAJ`."""
    return TAJ(config, rules).analyze_sources(sources, **kwargs)

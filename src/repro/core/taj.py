"""The TAJ facade: the paper's two-stage analysis as one call.

Stage 1 — pointer analysis and call-graph construction (§3.1), with the
custom context-sensitivity policy, optional priority-driven ordering
(§6.1), and the whitelist code reduction.

Stage 2 — taint tracking by thin slicing over the HSDG (§3.2), carrier
detection (§4.1.1), bounds (§6.2), and LCP-grouped reporting (§5).

Typical use::

    from repro import TAJ, TAJConfig

    taj = TAJ(TAJConfig.hybrid_optimized())
    result = taj.analyze_sources([open("app.jlang").read()])
    for issue in result.report.issues:
        print(issue.rule, issue.sink_method, issue.remediation)
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..bounds import Budget
from ..callgraph import PriorityOrder
from ..modeling import (COLLECTION_CLASSES, FACTORY_METHODS, ModelOptions,
                        PreparedProgram, default_natives, prepare)
from ..pointer import (ChaoticOrder, ContextPolicy, PointerAnalysis,
                       PolicyConfig)
from ..pointer.heapgraph import HeapGraph
from ..reporting import build_report
from ..sdg.hsdg import DirectEdges
from ..sdg.noheap import NoHeapSDG
from ..slicing.cs import CSExtendedSDG
from ..taint import RuleSet, TaintEngine, default_rules
from .config import TAJConfig
from .results import PhaseTimes, TAJResult


class TAJ:
    """Taint Analysis for jlang — the reproduction's entry point."""

    def __init__(self, config: Optional[TAJConfig] = None,
                 rules: Optional[RuleSet] = None) -> None:
        self.config = config or TAJConfig.hybrid_optimized()
        self.rules = rules or default_rules()

    # -- public API ------------------------------------------------------------

    def analyze_sources(self, sources: List[str],
                        deployment_descriptor: Optional[Dict[str, str]]
                        = None,
                        extra_entrypoints: Optional[List[str]] = None
                        ) -> TAJResult:
        """Model + analyze jlang application sources."""
        times = PhaseTimes()
        started = time.perf_counter()
        prepared = prepare(sources, deployment_descriptor,
                           self.config.models, extra_entrypoints)
        times.modeling = time.perf_counter() - started
        return self.analyze_prepared(prepared, times)

    def analyze_prepared(self, prepared: PreparedProgram,
                         times: Optional[PhaseTimes] = None) -> TAJResult:
        """Analyze an already modeled program (lets callers share the
        modeling phase across configurations)."""
        config = self.config
        times = times or PhaseTimes()
        result = TAJResult(config_name=config.name, times=times)
        program = prepared.program

        # ---- stage 1: pointer analysis + call graph -----------------------
        started = time.perf_counter()
        policy = ContextPolicy(self._policy_config())
        order = self._ordering(config)
        excluded = set()
        if config.use_whitelist:
            excluded = set(prepared.whitelist) | {
                name for name in config.whitelist_extra
                if (cls := program.get_class(name)) and cls.is_library}
        analysis = PointerAnalysis(
            program, policy, natives=default_natives(), order=order,
            budget=config.budget,
            excluded_classes=excluded)
        analysis.solve()
        times.pointer_analysis = time.perf_counter() - started
        result.cg_nodes = analysis.call_graph.node_count()
        result.cg_edges = analysis.call_graph.edge_count()
        result.truncated = analysis.truncated

        # ---- stage 2: dependence graphs + taint tracking ---------------------
        started = time.perf_counter()
        if config.slicing == "cs":
            sdg = CSExtendedSDG(program, analysis.call_graph, analysis)
        else:
            sdg = NoHeapSDG(program, analysis.call_graph)
        direct = DirectEdges(sdg, analysis)
        heap_graph = HeapGraph(analysis)
        times.sdg = time.perf_counter() - started

        started = time.perf_counter()
        engine = TaintEngine(sdg, direct, heap_graph, self.rules,
                             config.budget, strategy=config.slicing)
        taint = engine.run()
        times.taint = time.perf_counter() - started

        result.flows = taint.flows
        result.failed = taint.failed
        result.failure = taint.failure
        result.truncated = result.truncated or taint.truncated
        result.stats = dict(prepared.stats)
        result.stats.update(analysis.stats)
        for phase, seconds in analysis.phase_seconds.items():
            result.stats[f"time_{phase}"] = seconds
        result.stats["suppressed_by_length"] = taint.suppressed_by_length
        result.stats["state_units"] = taint.state_units

        # ---- reporting (§5) ---------------------------------------------------
        started = time.perf_counter()
        result.report = build_report(taint.flows, self.rules, program)
        times.reporting = time.perf_counter() - started
        return result

    # -- internals ----------------------------------------------------------------

    def _policy_config(self) -> PolicyConfig:
        config = self.config
        if config.context_insensitive_pointers:
            return PolicyConfig.insensitive()
        return PolicyConfig(
            object_sensitive=config.object_sensitive,
            collections_unlimited=config.collections_unlimited,
            factory_call_strings=config.factory_call_strings,
            taint_api_call_strings=config.taint_api_call_strings,
            collection_classes=set(COLLECTION_CLASSES),
            factory_methods=set(FACTORY_METHODS),
            taint_api_methods=self.rules.taint_api_methods(),
        )

    def _ordering(self, config: TAJConfig):
        if not config.prioritized:
            return ChaoticOrder()
        max_nodes = config.budget.max_cg_nodes or 10 ** 9
        return PriorityOrder(self.rules.all_source_methods(), max_nodes)


def analyze(sources: List[str], config: Optional[TAJConfig] = None,
            rules: Optional[RuleSet] = None, **kwargs) -> TAJResult:
    """One-shot convenience wrapper around :class:`TAJ`."""
    return TAJ(config, rules).analyze_sources(sources, **kwargs)

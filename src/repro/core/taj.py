"""The TAJ facade: the paper's two-stage analysis as one call.

Stage 1 — pointer analysis and call-graph construction (§3.1), with the
custom context-sensitivity policy, optional priority-driven ordering
(§6.1), and the whitelist code reduction.

Stage 2 — taint tracking by thin slicing over the HSDG (§3.2), carrier
detection (§4.1.1), bounds (§6.2), and LCP-grouped reporting (§5).

Every phase runs inside a tracer span from :mod:`repro.obs`; the span
durations are the single timing source for both :class:`PhaseTimes` and
the metrics registry.  Pass an :class:`~repro.obs.Observability` bundle
to keep (and export) the trace, metrics, and provenance audit; without
one, each call gets a private bundle whose registry snapshot lands in
``TAJResult.metrics``.

Resilience (``docs/robustness.md``): every phase is guarded by the
run's :class:`~repro.resilience.ResilienceContext`, built from the
config's ``deadline_seconds`` / ``resilient`` knobs plus an optional
:class:`~repro.resilience.FaultPlan`.  When nothing is armed the
context is inert and the legacy contract holds — exceptions propagate.
When armed, a phase failure is folded into the returned
:class:`TAJResult` instead: structured diagnostics, recorded
degradations, and a ``completeness`` verdict.

Typical use::

    from repro import TAJ, TAJConfig

    taj = TAJ(TAJConfig.hybrid_optimized())
    result = taj.analyze_sources([open("app.jlang").read()])
    for issue in result.report.issues:
        print(issue.rule, issue.sink_method, issue.remediation)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..bounds import Budget
from ..callgraph import PriorityOrder
from ..confirm.oracle import ReplayOracle
from ..modeling import (COLLECTION_CLASSES, FACTORY_METHODS, ModelOptions,
                        PreparedProgram, default_natives, prepare)
from ..obs import Observability
from ..pointer import (ChaoticOrder, ContextPolicy, PointerAnalysis,
                       PolicyConfig)
from ..pointer.heapgraph import HeapGraph
from ..reporting import build_report
from ..resilience import (COMPLETE, FAILED, Deadline, DeadlineExceeded,
                          FaultPlan, ResilienceContext)
from ..sdg.hsdg import DirectEdges
from ..sdg.noheap import NoHeapSDG
from ..slicing.cs import CSExtendedSDG
from ..taint import RuleSet, TaintEngine, default_rules
from .config import TAJConfig
from .results import PhaseTimes, TAJResult


class TAJ:
    """Taint Analysis for jlang — the reproduction's entry point."""

    def __init__(self, config: Optional[TAJConfig] = None,
                 rules: Optional[RuleSet] = None,
                 obs: Optional[Observability] = None,
                 faults: Optional[FaultPlan] = None,
                 pool_lease: Optional[object] = None) -> None:
        self.config = config or TAJConfig.hybrid_optimized()
        self.rules = rules or default_rules()
        self.obs = obs
        # A scripted fault plan (repro.resilience.faults); installed at
        # the pipeline's seams for every analyze_* call.
        self.faults = faults
        # Opt-in worker-pool reuse across runs/apps (a
        # repro.parallel.PoolLease owned by the caller — bench
        # territory; see TaintEngine._run_leased for the supervision
        # trade).  Used only when config.jobs > 1.
        self.pool_lease = pool_lease
        # The summary-cache backend (repro.summaries), created lazily
        # on the first "summary" run and kept for the instance's
        # lifetime: analyzing several apps through one TAJ object
        # reuses the loaded cache in memory, not just on disk.
        self._summary_backend: Optional[object] = None

    # -- public API ------------------------------------------------------------

    def analyze_sources(self, sources: List[str],
                        deployment_descriptor: Optional[Dict[str, str]]
                        = None,
                        extra_entrypoints: Optional[List[str]] = None,
                        obs: Optional[Observability] = None
                        ) -> TAJResult:
        """Model + analyze jlang application sources."""
        obs = self._resolve_obs(obs)
        self._start_profiler(obs)
        res = self._make_resilience()
        try:
            with obs.tracer.span("phase.modeling",
                                 sources=len(sources)) as span:
                prepared = prepare(sources, deployment_descriptor,
                                   self.config.models, extra_entrypoints,
                                   obs=obs,
                                   resilience=res if res.active else None)
        except Exception as exc:
            if not res.active:
                raise
            if isinstance(exc, DeadlineExceeded):
                # A deadline expiry is never a failure — the (empty)
                # result is partial, same as at every later phase.
                res.degrade("modeling", "deadline", "abort", str(exc))
            else:
                # Modeling is otherwise essential: without a program
                # there is nothing to analyze.
                res.fail("modeling", exc)
            result = TAJResult(config_name=self.config.name,
                               times=PhaseTimes(modeling=span.duration))
            return self._finalize(result, res, obs)
        obs.sample_memory()
        times = PhaseTimes(modeling=span.duration)
        return self.analyze_prepared(prepared, times, obs=obs,
                                     resilience=res,
                                     confirm_sources=sources,
                                     confirm_descriptor=
                                     deployment_descriptor)

    def analyze_prepared(self, prepared: PreparedProgram,
                         times: Optional[PhaseTimes] = None,
                         obs: Optional[Observability] = None,
                         resilience: Optional[ResilienceContext] = None,
                         confirm_sources: Optional[List[str]] = None,
                         confirm_descriptor: Optional[Dict[str, str]]
                         = None) -> TAJResult:
        """Analyze an already modeled program (lets callers share the
        modeling phase across configurations).

        ``confirm_sources`` carries the raw sources forward for the
        dynamic-confirmation phase (the replay runs on a separately
        prepared execution program, not on the analysis model); without
        them a ``confirm`` configuration skips confirmation silently.
        """
        config = self.config
        obs = self._resolve_obs(obs)
        self._start_profiler(obs)
        tracer = obs.tracer
        res = resilience or self._make_resilience()
        armed = res if res.active else None
        times = times or PhaseTimes()
        result = TAJResult(config_name=config.name, times=times)
        program = prepared.program

        # ---- stage 1: pointer analysis + call graph -----------------------
        try:
            with tracer.span("phase.pointer_analysis",
                             config=config.name) as span:
                policy = ContextPolicy(self._policy_config())
                order = self._ordering(config)
                excluded = set()
                if config.use_whitelist:
                    excluded = set(prepared.whitelist) | {
                        name for name in config.whitelist_extra
                        if (cls := program.get_class(name))
                        and cls.is_library}
                analysis = PointerAnalysis(
                    program, policy, natives=default_natives(),
                    order=order, budget=config.budget,
                    excluded_classes=excluded, obs=obs, resilience=armed)
                analysis.solve()
                span.set(cg_nodes=analysis.call_graph.node_count(),
                         truncated=analysis.truncated)
        except Exception as exc:
            if armed is None:
                raise
            res.fail("pointer_analysis", exc)
            times.pointer_analysis = span.duration
            return self._finalize(result, res, obs)
        times.pointer_analysis = span.duration
        obs.sample_memory()
        result.cg_nodes = analysis.call_graph.node_count()
        result.cg_edges = analysis.call_graph.edge_count()
        result.truncated = analysis.truncated
        if analysis.deadline_exceeded:
            # The solver stopped on the wall clock and kept a partial
            # call graph — the deadline analogue of the node budget.
            res.degrade("pointer_analysis", "deadline",
                        "truncate-callgraph")

        # ---- stage 2: dependence graphs + taint tracking ---------------------
        try:
            if armed is not None:
                armed.check("sdg.build", phase="sdg")
            with tracer.span("phase.sdg", strategy=config.slicing) as span:
                with tracer.span("sdg.build"):
                    if config.slicing == "cs":
                        sdg = CSExtendedSDG(program, analysis.call_graph,
                                            analysis)
                    else:
                        sdg = NoHeapSDG(program, analysis.call_graph)
                with tracer.span("sdg.direct_edges"):
                    direct = DirectEdges(sdg, analysis)
                with tracer.span("sdg.heap_graph"):
                    heap_graph = HeapGraph(analysis)
                obs.metrics.gauge("sdg.call_sites",
                                  sum(len(sites) for sites
                                      in sdg.call_sites.values()))
            times.sdg = span.duration
        except DeadlineExceeded as exc:
            res.degrade("sdg", "deadline", "abort", str(exc))
            return self._finalize(result, res, obs)
        except Exception as exc:
            if armed is None:
                raise
            res.fail("sdg", exc)
            return self._finalize(result, res, obs)
        obs.sample_memory()

        try:
            with tracer.span("phase.taint",
                             strategy=config.slicing) as span:
                backend = None
                if config.slicing == "summary":
                    # Key computation + cache load, attributed to its
                    # own span: this is the amortizable cost the warm
                    # run pays instead of re-slicing.
                    with tracer.span("phase.summarize") as sspan:
                        backend = self._make_summary_backend()
                        backend.prepare(sdg)
                        sspan.set(
                            cached_entries=(len(backend.cache.entries)
                                            if backend.cache is not None
                                            else 0))
                engine = TaintEngine(sdg, direct, heap_graph, self.rules,
                                     config.budget,
                                     strategy=config.slicing, obs=obs,
                                     resilience=armed, jobs=config.jobs,
                                     shard_grain=config.shard_grain,
                                     start_method=config.start_method,
                                     supervision=self._supervision(),
                                     checkpoint=self._checkpoint(
                                         confirm_sources),
                                     summary_backend=backend,
                                     pool_lease=self.pool_lease)
                taint = engine.run()
                span.set(flows=len(taint.flows), failed=taint.failed)
        except Exception as exc:
            if armed is None:
                raise
            res.fail("taint", exc)
            times.taint = span.duration
            return self._finalize(result, res, obs)
        times.taint = span.duration
        obs.sample_memory()

        result.flows = taint.flows
        result.failed = taint.failed
        result.failure = taint.failure
        result.truncated = result.truncated or taint.truncated
        result.stats = dict(prepared.stats)
        result.stats.update(analysis.stats)
        for phase, seconds in analysis.phase_seconds.items():
            result.stats[f"time_{phase}"] = seconds
        result.stats["suppressed_by_length"] = taint.suppressed_by_length
        result.stats["state_units"] = taint.state_units
        result.stats["rules_completed"] = len(taint.completed_rules)

        # ---- reporting (§5) ---------------------------------------------------
        try:
            if armed is not None:
                armed.check("reporting.build", phase="reporting")
            with tracer.span("phase.reporting") as span:
                result.report = build_report(taint.flows, self.rules,
                                             program, obs=obs)
                span.set(issues=result.report.count(),
                         raw_flows=len(taint.flows))
            times.reporting = span.duration
        except DeadlineExceeded as exc:
            res.degrade("reporting", "deadline", "skip-report", str(exc))
        except Exception as exc:
            if armed is None:
                raise
            # Reporting is non-essential — the raw flows survive; the
            # report is just not grouped.
            res.diagnostics.absorb("reporting", exc)
            res.degrade("reporting", "fault", "skip-report", str(exc))

        # ---- dynamic confirmation (repro.confirm) -----------------------------
        if config.confirm and confirm_sources is not None:
            try:
                if armed is not None:
                    armed.check("confirm.replay", phase="confirm")
                with tracer.span("phase.confirm",
                                 flows=len(result.flows)) as span:
                    oracle = ReplayOracle(rules=self.rules,
                                          fuel=config.confirm_fuel,
                                          seed=config.confirm_seed,
                                          obs=obs)
                    result.confirmation = oracle.confirm(
                        result.flows, confirm_sources,
                        confirm_descriptor)
                    span.set(**result.confirmation.counts())
                times.confirm = span.duration
            except DeadlineExceeded as exc:
                res.degrade("confirm", "deadline", "skip-confirm",
                            str(exc))
            except Exception as exc:
                if armed is None:
                    raise
                # Confirmation is advisory — the static report stands;
                # the flows just stay unclassified.
                res.diagnostics.absorb("confirm", exc)
                res.degrade("confirm", "fault", "skip-confirm",
                            str(exc))
        return self._finalize(result, res, obs)

    # -- internals ----------------------------------------------------------------

    def _start_profiler(self, obs: Observability) -> None:
        """Install (config-driven) and start the sampling profiler on
        the run's bundle.  Idempotent: the analyze_sources →
        analyze_prepared path calls it twice; one profiler runs."""
        if getattr(obs, "profiler", None) is None:
            if not self.config.profile or not obs.enabled:
                return
            from ..obs import SamplingProfiler
            obs.profiler = SamplingProfiler(
                interval=self.config.profile_interval,
                tracer=obs.tracer)
        if not obs.profiler.running:
            obs.profiler.start()

    def _make_summary_backend(self):
        """The instance's summary backend (repro.summaries), created on
        first use from the config's cache directory."""
        if self._summary_backend is None:
            from ..summaries import SummaryBackend
            self._summary_backend = SummaryBackend(
                self.config.summary_cache_dir)
        return self._summary_backend

    def _supervision(self):
        """The pool-supervision policy from the config's knobs (None
        when every knob is at its default — the engine then uses the
        package defaults, keeping the snapshot unchanged)."""
        config = self.config
        if (config.max_shard_retries, config.max_pool_restarts,
                config.hang_multiple, config.hang_seconds) \
                == (2, 3, 4.0, None):
            return None
        from ..parallel import SupervisionPolicy
        return SupervisionPolicy(
            max_shard_retries=config.max_shard_retries,
            max_pool_restarts=config.max_pool_restarts,
            hang_multiple=config.hang_multiple,
            hang_seconds=config.hang_seconds)

    def _checkpoint(self, sources: Optional[List[str]]):
        """The shard checkpoint journal when ``--checkpoint`` is set.

        The identity fingerprint covers every config knob, the corpus,
        and the rule names — a journal written by any other analysis is
        foreign and discarded.  Requires the raw sources (the corpus
        half of the identity), so ``analyze_prepared`` called without
        them never checkpoints."""
        config = self.config
        if (config.checkpoint_dir is None or config.jobs <= 1
                or sources is None):
            return None
        from ..obs.ledger import (config_fingerprint, corpus_hash,
                                  sha256_fingerprint)
        from ..parallel import CheckpointJournal
        fingerprint = sha256_fingerprint({
            "config": config_fingerprint(config),
            "corpus": corpus_hash(sources),
            "rules": sorted(rule.name for rule in self.rules),
        })
        return CheckpointJournal(config.checkpoint_dir, fingerprint)

    def _make_resilience(self) -> ResilienceContext:
        config = self.config
        deadline = None
        if config.deadline_seconds is not None:
            deadline = Deadline(config.deadline_seconds).start()
        return ResilienceContext(deadline=deadline, faults=self.faults,
                                 quarantine=config.resilient,
                                 ladder=config.resilient)

    def _finalize(self, result: TAJResult, res: ResilienceContext,
                  obs: Observability) -> TAJResult:
        """Fold the run's resilience record into the result and close
        out the observability bundle (every exit path funnels here)."""
        result.degradations = list(res.degradations)
        result.diagnostics = list(res.diagnostics)
        if res.failed_phase is not None:
            result.failed = True
            if result.failure is None:
                last = result.diagnostics[-1]
                result.failure = f"{res.failed_phase}: {last.message}"
        completeness = res.completeness()
        if result.failed and completeness == COMPLETE:
            # A legacy budget failure with no resilience record (the
            # paper's CS OOM, resilience off) is still not "complete".
            completeness = FAILED
        result.completeness = completeness
        metrics = obs.metrics
        if result.degradations:
            metrics.inc("resilience.degradations",
                        len(result.degradations))
        if result.diagnostics:
            metrics.inc("resilience.diagnostics",
                        len(result.diagnostics))
        remaining = res.deadline_remaining()
        if remaining is not None:
            metrics.gauge("resilience.deadline_remaining_seconds",
                          round(remaining, 6))
        obs.finish()
        profiler = getattr(obs, "profiler", None)
        if profiler is not None:
            if profiler.running:
                profiler.stop()
            result.profile = profiler.payload()
        result.metrics = metrics.snapshot()
        result.provenance = obs.audit.to_payload()
        return result

    def _resolve_obs(self, obs: Optional[Observability]) -> Observability:
        """Explicit argument > bundle given at construction > a fresh
        private bundle for this call (so default runs still collect
        metrics into ``TAJResult.metrics``)."""
        if obs is not None:
            return obs
        if self.obs is not None:
            return self.obs
        return Observability()

    def _policy_config(self) -> PolicyConfig:
        config = self.config
        if config.context_insensitive_pointers:
            return PolicyConfig.insensitive()
        return PolicyConfig(
            object_sensitive=config.object_sensitive,
            collections_unlimited=config.collections_unlimited,
            factory_call_strings=config.factory_call_strings,
            taint_api_call_strings=config.taint_api_call_strings,
            collection_classes=set(COLLECTION_CLASSES),
            factory_methods=set(FACTORY_METHODS),
            taint_api_methods=self.rules.taint_api_methods(),
        )

    def _ordering(self, config: TAJConfig):
        if not config.prioritized:
            return ChaoticOrder()
        max_nodes = config.budget.max_cg_nodes or 10 ** 9
        return PriorityOrder(self.rules.all_source_methods(), max_nodes)


def analyze(sources: List[str], config: Optional[TAJConfig] = None,
            rules: Optional[RuleSet] = None,
            faults: Optional[FaultPlan] = None, **kwargs) -> TAJResult:
    """One-shot convenience wrapper around :class:`TAJ`."""
    return TAJ(config, rules, faults=faults).analyze_sources(sources,
                                                             **kwargs)

"""Result objects returned by the TAJ facade."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..reporting import Report
from ..taint.flows import TaintFlow


@dataclass
class PhaseTimes:
    """Wall-clock seconds per analysis phase."""

    modeling: float = 0.0
    pointer_analysis: float = 0.0
    sdg: float = 0.0
    taint: float = 0.0
    reporting: float = 0.0

    @property
    def total(self) -> float:
        return (self.modeling + self.pointer_analysis + self.sdg +
                self.taint + self.reporting)


@dataclass
class TAJResult:
    """Everything one analysis run produced."""

    config_name: str
    report: Report = None
    flows: List[TaintFlow] = field(default_factory=list)
    times: PhaseTimes = field(default_factory=PhaseTimes)
    cg_nodes: int = 0
    cg_edges: int = 0
    failed: bool = False          # hard budget failure (paper: CS OOM)
    failure: Optional[str] = None
    truncated: bool = False       # a soft bound trimmed the analysis
    # Counters and timings merged from every stage: modeling stats, the
    # solver's kernel counters (propagations, cycles_collapsed, ...) and
    # per-phase wall times (time_constraint_adding, ...), taint bounds.
    stats: Dict[str, float] = field(default_factory=dict)

    def solver_stats(self) -> Dict[str, float]:
        """The pointer-solver kernel's counters and phase times."""
        keys = ("propagations", "edges", "nodes_processed",
                "cycles_collapsed", "keys_merged", "coalesced_deltas",
                "scc_runs", "time_constraint_adding",
                "time_constraint_solving")
        return {k: self.stats[k] for k in keys if k in self.stats}

    @property
    def issues(self) -> int:
        """Reported issues (post-grouping), the Table 3 'Issues' column."""
        return self.report.count() if self.report else 0

    @property
    def raw_flows(self) -> int:
        return len(self.flows)

    def flows_by_rule(self) -> Dict[str, List[TaintFlow]]:
        out: Dict[str, List[TaintFlow]] = {}
        for flow in self.flows:
            out.setdefault(flow.rule, []).append(flow)
        return out

"""Result objects returned by the TAJ facade."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..confirm.verdicts import ConfirmationResult
from ..reporting import Report
from ..resilience import COMPLETE, Degradation, Diagnostic
from ..taint.flows import TaintFlow

# Legacy solver-stat keys, used when no metrics snapshot was recorded
# (results produced under the disabled observability bundle).
_SOLVER_STAT_KEYS = ("propagations", "edges", "nodes_processed",
                     "cycles_collapsed", "keys_merged",
                     "coalesced_deltas", "scc_runs",
                     "time_constraint_adding", "time_constraint_solving")


@dataclass
class PhaseTimes:
    """Wall-clock seconds per analysis phase.

    Derived from the ``phase.*`` tracer spans (one per pipeline phase),
    not from ad-hoc ``perf_counter`` call sites — see
    ``docs/observability.md``.
    """

    modeling: float = 0.0
    pointer_analysis: float = 0.0
    sdg: float = 0.0
    taint: float = 0.0
    reporting: float = 0.0
    confirm: float = 0.0

    @property
    def total(self) -> float:
        return (self.modeling + self.pointer_analysis + self.sdg +
                self.taint + self.reporting + self.confirm)


@dataclass
class TAJResult:
    """Everything one analysis run produced."""

    config_name: str
    report: Optional[Report] = None
    flows: List[TaintFlow] = field(default_factory=list)
    times: PhaseTimes = field(default_factory=PhaseTimes)
    cg_nodes: int = 0
    cg_edges: int = 0
    failed: bool = False          # hard budget failure (paper: CS OOM)
    failure: Optional[str] = None
    truncated: bool = False       # a soft bound trimmed the analysis
    # Counters and timings merged from every stage: modeling stats, the
    # solver's kernel counters (propagations, cycles_collapsed, ...) and
    # per-phase wall times (time_constraint_adding, ...), taint bounds.
    stats: Dict[str, float] = field(default_factory=dict)
    # The metrics-registry snapshot for this run: counters / gauges /
    # timer and value histograms with p50/p95/max summaries (empty when
    # the run used the disabled observability bundle).
    metrics: Dict[str, Dict] = field(default_factory=dict)
    # The flow-provenance audit payload (empty unless audit mode was
    # enabled): per-flow witness chains + per-rule consultations.
    provenance: Dict[str, object] = field(default_factory=dict)
    # Resilience record (repro.resilience, docs/robustness.md):
    # ``completeness`` summarizes whether these numbers came from a
    # complete run ("complete") or a degraded one ("partial-budget" /
    # "partial-deadline" / "partial-fault" / "failed"); each rung
    # descended is a Degradation, each absorbed failure a Diagnostic.
    completeness: str = COMPLETE
    degradations: List[Degradation] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    # Dynamic confirmation verdicts (repro.confirm): one per reported
    # flow, ``None`` unless the run was configured with ``confirm``.
    # Under a degraded ("partial-*") run only the surviving flows are
    # confirmed — a verdict never resurrects a dropped flow.
    confirmation: Optional[ConfirmationResult] = None
    # Sampling-profiler summary (repro.obs.profile): phase self-times,
    # hot-loop attribution, and top leaf functions; ``None`` unless the
    # run carried a profiler (``TAJConfig.profile`` / CLI ``--profile``).
    profile: Optional[Dict[str, object]] = None

    def solver_stats(self) -> Dict[str, float]:
        """The pointer-solver kernel's counters and phase times.

        Delegates to the metrics-registry snapshot (every ``pointer.*``
        counter, plus the solver sub-phase timer totals); results
        recorded without a registry fall back to the legacy ``stats``
        keys.
        """
        counters = self.metrics.get("counters") if self.metrics else None
        if counters:
            prefix = "pointer."
            out: Dict[str, float] = {
                name[len(prefix):]: value
                for name, value in counters.items()
                if name.startswith(prefix)}
            timers = self.metrics.get("timers", {})
            for phase in ("constraint_adding", "constraint_solving"):
                summary = timers.get(prefix + phase)
                if summary is not None:
                    out[f"time_{phase}"] = summary["total"]
            return out
        return {k: self.stats[k] for k in _SOLVER_STAT_KEYS
                if k in self.stats}

    @property
    def issues(self) -> int:
        """Reported issues (post-grouping), the Table 3 'Issues' column."""
        return self.report.count() if self.report else 0

    @property
    def raw_flows(self) -> int:
        return len(self.flows)

    def flows_by_rule(self) -> Dict[str, List[TaintFlow]]:
        out: Dict[str, List[TaintFlow]] = {}
        for flow in self.flows:
            out.setdefault(flow.rule, []).append(flow)
        return out

"""The TAJ facade, configurations, and result types."""

from .config import (DEFAULT_CG_NODE_BOUND, DEFAULT_CS_STATE_UNITS,
                     DEFAULT_FLOW_LENGTH_BOUND,
                     DEFAULT_HEAP_TRANSITION_BOUND, DEFAULT_NESTED_DEPTH,
                     TAJConfig, settings_matrix)
from .results import PhaseTimes, TAJResult
from .taj import TAJ, analyze

__all__ = [
    "DEFAULT_CG_NODE_BOUND", "DEFAULT_CS_STATE_UNITS",
    "DEFAULT_FLOW_LENGTH_BOUND", "DEFAULT_HEAP_TRANSITION_BOUND",
    "DEFAULT_NESTED_DEPTH", "PhaseTimes", "TAJ", "TAJConfig", "TAJResult",
    "analyze", "settings_matrix",
]

"""Content-hash keys for the persistent summary cache.

A method's taint-transfer summary (its balanced-region hit lists, see
:mod:`repro.sdg.tabulation`) is a function of

* the method's own IR (the :func:`repro.ir.printer.format_method`
  render, which covers instruction ids, parameter names, and blocks);
* the *resolved call environment* at each of its call sites — which
  callees the call graph bound, their parameter bindings, whether each
  side of the edge is application code (that decides ``crossing``
  stamps and therefore LCPs);
* everything the same holds for, transitively, every method reachable
  from it (lifted hits fold callee summaries into the caller's).

So the cache key for a method is a **transitive content hash**: a local
hash per method (IR render + call environment), composed bottom-up over
the call graph's SCC condensation (iterative Tarjan via
:func:`repro.pointer.scc.copy_cycles`, with the identity ``find`` —
summary keys have no union-find).  Editing one method's body moves the
local hash of that method and, through composition, the transitive key
of exactly its call-graph ancestors: the dirtied region re-explores,
everything else stays warm.

Mutually recursive methods share one component and therefore one
transitive digest — any edit inside a cycle invalidates the whole
cycle, which is exactly the granularity at which their summaries are
entangled.

Deliberately **excluded** from the key: the §6.2 budgets (flow length,
heap transitions, state units, nested depth).  They act at the origin /
collector / slicer level, never inside a balanced region's hit list, so
including them would only fragment the cache (docs/performance.md).
The per-rule half of the identity (sanitizers cut edges, sinks stop
propagation) is the *rule fingerprint*, combined with the method key in
:func:`entry_key`.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.printer import format_method
from ..obs.ledger import sha256_fingerprint
from ..pointer.scc import copy_cycles
from ..sdg.noheap import NoHeapSDG


def rule_fingerprint(rule) -> str:
    """Digest of everything a rule contributes to balanced-region hits:
    sources are origin-side only, but they are cheap to include and make
    the key a digest of the whole rule definition."""
    return sha256_fingerprint({
        "name": rule.name,
        "sources": sorted(rule.sources),
        "sanitizers": sorted(rule.sanitizers),
        "sinks": {name: list(params) if params is not None else None
                  for name, params in sorted(rule.sinks.items())},
        "ref_sources": {name: list(idxs)
                        for name, idxs in sorted(rule.ref_sources.items())},
    })


def local_hashes(sdg: NoHeapSDG) -> Dict[str, str]:
    """Per-method local content hash: IR render + resolved call
    environment + application-ness, for every indexed method."""
    program = sdg.program
    app_cache: Dict[str, bool] = {}

    def is_app(qname: str) -> bool:
        cached = app_cache.get(qname)
        if cached is None:
            method = program.lookup_method(qname)
            cached = bool(method) and \
                program.is_application_method(method) and \
                not method.is_synthetic
            app_cache[qname] = cached
        return cached

    out: Dict[str, str] = {}
    for qname in sdg.call_sites:
        method = program.lookup_method(qname)
        if method is None:
            continue
        env: List = []
        for site in sdg.call_sites.get(qname, []):
            env.append([
                site.stmt.ref.iid,
                site.stmt.in_application,
                sorted(site.native_targets),
                [[target, is_app(target),
                  sdg.bindings(site, target)]
                 for target in sorted(site.targets)],
            ])
        out[qname] = sha256_fingerprint({
            "ir": format_method(method),
            "app": is_app(qname),
            "env": env,
        })
    return out


def transitive_keys(sdg: NoHeapSDG) -> Dict[str, str]:
    """Method → transitive content hash, composed bottom-up over the
    call graph's SCC condensation."""
    locals_ = local_hashes(sdg)
    succs: Dict[str, List[str]] = {}
    for qname in locals_:
        callees = {target for site in sdg.call_sites.get(qname, [])
                   for target in site.targets if target in locals_}
        succs[qname] = sorted(callees)

    # Non-trivial cycles share one component; everything else is its
    # own singleton.  ``find`` is the identity — the graph is static.
    comp_of: Dict[str, str] = {}
    members: Dict[str, List[str]] = {}
    for comp in copy_cycles(succs, lambda key: key):
        root = min(comp)
        for member in comp:
            comp_of[member] = root
        members[root] = sorted(comp)
    for qname in locals_:
        comp_of.setdefault(qname, qname)
        members.setdefault(comp_of[qname], [qname]) \
            if comp_of[qname] == qname else None
        if comp_of[qname] == qname and qname not in members:
            members[qname] = [qname]

    comp_succs: Dict[str, List[str]] = {}
    for qname, callees in succs.items():
        comp = comp_of[qname]
        bucket = comp_succs.setdefault(comp, [])
        for callee in callees:
            target = comp_of[callee]
            if target != comp and target not in bucket:
                bucket.append(target)

    digests: Dict[str, str] = {}

    def compute(start: str) -> None:
        # Iterative post-order: constraint-style graphs exceed Python's
        # recursion limit (same discipline as pointer.scc).
        stack: List[List] = [[start, False]]
        while stack:
            comp, expanded = stack[-1]
            if comp in digests:
                stack.pop()
                continue
            if not expanded:
                stack[-1][1] = True
                for succ in sorted(comp_succs.get(comp, [])):
                    if succ not in digests:
                        stack.append([succ, False])
                continue
            stack.pop()
            digests[comp] = sha256_fingerprint({
                "members": sorted(locals_[m] for m in members[comp]),
                "deps": sorted(digests[s]
                               for s in comp_succs.get(comp, [])),
            })

    for comp in members:
        compute(comp)
    return {qname: digests[comp_of[qname]] for qname in locals_}


def entry_key(method: str, method_key: str, rule_fp: str) -> str:
    """The cache-entry identity: one method's summary under one rule."""
    return sha256_fingerprint([method, method_key, rule_fp])

"""The persistent on-disk summary cache behind ``--summary-cache DIR``.

One directory holds one cache: ``meta.json`` pins the cache identity
(schema version + a fingerprint of the model-library version and the
analysis knobs that shape balanced-region exploration), and
``summaries.jsonl`` accumulates one line per cached entry.  An entry is
one method's balanced-region hit lists under one security rule, keyed
by :func:`repro.summaries.keys.entry_key` — the transitive content
hash, so the key *is* the validity proof: any edit to the method, its
resolved callees, or the rule moves the key and the old entry simply
stops being found (it ages out by eviction, it is never served stale).

Safety model, inherited from :mod:`repro.parallel.checkpoint`: a cache
must never change *what* is computed, only *whether* it is recomputed.

* A ``meta.json`` from another model-library version, other knobs, or
  an unknown schema marks the whole directory **foreign**: it is reset
  to empty and the run proceeds cold (counted under
  ``summary.cache.stale``).
* Appends are atomic at line granularity; a process killed mid-append
  leaves a truncated final line the reader skips (the
  :func:`repro.obs.ledger.read_ledger` tolerance contract).  Concurrent
  writers therefore interleave whole lines; duplicate keys merge
  last-wins per formal, which is deterministic given file order and
  harmless because equal keys imply equal content.
* A terminated-but-malformed row is dropped and counted
  (``summary.cache.stale``); corruption can cost time, never
  correctness.
* The entry count is capped; overflow drops the oldest entries
  (``summary.cache.evictions``) and compacts the file.

The cache never stores flows, only per-method hit lists — the
composition back into source→sink flows always happens live against
the current program, which is what keeps a warm run byte-identical to
a cold one.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

SUMMARY_SCHEMA = 1
META_NAME = "meta.json"
SUMMARIES_NAME = "summaries.jsonl"
DEFAULT_MAX_ENTRIES = 65536


class SummaryCache:
    """One cache directory for one (model version, knobs) identity.

    Protocol: construct with the identity fingerprint, call
    :meth:`load` once per run, then :meth:`get`/:meth:`put` entries.
    ``stale``/``evicted`` count load-time drops; hit/miss accounting
    lives with the backend, which knows what a lookup means.
    """

    def __init__(self, directory: str, fingerprint: str,
                 max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.directory = directory
        self.fingerprint = fingerprint
        self.max_entries = max_entries
        self.meta_path = os.path.join(directory, META_NAME)
        self.entries_path = os.path.join(directory, SUMMARIES_NAME)
        # key -> {"method": str, "hits": {formal: [serialized hits]}}
        self.entries: Dict[str, Dict] = {}
        self.stale = 0
        self.evicted = 0
        self.reset_reason: Optional[str] = None
        os.makedirs(directory, exist_ok=True)

    # -- load ----------------------------------------------------------------

    def load(self) -> None:
        """Read every compatible entry into memory.  An absent, foreign,
        or corrupt cache resets the directory and starts empty — a cold
        run, never a wrong one."""
        meta = self._load_meta()
        if meta is None:
            self._reset(None if not os.path.exists(self.meta_path)
                        else "unreadable cache metadata")
            return
        if meta.get("schema") != SUMMARY_SCHEMA \
                or meta.get("fingerprint") != self.fingerprint:
            self._reset(
                "foreign cache (model/knobs fingerprint mismatch)"
                if meta.get("schema") == SUMMARY_SCHEMA
                else f"unsupported cache schema {meta.get('schema')!r}")
            return
        for row in self._read_rows():
            key = row.get("key")
            method = row.get("method")
            hits = row.get("hits")
            if not isinstance(key, str) or not isinstance(method, str) \
                    or not isinstance(hits, dict):
                self.stale += 1
                continue
            entry = self.entries.get(key)
            if entry is None:
                # Re-insert moves the key to the back of the eviction
                # order: recently rewritten entries survive longest.
                self.entries[key] = {"method": method, "hits": dict(hits)}
            else:
                entry["hits"].update(hits)
        self._evict()

    def _load_meta(self) -> Optional[Dict]:
        try:
            with open(self.meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) else None

    def _read_rows(self):
        """Entry rows, with the run-ledger tail tolerance: a crash
        mid-append leaves an unterminated final line, which never
        finished existing and is skipped without counting as stale."""
        try:
            with open(self.entries_path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return []
        rows = []
        lines = text.split("\n")
        truncated_tail = lines[-1].strip() != ""
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                if not (truncated_tail and lineno == len(lines)):
                    self.stale += 1
                continue
            if isinstance(row, dict) and row.get("schema") == SUMMARY_SCHEMA:
                rows.append(row)
            else:
                self.stale += 1
        return rows

    def _evict(self) -> None:
        overflow = len(self.entries) - self.max_entries
        if overflow <= 0:
            return
        for key in list(self.entries)[:overflow]:
            del self.entries[key]
        self.evicted += overflow
        self._compact()

    def _compact(self) -> None:
        """Rewrite the entry file from the live in-memory set.  Written
        to a temp file then renamed, so a crash mid-compaction leaves
        either the old file or the new one, both self-consistent."""
        tmp_path = self.entries_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for key, entry in self.entries.items():
                handle.write(self._format_row(key, entry["method"],
                                              entry["hits"]) + "\n")
        os.replace(tmp_path, self.entries_path)

    def _reset(self, reason: Optional[str]) -> None:
        if reason is not None:
            self.reset_reason = reason
            self.stale += 1
        try:
            os.remove(self.entries_path)
        except OSError:
            pass
        meta = {"schema": SUMMARY_SCHEMA, "fingerprint": self.fingerprint}
        with open(self.meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, sort_keys=True)
            handle.write("\n")

    # -- access --------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict]:
        return self.entries.get(key)

    def put(self, key: str, method: str, hits: Dict) -> None:
        """Insert or extend one entry (one atomic line append per
        call).  Extending happens when a later run explores a formal of
        an already-cached method that the first run never descended
        into."""
        entry = self.entries.get(key)
        if entry is not None:
            fresh = {formal: rows for formal, rows in hits.items()
                     if formal not in entry["hits"]}
            if not fresh:
                return
            entry["hits"].update(fresh)
            hits = fresh
        else:
            self.entries[key] = {"method": method, "hits": dict(hits)}
        line = self._format_row(key, method, hits)
        with open(self.entries_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
        self._evict()

    def drop(self, key: str) -> None:
        """Forget one entry (e.g. it failed to rebind against the
        current program).  Removal is in-memory; the dead line ages out
        at the next compaction."""
        self.entries.pop(key, None)

    @staticmethod
    def _format_row(key: str, method: str, hits: Dict) -> str:
        return json.dumps({"schema": SUMMARY_SCHEMA, "key": key,
                           "method": method, "hits": hits},
                          sort_keys=True)

"""Summary-based modular taint backend (ROADMAP item 3).

Taint phrased as reusable per-method summaries (IFDS with access
paths, Allen/Gauthier/Jordan, arXiv 2103.16240) over the existing RHS
tabulation: balanced regions *are* the summaries, this package makes
them persistent and reusable across runs and apps sharing the model
library.  See :mod:`repro.summaries.engine` for the design and
``docs/performance.md`` for when the cache pays.
"""

from .cache import SUMMARY_SCHEMA, SummaryCache
from .engine import (SummaryBackend, SummarySlicer, SummaryTabulator,
                     model_fingerprint, rebind_hit, serialize_hit)
from .keys import entry_key, local_hashes, rule_fingerprint, transitive_keys

__all__ = [
    "SUMMARY_SCHEMA",
    "SummaryCache",
    "SummaryBackend",
    "SummarySlicer",
    "SummaryTabulator",
    "model_fingerprint",
    "rebind_hit",
    "serialize_hit",
    "entry_key",
    "local_hashes",
    "rule_fingerprint",
    "transitive_keys",
]

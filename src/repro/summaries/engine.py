"""The summary engine: cache-backed modular taint analysis.

The insight that makes this a *third* engine rather than a fork of the
tabulator: the RHS tabulation's **balanced regions already are
per-method taint-transfer summaries**.  A balanced region ``(method,
formal)`` records, as its hit list, everything tainting that formal
makes observable — sinks reached, heap stores performed, exits taken —
with entry-relative path metadata.  The hybrid slicer composes those
regions bottom-up at call edges; it just recomputes them from scratch
every run.

So the summary engine reuses the tabulator verbatim and changes only
*where balanced regions come from*:

* **cold**: a region is explored live, exactly as hybrid would, and
  afterwards *harvested* — its hit list serialized (statement refs,
  entry-relative metadata, formal-relative store bases) and written to
  the :class:`~repro.summaries.cache.SummaryCache` under the method's
  transitive content-hash key (:mod:`repro.summaries.keys`);
* **warm**: at the moment the traversal would descend into a callee,
  a cached region is **sealed** instead — its hits are rebound against
  the current program and installed, the entry fact is marked known so
  the region body never enqueues, and the ordinary replay machinery
  lifts the cached hits across the call edge exactly as it lifts live
  ones.

Everything above the region boundary — origin seeding, heap
store→load expansion, carrier edges, flow collection, budgets,
degradation — is the shared hybrid code, which is what keeps warm runs
byte-identical to cold ones (the differential corpus enforces it).

Sealing is disabled under a *finite* state-unit budget: a sealed
region skips the per-fact meter charges a live exploration would pay,
so warm and cold runs could exhaust the budget at different points.
(An unlimited meter still counts, so a warm run honestly reports fewer
``state_units`` — that is the skipped work.)  Harvesting stays on (a
completed metered run's summaries are complete); only the reuse is
gated.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .. import __version__
from ..modeling.natives import default_natives
from ..obs.ledger import sha256_fingerprint
from ..sdg.nodes import RET, StmtRef
from ..sdg.noheap import NoHeapSDG, StoreSite
from ..sdg.tabulation import Hit, Meta, RegionKey, RuleAdapter, Tabulator
from ..slicing.hybrid import HybridSlicer
from .cache import SummaryCache
from .keys import entry_key, rule_fingerprint, transitive_keys

Provider = Callable[[str, str], Optional[List[Hit]]]


class RebindError(Exception):
    """A cached hit no longer maps onto the current program."""


# -- hit serialization --------------------------------------------------------
#
# One hit is one JSON list (positional, compact):
#   [kind, stmt_ref, store_ref, sink_display, steps, crossing,
#    transitions, exit_var, base_formal, eff_base]
# with refs as [method, iid] and eff_base as [method, var].  All names
# are entry-relative (base_formal) or globally qualified (everything
# else), so a hit is context-free given its region.


def serialize_hit(hit: Hit) -> List:
    return [
        hit.kind,
        [hit.stmt.ref.method, hit.stmt.ref.iid] if hit.stmt else None,
        ([hit.store.stmt.ref.method, hit.store.stmt.ref.iid]
         if hit.store is not None else None),
        hit.sink_display,
        hit.meta.steps,
        ([hit.meta.crossing.method, hit.meta.crossing.iid]
         if hit.meta.crossing is not None else None),
        hit.meta.transitions,
        hit.exit_var,
        hit.base_formal,
        list(hit.eff_base) if hit.eff_base is not None else None,
    ]


def rebind_hit(row: List, sdg: NoHeapSDG,
               stores: Dict[StmtRef, StoreSite]) -> Hit:
    """Reconstruct a :class:`Hit` against the current SDG.  Any ref
    that no longer resolves raises :class:`RebindError` — the caller
    drops the whole entry and explores live (stale, never wrong)."""
    try:
        (kind, stmt_ref, store_ref, sink_display, steps, crossing_ref,
         transitions, exit_var, base_formal, eff_base) = row
    except (TypeError, ValueError) as exc:
        raise RebindError(f"malformed hit row: {exc}") from exc
    if kind not in ("sink", "store", "exit"):
        raise RebindError(f"unknown hit kind {kind!r}")
    stmt = None
    if stmt_ref is not None:
        stmt = sdg.stmt(StmtRef(stmt_ref[0], stmt_ref[1]))
        if stmt is None:
            raise RebindError(f"unresolvable stmt {stmt_ref!r}")
    store = None
    if kind == "store":
        if store_ref is None:
            raise RebindError("store hit without a store ref")
        store = stores.get(StmtRef(store_ref[0], store_ref[1]))
        if store is None:
            raise RebindError(f"unresolvable store {store_ref!r}")
    crossing = None
    if crossing_ref is not None:
        crossing = StmtRef(crossing_ref[0], crossing_ref[1])
        if sdg.stmt(crossing) is None:
            raise RebindError(f"unresolvable crossing {crossing_ref!r}")
    if not isinstance(steps, int) or not isinstance(transitions, int) \
            or not isinstance(exit_var, str):
        raise RebindError("malformed hit metadata")
    return Hit(kind, stmt, store, sink_display,
               Meta(steps, crossing, transitions), exit_var, base_formal,
               tuple(eff_base) if eff_base is not None else None)


# -- the sealed-region tabulator ----------------------------------------------


class SummaryTabulator(Tabulator):
    """A tabulator whose balanced regions can come from the cache.

    The override is a single seam: :meth:`_descend` first offers the
    callee region to :meth:`stitch`, which — when the provider has a
    summary — installs the cached hits and marks the entry fact known.
    The superclass ``_descend`` then runs unchanged: it appends the
    ``Incoming``, its ``_add_fact`` sees the entry fact already present
    and never enqueues it (the region body is skipped), and its replay
    loop lifts the installed hits across the new call edge through the
    ordinary ``_replay`` machinery — meta composition, crossing
    fallback, and store-base translation all shared with live regions.
    """

    def __init__(self, *args, provider: Optional[Provider] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.provider = provider
        self.sealed_regions: set = set()

    def stitch(self, callee_region: RegionKey) -> None:
        """Seal one balanced region from the cache, if it is available
        and not already live.  (Named for the profiler: HOT_LOOPS
        attributes warm-path work to ``summaries.stitch``.)"""
        provider = self.provider
        if provider is None or \
                (self.meter is not None and self.meter.limit is not None):
            return
        if callee_region in self.facts:
            return
        cached = provider(callee_region.method, callee_region.entry)
        if cached is None:
            return
        self.facts[callee_region] = {callee_region.entry: Meta()}
        self.hits[callee_region] = list(cached)
        self._hit_sigs[callee_region] = {hit.signature() for hit in cached}
        self.sealed_regions.add(callee_region)

    def _descend(self, region: RegionKey, meta: Meta, site, target: str,
                 formal: str) -> None:
        self.stitch(RegionKey(target, formal))
        super()._descend(region, meta, site, target, formal)


# -- the slicer ---------------------------------------------------------------


class SummarySlicer(HybridSlicer):
    """Hybrid slicing with cache-backed balanced regions.

    Identical traversal; the only differences are the tabulator factory
    (sealing) and a post-rule harvest.  Without a backend it *is* the
    hybrid slicer — the degenerate form a pool worker runs when the
    snapshot shipped without one.
    """

    name = "summary"

    def __init__(self, *args, backend: Optional["SummaryBackend"] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.backend = backend
        self._tab: Optional[SummaryTabulator] = None

    def _make_tabulator(self, adapter: RuleAdapter, on_hit) -> Tabulator:
        provider = None
        if self.backend is not None:
            provider = self.backend.provider_for(self.sdg, adapter.rule)
        self._tab = SummaryTabulator(
            self.sdg, adapter, on_hit, meter=self.meter,
            skip_thread_edges=self.skip_thread_edges,
            resilience=self.resilience, provider=provider)
        return self._tab

    def slice_rule(self, rule, seeds=None):
        flows = super().slice_rule(rule, seeds=seeds)
        # Harvest only after a *completed* traversal: a budget or
        # deadline trip unwinds past this point, and a half-explored
        # region must never be cached as a summary.
        if self.backend is not None and self._tab is not None:
            self.backend.harvest(self.sdg, rule, self._tab)
        return flows


# -- the backend --------------------------------------------------------------


def model_fingerprint(skip_thread_edges: bool = False) -> str:
    """The cache-identity half that is *not* per-method content: the
    model-library version (package version + the registered native
    summary names — editing a native changes taint transfer without
    touching any app method's IR) and the knobs that shape
    balanced-region exploration."""
    return sha256_fingerprint({
        "version": __version__,
        "natives": sorted(default_natives()._handlers),
        "knobs": {"skip_thread_edges": skip_thread_edges},
    })


class SummaryBackend:
    """Owns keys, cache, and counters for one analysis run (or a
    sequence of runs sharing one cache directory).

    Lifecycle: construct (optionally with a cache directory), then per
    program :meth:`prepare` computes the transitive key table and loads
    the cache; slicers pull providers and push harvests; the engine
    calls :meth:`publish` to surface the counters.  Picklable for the
    parallel snapshot — derived per-program tables rebuild lazily in
    the worker.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 skip_thread_edges: bool = False,
                 max_entries: Optional[int] = None) -> None:
        self.cache_dir = cache_dir
        self.fingerprint = model_fingerprint(skip_thread_edges)
        self.max_entries = max_entries
        self.cache: Optional[SummaryCache] = None
        # Counters, reset by prepare(): region-grain — one sealed
        # region is one hit, one live exploration of a summarizable
        # region is one miss.
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.evictions = 0
        # Per-program derived state (lazy; dropped on pickle).
        self._keys: Optional[Dict[str, str]] = None
        self._sdg_id: Optional[int] = None
        self._stores: Optional[Dict[StmtRef, StoreSite]] = None
        self._rebound: Dict[Tuple[str, str], Optional[List[Hit]]] = {}
        self._rule_fps: Dict[str, str] = {}

    # -- lifecycle -----------------------------------------------------------

    def prepare(self, sdg: NoHeapSDG) -> None:
        """Compute the key table for this program and load the cache.
        Counters reset here: they describe one run."""
        self.hits = self.misses = self.stale = self.evictions = 0
        self._bind(sdg)
        # The rebind memo caches negative lookups too; entries
        # harvested by the previous run make those stale, so every run
        # starts with a clean memo.
        self._rebound = {}
        if self.cache is None and self.cache_dir is not None:
            kwargs = {}
            if self.max_entries is not None:
                kwargs["max_entries"] = self.max_entries
            self.cache = SummaryCache(self.cache_dir, self.fingerprint,
                                      **kwargs)
            self.cache.load()
            self.stale += self.cache.stale
            self.evictions += self.cache.evicted

    def _bind(self, sdg: NoHeapSDG) -> None:
        if self._keys is not None and self._sdg_id == id(sdg):
            return
        self._keys = transitive_keys(sdg)
        self._sdg_id = id(sdg)
        self._stores = {site.stmt.ref: site
                        for sites in sdg.stores_by_field.values()
                        for site in sites}
        self._rebound = {}

    def __getstate__(self):
        state = dict(self.__dict__)
        # Derived tables rebuild against the worker's SDG; rebound Hit
        # objects hold Stmt references into the parent's program.
        state["_keys"] = None
        state["_sdg_id"] = None
        state["_stores"] = None
        state["_rebound"] = {}
        return state

    def _rule_fp(self, rule) -> str:
        fp = self._rule_fps.get(rule.name)
        if fp is None:
            fp = self._rule_fps[rule.name] = rule_fingerprint(rule)
        return fp

    # -- warm path -----------------------------------------------------------

    def provider_for(self, sdg: NoHeapSDG, rule) -> Optional[Provider]:
        if self.cache is None:
            return None
        self._bind(sdg)
        cache = self.cache
        keys = self._keys
        stores = self._stores
        rule_fp = self._rule_fp(rule)

        def provider(method: str, formal: str) -> Optional[List[Hit]]:
            method_key = keys.get(method)
            if method_key is None:
                return None
            key = entry_key(method, method_key, rule_fp)
            token = (key, formal)
            if token in self._rebound:
                cached = self._rebound[token]
                if cached is not None:
                    self.hits += 1
                return cached
            entry = cache.get(key)
            rows = entry["hits"].get(formal) if entry is not None else None
            if rows is None:
                self.misses += 1
                self._rebound[token] = None
                return None
            try:
                hits = [rebind_hit(row, sdg, stores) for row in rows]
            except RebindError:
                # The key said "identical", the program disagreed:
                # drop the entry, count it stale, explore live.
                cache.drop(key)
                self.stale += 1
                self.misses += 1
                self._rebound[token] = None
                return None
            self.hits += 1
            self._rebound[token] = hits
            return hits

        return provider

    # -- cold path -----------------------------------------------------------

    def harvest(self, sdg: NoHeapSDG, rule, tab: SummaryTabulator) -> None:
        """Serialize every fully-explored balanced region into the
        cache.  Only called after a completed traversal — a drained
        worklist means every region in ``tab.facts`` is closed.  Empty
        hit lists are cached too: a *negative* summary (taint enters,
        nothing observable happens) is exactly the entry that lets a
        warm run skip the region."""
        if self.cache is None:
            return
        self._bind(sdg)
        cache = self.cache
        keys = self._keys
        rule_fp = self._rule_fp(rule)
        by_method: Dict[str, Dict[str, List]] = {}
        for region in tab.facts:
            if region.is_origin or region in tab.sealed_regions:
                continue
            if keys.get(region.method) is None:
                continue
            by_method.setdefault(region.method, {})[region.entry] = [
                serialize_hit(hit) for hit in tab.hits.get(region, [])]
        for method, hits in by_method.items():
            key = entry_key(method, keys[method], rule_fp)
            before = cache.evicted
            cache.put(key, method, hits)
            self.evictions += cache.evicted - before

    # -- obs -----------------------------------------------------------------

    def publish(self, metrics) -> None:
        """Surface the run's counters on the metrics registry (and so
        on the run ledger's WORK_COUNTERS)."""
        metrics.inc("summary.cache.hits", self.hits)
        metrics.inc("summary.cache.misses", self.misses)
        metrics.inc("summary.cache.evictions", self.evictions)
        metrics.inc("summary.cache.stale", self.stale)

"""Micro benchmark programs (in the spirit of Stanford SecuriBench Micro).

``MOTIVATING`` is a faithful jlang transcription of the paper's Figure 1
(the ``Refl1``-inspired motivating program): reflection resolved through
a ``getMethods`` + name-equality scan, tainted flow through a map under
constant keys, a sanitized sibling flow, and a taint carrier into the
sink.  A precise analysis reports exactly one XSS issue (``println(i1)``)
and rejects the two benign calls.

The remaining cases each isolate one analysis capability; the dict maps
a case name to (source text, expected counts per rule for a precise
analysis).  They double as integration tests and as seeds for the
application generator.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# Figure 1 of the paper, adapted to jlang (no nested classes; the
# methods.length loop bound is a constant; explicit casts where jlang
# needs them).  Line numbers are deliberately close to the paper's.
MOTIVATING = """
class MotivatingInternal {
  String s;
  MotivatingInternal(String s) { this.s = s; }
  public String toString() { return this.s; }
}

class Motivating extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String t1 = req.getParameter("fName");
    String t2 = req.getParameter("lName");
    PrintWriter writer = resp.getWriter();
    Method idMethod = null;
    try {
      Class k = Class.forName("Motivating");
      Method[] methods = k.getMethods();
      for (int i = 0; i < 8; i++) {
        Method method = methods[i];
        if (method.getName().equals("id")) {
          idMethod = method;
          break;
        }
      }
      Map m = new HashMap();
      m.put("fName", t1);
      m.put("lName", t2);
      m.put("date", Date.getDate());
      String s1 = (String) idMethod.invoke(this,
          new Object[] { m.get("fName") });
      String s2 = (String) idMethod.invoke(this,
          new Object[] { URLEncoder.encode((String) m.get("lName")) });
      String s3 = (String) idMethod.invoke(this,
          new Object[] { m.get("date") });
      MotivatingInternal i1 = new MotivatingInternal(s1);
      MotivatingInternal i2 = new MotivatingInternal(s2);
      MotivatingInternal i3 = new MotivatingInternal(s3);
      writer.println(i1);   // BAD
      writer.println(i2);   // OK (sanitized)
      writer.println(i3);   // OK (never tainted)
    } catch (Exception e) {
      e.printStackTrace();
    }
  }
  public String id(String string) { return string; }
}
"""

# Each micro case: name -> (source, {rule: expected precise issue count}).
MicroCase = Tuple[str, Dict[str, int]]

MICRO_CASES: Dict[str, MicroCase] = {}


def _case(name: str, source: str, expected: Dict[str, int]) -> None:
    MICRO_CASES[name] = (source, expected)


_case("direct_xss", """
class C1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getParameter("p"));
  }
}
""", {"XSS": 1})

_case("sanitized_xss", """
class C2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(URLEncoder.encode(req.getParameter("p")));
  }
}
""", {"XSS": 0})

_case("string_ops", """
class C3 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String p = req.getParameter("p");
    StringBuilder sb = new StringBuilder();
    sb.append("prefix");
    sb.append(p.toUpperCase().trim());
    String out = sb.toString();
    resp.getWriter().println(out);
  }
}
""", {"XSS": 1})

_case("map_constant_keys", """
class C4 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HashMap m = new HashMap();
    m.put("dirty", req.getParameter("p"));
    m.put("clean", "constant");
    resp.getWriter().println(m.get("clean"));
  }
}
""", {"XSS": 0})

_case("map_constant_keys_hit", """
class C5 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HashMap m = new HashMap();
    m.put("dirty", req.getParameter("p"));
    resp.getWriter().println(m.get("dirty"));
  }
}
""", {"XSS": 1})

_case("session_attributes", """
class C6 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HttpSession s = req.getSession();
    s.setAttribute("a", req.getParameter("p"));
    Object o1 = s.getAttribute("a");
    Object o2 = s.getAttribute("b");
    resp.getWriter().println(o2);
  }
}
""", {"XSS": 0})

_case("taint_carrier", """
class Wrapper7 {
  String inner;
  Wrapper7(String v) { this.inner = v; }
  public String toString() { return this.inner; }
}
class C7 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Wrapper7 w = new Wrapper7(req.getParameter("p"));
    resp.getWriter().println(w);
  }
}
""", {"XSS": 1})

_case("carrier_clone_precision", """
class Wrapper8 {
  String inner;
  Wrapper8(String v) { this.inner = v; }
}
class C8 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Wrapper8 dirty = new Wrapper8(req.getParameter("p"));
    Wrapper8 clean = new Wrapper8("constant");
    resp.getWriter().println(clean);
  }
}
""", {"XSS": 0})

_case("heap_flow", """
class Holder9 {
  String value;
}
class C9 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Holder9 h = new Holder9();
    h.value = req.getParameter("p");
    String out = h.value;
    resp.getWriter().println(out);
  }
}
""", {"XSS": 1})

_case("sql_injection", """
class C10 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String user = req.getParameter("user");
    Connection c = DriverManager.getConnection("jdbc:db");
    Statement st = c.createStatement();
    st.executeQuery("SELECT * FROM t WHERE u = '" + user + "'");
  }
}
""", {"SQLI": 1})

_case("sql_sanitized", """
class C11 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String user = StringEscapeUtils.escapeSql(req.getParameter("user"));
    Connection c = DriverManager.getConnection("jdbc:db");
    Statement st = c.createStatement();
    st.executeQuery("SELECT * FROM t WHERE u = '" + user + "'");
  }
}
""", {"SQLI": 0})

_case("file_execution", """
class C12 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String path = req.getParameter("path");
    FileReader r = new FileReader(path);
  }
}
""", {"MALICIOUS_FILE": 1})

_case("file_normalized", """
class C13 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String path = FilenameUtils.normalize(req.getParameter("path"));
    FileReader r = new FileReader(path);
  }
}
""", {"MALICIOUS_FILE": 0})

_case("exception_leak", """
class C14 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    try {
      Statement st =
          DriverManager.getConnection("jdbc:db").createStatement();
      st.executeUpdate("DELETE FROM t");
    } catch (SQLException e) {
      resp.getWriter().println(e);
    }
  }
}
""", {"INFO_LEAK": 1})

_case("interprocedural", """
class Util15 {
  static String pass(String v) { return v; }
}
class C15 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String p = Util15.pass(req.getParameter("p"));
    resp.getWriter().println(p);
  }
}
""", {"XSS": 1})

_case("context_precision", """
class Id16 {
  static String id(String v) { return v; }
}
class C16 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String dirty = Id16.id(req.getParameter("p"));
    String clean = Id16.id("constant");
    resp.getWriter().println(clean);
  }
}
""", {"XSS": 0})

_case("thread_flow", """
class Shared17 {
  static String channel;
}
class Task17 implements Runnable {
  public void run() { }
  HttpServletResponse resp;
  Task17(HttpServletResponse r) { this.resp = r; }
}
class Printer17 implements Runnable {
  HttpServletResponse resp;
  Printer17(HttpServletResponse r) { this.resp = r; }
  public void run() {
    String v = Shared17.channel;
    this.resp.getWriter().println(v);
  }
}
class C17 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Shared17.channel = req.getParameter("p");
    Printer17 task = new Printer17(resp);
    Thread t = new Thread(task);
    t.start();
  }
}
""", {"XSS": 1})

_case("struts_form", """
class UserForm18 extends ActionForm {
  String username;
  String role;
}
class LoginAction18 extends Action {
  ActionForward execute(ActionMapping mapping, ActionForm form,
                        HttpServletRequest req, HttpServletResponse resp) {
    UserForm18 f = (UserForm18) form;
    resp.getWriter().println(f.username);
    return null;
  }
}
""", {"XSS": 1})

_case("cookie_source", """
class C19 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Cookie[] cookies = req.getCookies();
    Cookie c = cookies[0];
    resp.getWriter().println(c.getValue());
  }
}
""", {"XSS": 1})

_case("ref_source", """
class C20 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    RandomAccessFile f = new RandomAccessFile("data.bin");
    Object[] buffer = new Object[4];
    f.readFully(buffer);
    Object chunk = buffer[0];
    resp.getWriter().println(chunk);
  }
}
""", {"XSS": 1})

_case("privileged_action", """
class Fetch21 implements PrivilegedAction {
  HttpServletRequest req;
  Fetch21(HttpServletRequest r) { this.req = r; }
  public Object run() { return this.req.getParameter("p"); }
}
class C21 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Fetch21 action = new Fetch21(req);
    Object value = AccessController.doPrivileged(action);
    resp.getWriter().println(value);
  }
}
""", {"XSS": 1})

_case("ejb_dispatch", """
class CartBean22 {
  String describe(String item) { return item; }
}
class C22 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    InitialContext ctx = new InitialContext();
    Object ref = ctx.lookup("java:comp/env/ejb/Cart");
    Object home = PortableRemoteObject.narrow(ref, "CartHome");
    CartBean22 cart = (CartBean22) home.create();
    String item = cart.describe(req.getParameter("item"));
    resp.getWriter().println(item);
  }
}
""", {"XSS": 1})

# Deployment descriptors required by micro cases (JNDI name -> bean).
MICRO_DESCRIPTORS: Dict[str, Dict[str, str]] = {
    "ejb_dispatch": {"java:comp/env/ejb/Cart": "CartBean22"},
}


def all_case_names() -> List[str]:
    return sorted(MICRO_CASES)


def cyclic_stress(n_ring: int = 12, n_feeds: int = 30,
                  depth: int = 5) -> str:
    """A copy-cycle stress program for the solver kernel benchmarks.

    ``n_ring`` static methods form a call ring whose parameter-passing
    edges close one large copy cycle in the constraint graph;
    ``n_feeds`` driver methods each inject a fresh object into the ring
    at a different entry point.  A solver with online cycle elimination
    collapses the ring and propagates each injected object once; the
    seed solver re-propagates it around every ring member.
    """
    parts = ["class Payload { int x; }", "class Ring {"]
    for i in range(n_ring):
        nxt = (i + 1) % n_ring
        parts.append(
            f"  static Object hop{i}(Object v, int d) {{\n"
            f"    Object out = v;\n"
            f"    if (d > 0) {{ out = Ring.hop{nxt}(v, d - 1); }}\n"
            f"    return out;\n  }}")
    parts.append("}")
    parts.append("class CyclicDriver extends HttpServlet {")
    parts.append("  void doGet(HttpServletRequest req, "
                 "HttpServletResponse resp) {")
    for j in range(n_feeds):
        parts.append(f"    CyclicDriver.feed{j}(resp);")
    parts.append("  }")
    for j in range(n_feeds):
        parts.append(
            f"  static void feed{j}(HttpServletResponse resp) {{\n"
            f"    Object p = new Payload();\n"
            f"    Object r = Ring.hop{j % n_ring}(p, {depth});\n"
            f"    resp.getWriter().println(\"x\");\n  }}")
    parts.append("}")
    return "\n".join(parts)

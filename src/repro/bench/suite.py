"""The 22-application benchmark suite (paper Table 2, scaled ~1:100).

Each entry mirrors one of the paper's benchmarks: the anonymized
industrial applications (A, B, I, S, ST) and the open-source ones.
Relative sizes follow Table 2's application method counts; trait knobs
follow the paper's narrative (heavy framework/reflection use, container
traffic, multithreading) and the shapes Table 3 / Figure 4 require:

* CS thin slicing completes on exactly six smaller benchmarks — A,
  BlueBlog, Friki, Ginp, I, SBM — and exhausts its memory-emulation
  budget on the rest;
* CS has false negatives on BlueBlog (2), I (1), SBM (2): those apps
  carry that many cross-thread flows;
* BlueBlog carries one nested-taint flow deeper than the §6.2.3 bound
  (the fully-optimized configuration's single new false negative);
* Webgoat's taint-relevant region exceeds the scaled call-graph budget,
  so the prioritized configuration loses true positives there that the
  fully-optimized one (whitelist code reduction frees budget) recovers.

Figure 4's nine manually-triaged benchmarks: A, B, BlueBlog, Friki,
GestCV, I, S, SBM, Webgoat.
"""

from __future__ import annotations

from typing import Dict, List

from .generator import AppSpec, GeneratedApp, generate_app

FIGURE4_APPS = ["A", "B", "BlueBlog", "Friki", "GestCV", "I", "S", "SBM",
                "Webgoat"]

# Benchmarks on which the paper's CS configuration completed.
CS_COMPLETES = {"A", "BlueBlog", "Friki", "Ginp", "I", "SBM"}


def _spec(name: str, seed: int, scale: int, **kwargs) -> AppSpec:
    """An AppSpec sized by ``scale`` (≈ app methods / 40) with defaults
    proportional to the paper's per-app issue counts."""
    base = dict(
        name=name, seed=seed,
        tp_direct=max(1, scale // 2), tp_string=max(0, scale // 3),
        tp_map=max(0, scale // 3), tp_heap=max(0, scale // 3),
        tp_helper=max(0, scale // 4), tp_carrier=max(0, scale // 4),
        tp_sql=max(0, scale // 4), tp_leak=max(0, scale // 5),
        sanitized=max(1, scale // 3),
        trap_context=max(1, scale // 2), trap_factory=max(0, scale // 3),
        trap_xentry=max(1, scale // 3),
        trap_xentry_long=max(0, scale // 4),
        trap_logger=max(1, scale // 3),
        cold_classes=max(1, scale // 2), cold_methods=6,
        lib_classes=max(1, scale // 3), lib_methods=5,
    )
    base.update(kwargs)
    return AppSpec(**base)


def suite_specs() -> Dict[str, AppSpec]:
    """All 22 application specs, keyed by benchmark name."""
    return {
        # -- the six CS-completing (smaller) benchmarks ------------------
        "A": _spec("A", 11, 3, tp_reflect=1, uses_struts=True,
                   trap_xentry_long=1),
        "BlueBlog": _spec("BlueBlog", 12, 2, tp_thread=2, tp_deep=1,
                          cold_classes=1, lib_classes=1),
        "Friki": _spec("Friki", 13, 3, tp_reflect=1, trap_context=3),
        "Ginp": _spec("Ginp", 14, 3, tp_file=2, cold_classes=1),
        "I": _spec("I", 15, 1, tp_thread=1, sanitized=1, trap_context=0,
                   trap_factory=0, trap_xentry=0, trap_xentry_long=0,
                   trap_logger=0, cold_classes=1, lib_classes=1),
        "SBM": _spec("SBM", 16, 4, tp_thread=2, trap_context=3),
        # -- the sixteen larger benchmarks (CS budget failures) -----------
        "B": _spec("B", 21, 4, uses_ejb=True, tp_map=3, tp_heap=3,
                   cold_classes=4),
        "Blojsom": _spec("Blojsom", 22, 8, uses_struts=True, tp_reflect=1,
                         tp_map=4, cold_classes=5),
        "Dlog": _spec("Dlog", 23, 5, tp_heap=4, tp_map=4, cold_classes=6),
        "GestCV": _spec("GestCV", 24, 4, uses_ejb=True, tp_map=3,
                        tp_heap=3, cold_classes=4),
        "GridSphere": _spec("GridSphere", 25, 14, uses_struts=True,
                            tp_reflect=2, tp_map=6, tp_heap=6,
                            cold_classes=12, lib_classes=8),
        "JSPWiki": _spec("JSPWiki", 26, 6, tp_reflect=1, tp_map=4,
                         cold_classes=6),
        "Lutece": _spec("Lutece", 27, 5, tp_direct=1, tp_string=0,
                        tp_map=3, tp_heap=3, sanitized=4, trap_context=1,
                        cold_classes=8, lib_classes=6),
        "MVNForum": _spec("MVNForum", 28, 10, tp_map=5, tp_heap=5,
                          uses_struts=True, cold_classes=8),
        "PersonalBlog": _spec("PersonalBlog", 29, 9, tp_map=5, tp_heap=5,
                              trap_context=6, trap_xentry=4,
                              trap_xentry_long=3, cold_classes=2,
                              lib_classes=2),
        "Roller": _spec("Roller", 30, 11, tp_map=5, tp_heap=5,
                        trap_context=6, trap_xentry=4, cold_classes=5),
        "S": _spec("S", 31, 9, uses_ejb=True, tp_map=5, tp_heap=4,
                   trap_context=4, trap_xentry=3, trap_xentry_long=2,
                   cold_classes=5),
        "SnipSnap": _spec("SnipSnap", 32, 7, tp_map=4, tp_heap=4,
                          cold_classes=8),
        "SPLC": _spec("SPLC", 33, 5, tp_map=3, tp_heap=3, cold_classes=3),
        "ST": _spec("ST", 34, 13, tp_map=6, tp_heap=6, uses_struts=True,
                    trap_context=6, trap_xentry=4, cold_classes=12,
                    lib_classes=8),
        "VQWiki": _spec("VQWiki", 35, 12, tp_map=6, tp_heap=6,
                        trap_context=7, trap_xentry=4, cold_classes=4),
        # Webgoat: a mid-size app whose *taint-relevant* region alone
        # exceeds the scaled call-graph budget, so the prioritized
        # configuration misses true positives that the fully-optimized
        # one (whitelist code reduction frees node budget) recovers.
        "Webgoat": _spec("Webgoat", 36, 5, tp_direct=9, tp_string=6,
                         tp_map=6, tp_heap=6, tp_helper=6, tp_carrier=5,
                         tp_chain=5, tp_reflect=2, tp_sql=4, tp_leak=3,
                         trap_context=2, trap_xentry=2, trap_logger=2,
                         cold_classes=6, cold_methods=8, lib_classes=12,
                         lib_methods=6),
    }


def generate_suite(names: List[str] = None) -> Dict[str, GeneratedApp]:
    """Generate (a subset of) the suite."""
    specs = suite_specs()
    if names is None:
        names = sorted(specs)
    return {name: generate_app(specs[name]) for name in names}


def benign_lib_classes(app: GeneratedApp) -> List[str]:
    """The app's hand-whitelistable supporting classes."""
    prefix = "".join(ch for ch in app.spec.name.title() if ch.isalnum()) \
        or "App"
    return [f"{prefix}Lib{i}" for i in range(app.spec.lib_classes)]

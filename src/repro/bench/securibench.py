"""A SecuriBench-Micro-style case collection.

The paper's motivating example is "partially inspired by the Refl1 case
in Stanford SecuriBench Micro" (footnote 1).  This module provides our
analogue of that suite: small single-capability cases organized by the
classic SecuriBench categories, each annotated with the number of issues
a precise, sound analysis reports.

``CASES[category][name] = (source, {rule: expected_count})``

Used three ways: as integration tests per configuration, as dynamic-
validation inputs, and as a per-category precision scoreboard
(``tests/integration/test_securibench.py``).
"""

from __future__ import annotations

from typing import Dict, Tuple

Case = Tuple[str, Dict[str, int]]

CASES: Dict[str, Dict[str, Case]] = {}


def _case(category: str, name: str, expected: Dict[str, int],
          source: str) -> None:
    CASES.setdefault(category, {})[name] = (source, expected)


# -- basic -------------------------------------------------------------------

_case("basic", "Basic1", {"XSS": 1}, """
class Basic1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String s = req.getParameter("name");
    resp.getWriter().println(s);
  }
}""")

_case("basic", "Basic2_concat", {"XSS": 1}, """
class Basic2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String s = "pre" + req.getParameter("name") + "post";
    resp.getWriter().println(s);
  }
}""")

_case("basic", "Basic3_conditional", {"XSS": 1}, """
class Basic3 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String s = req.getParameter("name");
    String out = "default";
    if (s.length() > 3) { out = s; }
    resp.getWriter().println(out);
  }
}""")

_case("basic", "Basic4_loop_accumulate", {"XSS": 1}, """
class Basic4 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String acc = "";
    for (int i = 0; i < 3; i++) {
      acc = acc + req.getParameter("chunk");
    }
    resp.getWriter().println(acc);
  }
}""")

_case("basic", "Basic5_both_sinks", {"XSS": 1, "SQLI": 1}, """
class Basic5 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String s = req.getParameter("q");
    resp.getWriter().println(s);
    DriverManager.getConnection("db").createStatement()
        .executeQuery("SELECT " + s);
  }
}""")

_case("basic", "Basic6_header_source", {"XSS": 1}, """
class Basic6 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(req.getHeader("User-Agent"));
  }
}""")

# -- aliasing -------------------------------------------------------------------

_case("aliasing", "Aliasing1_direct", {"XSS": 1}, """
class Aliasing1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String a = req.getParameter("name");
    String b = a;
    resp.getWriter().println(b);
  }
}""")

_case("aliasing", "Aliasing2_object_alias", {"XSS": 1}, """
class Holder2a { String v; }
class Aliasing2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Holder2a h1 = new Holder2a();
    Holder2a h2 = h1;
    h1.v = req.getParameter("name");
    resp.getWriter().println(h2.v);
  }
}""")

_case("aliasing", "Aliasing3_distinct_objects", {"XSS": 0}, """
class Holder3a { String v; }
class Aliasing3 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Holder3a dirty = new Holder3a();
    Holder3a clean = new Holder3a();
    dirty.v = req.getParameter("name");
    clean.v = "safe";
    resp.getWriter().println(clean.v);
  }
}""")

# -- arrays ----------------------------------------------------------------------

_case("arrays", "Arrays1_store_load", {"XSS": 1}, """
class Arrays1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String[] a = new String[4];
    a[0] = req.getParameter("name");
    resp.getWriter().println(a[0]);
  }
}""")

_case("arrays", "Arrays2_collapsed_indices", {"XSS": 1}, """
class Arrays2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String[] a = new String[4];
    a[0] = req.getParameter("name");
    a[1] = "safe";
    // Index-insensitive array model: reading a[1] may see a[0], so a
    // sound analysis reports this (a known over-approximation).
    resp.getWriter().println(a[1]);
  }
}""")

_case("arrays", "Arrays3_distinct_arrays", {"XSS": 0}, """
class Arrays3 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String[] dirty = new String[2];
    String[] clean = new String[2];
    dirty[0] = req.getParameter("name");
    clean[0] = "safe";
    resp.getWriter().println(clean[0]);
  }
}""")

# -- collections ---------------------------------------------------------------------

_case("collections", "Collections1_map_hit", {"XSS": 1}, """
class Collections1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HashMap m = new HashMap();
    m.put("k", req.getParameter("name"));
    resp.getWriter().println(m.get("k"));
  }
}""")

_case("collections", "Collections2_key_miss", {"XSS": 0}, """
class Collections2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HashMap m = new HashMap();
    m.put("dirty", req.getParameter("name"));
    resp.getWriter().println(m.get("clean"));
  }
}""")

_case("collections", "Collections3_unknown_key", {"XSS": 1}, """
class Collections3 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HashMap m = new HashMap();
    m.put("dirty", req.getParameter("name"));
    String k = req.getParameter("which");
    resp.getWriter().println(m.get(k));
  }
}""")

_case("collections", "Collections4_list", {"XSS": 1}, """
class Collections4 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    LinkedList l = new LinkedList();
    l.add(req.getParameter("name"));
    resp.getWriter().println(l.get(0));
  }
}""")

_case("collections", "Collections5_distinct_maps", {"XSS": 0}, """
class Collections5 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HashMap dirty = new HashMap();
    HashMap clean = new HashMap();
    dirty.put("k", req.getParameter("name"));
    clean.put("k", "safe");
    resp.getWriter().println(clean.get("k"));
  }
}""")

# -- inter (interprocedural) -----------------------------------------------------------

_case("inter", "Inter1_static_helper", {"XSS": 1}, """
class Util1i { static String id(String v) { return v; } }
class Inter1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(Util1i.id(req.getParameter("name")));
  }
}""")

_case("inter", "Inter2_virtual_chain", {"XSS": 1}, """
class Hop2i {
  String one(String v) { return this.two(v); }
  String two(String v) { return v; }
}
class Inter2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Hop2i h = new Hop2i();
    resp.getWriter().println(h.one(req.getParameter("name")));
  }
}""")

_case("inter", "Inter3_context_matters", {"XSS": 0}, """
class Id3i { static String id(String v) { return v; } }
class Inter3 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String dirty = Id3i.id(req.getParameter("name"));
    String clean = Id3i.id("constant");
    resp.getWriter().println(clean);
  }
}""")

_case("inter", "Inter4_sink_in_callee", {"XSS": 1}, """
class Render4i {
  static void show(HttpServletResponse resp, String v) {
    resp.getWriter().println(v);
  }
}
class Inter4 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Render4i.show(resp, req.getParameter("name"));
  }
}""")

_case("inter", "Inter5_source_in_callee", {"XSS": 1}, """
class Fetch5i {
  static String read(HttpServletRequest req) {
    return req.getParameter("name");
  }
}
class Inter5 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(Fetch5i.read(req));
  }
}""")

_case("inter", "Inter6_recursion", {"XSS": 1}, """
class Rec6i {
  static String spin(String v, int n) {
    if (n > 0) { return Rec6i.spin(v, n - 1); }
    return v;
  }
}
class Inter6 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(Rec6i.spin(req.getParameter("name"), 3));
  }
}""")

# -- sanitizers --------------------------------------------------------------------------

_case("sanitizers", "Sanitizers1_direct", {"XSS": 0}, """
class Sanitizers1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(
        URLEncoder.encode(req.getParameter("name")));
  }
}""")

_case("sanitizers", "Sanitizers2_wrong_rule", {"SQLI": 1}, """
class Sanitizers2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    // URL-encoding does not defend against SQL injection.
    String s = URLEncoder.encode(req.getParameter("q"));
    DriverManager.getConnection("db").createStatement()
        .executeQuery("SELECT " + s);
  }
}""")

_case("sanitizers", "Sanitizers3_partial_path", {"XSS": 1}, """
class Sanitizers3 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String raw = req.getParameter("name");
    String safe = URLEncoder.encode(raw);
    resp.getWriter().println(safe);
    resp.getWriter().println(raw);
  }
}""")

_case("sanitizers", "Sanitizers4_in_helper", {"XSS": 0}, """
class Clean4s {
  static String scrub(String v) { return URLEncoder.encode(v); }
}
class Sanitizers4 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(Clean4s.scrub(req.getParameter("name")));
  }
}""")

# -- session -----------------------------------------------------------------------------

_case("session", "Session1_same_key", {"XSS": 1}, """
class Session1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HttpSession s = req.getSession();
    s.setAttribute("user", req.getParameter("name"));
    resp.getWriter().println(s.getAttribute("user"));
  }
}""")

_case("session", "Session2_other_key", {"XSS": 0}, """
class Session2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    HttpSession s = req.getSession();
    s.setAttribute("user", req.getParameter("name"));
    resp.getWriter().println(s.getAttribute("theme"));
  }
}""")

# -- datastructures (taint carriers / nested state) ---------------------------------------

_case("datastructures", "Data1_wrapper", {"XSS": 1}, """
class Wrap1d { String v; Wrap1d(String v) { this.v = v; } }
class Data1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    resp.getWriter().println(new Wrap1d(req.getParameter("name")));
  }
}""")

_case("datastructures", "Data2_getter", {"XSS": 1}, """
class Wrap2d {
  String v;
  Wrap2d(String v) { this.v = v; }
  String get() { return this.v; }
}
class Data2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Wrap2d w = new Wrap2d(req.getParameter("name"));
    resp.getWriter().println(w.get());
  }
}""")

_case("datastructures", "Data3_two_fields", {"XSS": 0}, """
class Pair3d { String a; String b; }
class Data3 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Pair3d p = new Pair3d();
    p.a = req.getParameter("name");
    p.b = "safe";
    resp.getWriter().println(p.b);
  }
}""")

_case("datastructures", "Data4_field_overwrite_weak", {"XSS": 1}, """
class Slot4d { String v; }
class Data4 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Slot4d s = new Slot4d();
    s.v = req.getParameter("name");
    s.v = "overwritten";
    // Flow-insensitive heap (weak updates): still reported, per the
    // hybrid algorithm's design.
    resp.getWriter().println(s.v);
  }
}""")

# -- factories ------------------------------------------------------------------------------

_case("factories", "Factories1_distinct_products", {"XSS": 0}, """
class Prod1f { String v; }
library class Maker1f {
  static Prod1f create() { return new Prod1f(); }
}
class Factories1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Prod1f dirty = Maker1f.create();
    Prod1f clean = Maker1f.create();
    dirty.v = req.getParameter("name");
    clean.v = "safe";
    resp.getWriter().println(clean.v);
  }
}""")

_case("factories", "Factories2_tainted_product", {"XSS": 1}, """
class Prod2f { String v; }
library class Maker2f {
  static Prod2f create() { return new Prod2f(); }
}
class Factories2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Prod2f p = Maker2f.create();
    p.v = req.getParameter("name");
    resp.getWriter().println(p.v);
  }
}""")

# -- reflection ---------------------------------------------------------------------------------

_case("reflection", "Refl1_motivating_core", {"XSS": 1}, """
class Target1r {
  public String id(String v) { return v; }
}
class Refl1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Target1r t = new Target1r();
    Class k = Class.forName("Target1r");
    Method m = k.getMethod("id");
    resp.getWriter().println(
        m.invoke(t, new Object[] { req.getParameter("name") }));
  }
}""")

_case("reflection", "Refl2_newinstance", {"XSS": 1}, """
class Target2r {
  String v;
  public String toString() { return this.v; }
}
class Refl2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Class k = Class.forName("Target2r");
    Target2r t = (Target2r) k.newInstance();
    t.v = req.getParameter("name");
    resp.getWriter().println(t);
  }
}""")

_case("reflection", "Refl3_name_filter_excludes", {"XSS": 0}, """
class Target3r {
  public String pass(String v) { return v; }
  public String block(String v) { return "safe"; }
}
class Refl3 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    Target3r t = new Target3r();
    Class k = Class.forName("Target3r");
    Method m = k.getMethod("block");
    resp.getWriter().println(
        m.invoke(t, new Object[] { req.getParameter("name") }));
  }
}""")

# -- strong updates (known over-approximations) -------------------------------------------------

_case("strong_updates", "Strong1_local_overwrite", {"XSS": 0}, """
class Strong1 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String s = req.getParameter("name");
    s = "overwritten";
    // SSA gives locals strong updates: no report.
    resp.getWriter().println(s);
  }
}""")

_case("strong_updates", "Strong2_branch_join", {"XSS": 1}, """
class Strong2 extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String s = "safe";
    if (req.getParameter("flag").length() > 0) {
      s = req.getParameter("name");
    }
    resp.getWriter().println(s);
  }
}""")


def all_cases():
    """Flattened iteration: (category, name, source, expected)."""
    for category in sorted(CASES):
        for name in sorted(CASES[category]):
            source, expected = CASES[category][name]
            yield category, name, source, expected


def case_count() -> int:
    return sum(len(v) for v in CASES.values())

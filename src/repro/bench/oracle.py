"""Scoring reported issues against planted ground truth.

A reported issue matches a planted flow when their (rule, sink-method)
pairs agree — the generator gives every planted pattern a dedicated sink
method, so this key is unique.  Classification:

* matched + plant is a ``tp*`` kind      → true positive;
* matched + plant is ``san``/``trap_*``  → false positive (the paper's
  manual triage would have rejected it);
* unmatched report                       → false positive;
* unreported ``tp*`` plant               → false negative.

This mechanical oracle replaces the paper's manual classification of
reports into true and false positives (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..core.results import TAJResult
from .generator import GeneratedApp, PlantedFlow


@dataclass
class Score:
    """TP/FP/FN counts for one analysis run on one app."""

    app: str
    config: str
    tp: int = 0
    fp: int = 0
    fn: int = 0
    failed: bool = False
    seconds: float = 0.0
    issues: int = 0
    matched_tp_kinds: Dict[str, int] = field(default_factory=dict)
    missed: List[PlantedFlow] = field(default_factory=list)
    false_kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """TP / (TP + FP) — the paper's accuracy score."""
        total = self.tp + self.fp
        return self.tp / total if total else 0.0


def _issue_keys(result: TAJResult) -> Set[Tuple[str, str]]:
    if result.report is None:
        # A degraded run may carry flows but no grouped report.
        return set()
    return {(issue.rule, issue.sink.split("@")[0])
            for issue in result.report.issues}


def score_run(app: GeneratedApp, result: TAJResult) -> Score:
    """Classify one run's report against the app's ground truth."""
    score = Score(app=app.spec.name, config=result.config_name,
                  failed=result.failed, seconds=result.times.total,
                  issues=result.issues)
    if result.failed:
        # The run aborted (paper: CS out-of-memory); nothing reported.
        score.fn = sum(1 for p in app.planted if p.is_true_positive)
        score.missed = [p for p in app.planted if p.is_true_positive]
        return score
    planted: Dict[Tuple[str, str], PlantedFlow] = {
        (p.rule, p.sink_method): p for p in app.planted}
    got = _issue_keys(result)
    for key in got:
        plant = planted.get(key)
        if plant is not None and plant.is_true_positive:
            score.tp += 1
            score.matched_tp_kinds[plant.kind] = \
                score.matched_tp_kinds.get(plant.kind, 0) + 1
        else:
            score.fp += 1
            kind = plant.kind if plant is not None else "unplanted"
            score.false_kinds[kind] = score.false_kinds.get(kind, 0) + 1
    for key, plant in planted.items():
        if plant.is_true_positive and key not in got:
            score.fn += 1
            score.missed.append(plant)
    return score


def aggregate(scores: List[Score]) -> Dict[str, float]:
    """Suite-level aggregates for one configuration."""
    completed = [s for s in scores if not s.failed]
    tp = sum(s.tp for s in completed)
    fp = sum(s.fp for s in completed)
    fn = sum(s.fn for s in completed)
    return {
        "tp": tp,
        "fp": fp,
        "fn": fn,
        "accuracy": tp / (tp + fp) if (tp + fp) else 0.0,
        "failures": sum(1 for s in scores if s.failed),
        "mean_seconds": (sum(s.seconds for s in completed) /
                         len(completed)) if completed else 0.0,
    }

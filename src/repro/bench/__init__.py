"""Benchmark suite: generator, the 22 applications, oracle, harness."""

from .generator import AppGenerator, AppSpec, GeneratedApp, PlantedFlow, \
    generate_app
from .harness import (RunRecord, SuiteResults, default_configs,
                      format_figure4, format_table3, run_suite,
                      write_bench_json)
from .micro import (MICRO_CASES, MICRO_DESCRIPTORS, MOTIVATING,
                    cyclic_stress)
from .oracle import Score, aggregate, score_run
from .stats import AppStats, compute_stats, format_table2
from .suite import (CS_COMPLETES, FIGURE4_APPS, benign_lib_classes,
                    generate_suite, suite_specs)

__all__ = [
    "AppGenerator", "AppSpec", "AppStats", "CS_COMPLETES",
    "FIGURE4_APPS", "GeneratedApp", "MICRO_CASES", "MICRO_DESCRIPTORS",
    "MOTIVATING", "PlantedFlow", "RunRecord", "Score", "SuiteResults",
    "aggregate", "benign_lib_classes", "compute_stats", "cyclic_stress",
    "default_configs", "format_figure4", "format_table2", "format_table3",
    "generate_app", "generate_suite", "run_suite", "score_run",
    "suite_specs", "write_bench_json",
]

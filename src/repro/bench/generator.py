"""Synthetic web-application generator with ground truth.

Each generated application is a deterministic function of its
:class:`AppSpec` (sizes + trait knobs + RNG seed).  The generator plants
flows from a pattern library and records a :class:`PlantedFlow` for each,
so true/false positives are decidable mechanically — replacing the
paper's manual triage of the 22 industrial benchmarks.

Planting families (see DESIGN.md §4):

* ``tp``      — real source→sink flows a sound analysis must report:
  direct, through string builders, maps under constant keys, the heap,
  helper calls, long call chains, reflection, taint carriers;
* ``tp_deep`` — a carrier flow whose tainted data sits deeper than the
  §6.2.3 nested-taint bound (the optimized configuration misses it);
* ``tp_thread`` — a cross-thread flow (CS thin slicing misses it);
* ``san``     — sanitized variants: reporting one is a false positive;
* ``decoy_*`` — sanitize-in-place overwrites: a tainted value is stored
  into a field, then overwritten with its sanitized copy before the
  load+sink.  The flow-insensitive heap (weak updates) makes every
  static configuration report them, while a dynamic replay sees only
  the sanitized value — planted *refutable* false positives for the
  confirmation oracle (``repro.confirm``);
* ``trap_context`` — tainted and clean data through one shared helper,
  the clean result printed: context-insensitive slicing reports it;
* ``trap_factory`` — two containers minted by one factory method, one
  tainted, the clean one printed: context-insensitive *pointer analysis*
  conflates the allocation site;
* ``trap_xentry`` — a store in one entrypoint and a load+print in
  another, connected only through the flow-insensitive heap: hybrid and
  CI report it (direct store→load edges ignore call structure), CS does
  not;
* ``trap_logger`` — a tainted value logged through the benign ``Logger``
  and re-read elsewhere: configurations without the whitelist code
  reduction report it.

Every planted pattern puts its sink in a dedicated method so the oracle
can match reports by (rule, sink-method) alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

SINK_OF_RULE = {
    "XSS": "PrintWriter.println",
    "SQLI": "Statement.executeQuery",
    "MALICIOUS_FILE": "FileReader.<init>",
    "INFO_LEAK": "PrintWriter.println",
}


@dataclass(frozen=True)
class PlantedFlow:
    """Ground truth for one planted pattern."""

    kind: str           # tp | tp_deep | tp_thread | san | decoy | trap_*
    rule: str                 # security rule it involves
    sink_method: str          # qname of the method holding the sink
    app: str

    @property
    def is_true_positive(self) -> bool:
        return self.kind.startswith("tp")

    @property
    def is_decoy(self) -> bool:
        """A planted false positive every static configuration reports
        but a dynamic replay refutes (sanitize-in-place overwrite)."""
        return self.kind == "decoy"


@dataclass
class AppSpec:
    """Size and trait knobs for one generated application."""

    name: str
    seed: int = 0
    # planted patterns
    tp_direct: int = 2
    tp_string: int = 1
    tp_map: int = 1
    tp_heap: int = 1
    tp_helper: int = 1
    tp_carrier: int = 1
    tp_chain: int = 0         # long-call-chain TPs (length ablation)
    tp_reflect: int = 0
    tp_sql: int = 1
    tp_file: int = 0
    tp_leak: int = 1
    tp_deep: int = 0          # nested-taint deeper than the bound
    tp_thread: int = 0        # cross-thread (CS false negatives)
    sanitized: int = 2
    decoy_field: int = 0      # sanitize-in-place instance field (XSS)
    decoy_static: int = 0     # sanitize-in-place static field (XSS)
    decoy_sql: int = 0        # sanitize-in-place escapeSql (SQLI)
    trap_context: int = 1
    trap_factory: int = 1
    trap_xentry: int = 1
    trap_xentry_long: int = 0
    trap_logger: int = 1
    # structure
    cold_classes: int = 2     # taint-free reachable code (budget pressure)
    cold_methods: int = 6     # methods per cold class
    lib_classes: int = 2      # app-specific supporting "library" code
    lib_methods: int = 6
    uses_struts: bool = False
    uses_ejb: bool = False

    # Fields multiplied by :meth:`scaled` — every planted-pattern count
    # plus the filler-code class counts (methods-per-class stay fixed:
    # scaling grows the app *wide*, in entrypoints, not deep).
    SCALED_FIELDS = (
        "tp_direct", "tp_string", "tp_map", "tp_heap", "tp_helper",
        "tp_carrier", "tp_chain", "tp_reflect", "tp_sql", "tp_file",
        "tp_leak", "tp_deep", "tp_thread", "sanitized", "decoy_field",
        "decoy_static", "decoy_sql", "trap_context",
        "trap_factory", "trap_xentry", "trap_xentry_long", "trap_logger",
        "cold_classes", "lib_classes",
    )

    def scaled(self, factor: int) -> "AppSpec":
        """This spec with every planted-pattern and filler-class count
        multiplied by ``factor`` (the ``--scale`` corpus knob).

        The generator spreads flow methods across servlets (~4 per
        servlet), so a scaled spec grows proportionally many
        entrypoints — the dimension the parallel taint sweep shards on
        (``repro.parallel.shards``).  Ground truth scales with it: the
        oracle stays mechanical at every factor.
        """
        if factor < 1:
            raise ValueError(f"scale factor must be >= 1, got {factor}")
        if factor == 1:
            return self
        changes = {name: getattr(self, name) * factor
                   for name in self.SCALED_FIELDS}
        changes["name"] = f"{self.name}-x{factor}"
        return replace(self, **changes)

    def total_tp(self) -> int:
        return (self.tp_direct + self.tp_string + self.tp_map +
                self.tp_heap + self.tp_helper + self.tp_carrier +
                self.tp_chain + self.tp_reflect + self.tp_sql +
                self.tp_file + self.tp_leak + self.tp_deep +
                self.tp_thread + (1 if self.uses_struts else 0) +
                (1 if self.uses_ejb else 0))


@dataclass
class GeneratedApp:
    """The generator's output."""

    spec: AppSpec
    sources: List[str]
    planted: List[PlantedFlow]
    deployment_descriptor: Dict[str, str] = field(default_factory=dict)


class AppGenerator:
    """Emits jlang source + ground truth for one :class:`AppSpec`."""

    def __init__(self, spec: AppSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.prefix = "".join(
            ch for ch in spec.name.title() if ch.isalnum()) or "App"
        self.planted: List[PlantedFlow] = []
        self.classes: List[str] = []
        self.descriptor: Dict[str, str] = {}
        self._servlet_bodies: List[Tuple[str, List[str]]] = []
        self._counter = 0

    # -- small helpers ------------------------------------------------------

    def _uid(self) -> int:
        self._counter += 1
        return self._counter

    def _plant(self, kind: str, rule: str, sink_method: str) -> None:
        self.planted.append(PlantedFlow(kind, rule, sink_method,
                                        self.spec.name))

    def _flow_method(self, body: str, uid: int) -> str:
        """A dedicated flow method on the current servlet."""
        return (f"  void flow{uid}(HttpServletRequest req, "
                f"HttpServletResponse resp) {{\n{body}\n  }}\n")

    # -- pattern library -------------------------------------------------------

    def _pat_tp_direct(self, servlet: str, uid: int) -> str:
        self._plant("tp", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(
            f'    resp.getWriter().println(req.getParameter("p{uid}"));',
            uid)

    def _pat_tp_string(self, servlet: str, uid: int) -> str:
        self._plant("tp", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    String raw = req.getParameter("p{uid}");
    StringBuilder sb = new StringBuilder();
    sb.append("user=");
    sb.append(raw.trim().toUpperCase());
    resp.getWriter().println(sb.toString());""", uid)

    def _pat_tp_map(self, servlet: str, uid: int) -> str:
        self._plant("tp", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    HashMap store = new HashMap();
    store.put("k{uid}", req.getParameter("p{uid}"));
    store.put("safe{uid}", "constant");
    resp.getWriter().println(store.get("k{uid}"));""", uid)

    def _pat_tp_heap(self, servlet: str, uid: int) -> str:
        holder = f"{self.prefix}Holder{uid}"
        self.classes.append(f"""
class {holder} {{
  String payload;
  String comment;
}}""")
        self._plant("tp", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    {holder} h = new {holder}();
    h.payload = req.getParameter("p{uid}");
    h.comment = "static";
    String v = h.payload;
    resp.getWriter().println(v);""", uid)

    def _pat_tp_helper(self, servlet: str, uid: int) -> str:
        helper = f"{self.prefix}Util{uid}"
        self.classes.append(f"""
class {helper} {{
  static String decorate(String v) {{
    return "[" + v + "]";
  }}
}}""")
        self._plant("tp", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    String v = {helper}.decorate(req.getParameter("p{uid}"));
    resp.getWriter().println(v);""", uid)

    def _pat_tp_carrier(self, servlet: str, uid: int) -> str:
        wrapper = f"{self.prefix}Bean{uid}"
        self.classes.append(f"""
class {wrapper} {{
  String content;
  {wrapper}(String c) {{ this.content = c; }}
  public String toString() {{ return this.content; }}
}}""")
        self._plant("tp", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    {wrapper} bean = new {wrapper}(req.getParameter("p{uid}"));
    {wrapper} other = new {wrapper}("harmless");
    resp.getWriter().println(bean);""", uid)

    def _pat_tp_chain(self, servlet: str, uid: int, hops: int = 5) -> str:
        """A TP whose value passes through ``hops`` helper calls (long
        flow, §6.2.2)."""
        chain = f"{self.prefix}Chain{uid}"
        methods = []
        for i in range(hops):
            nxt = (f"{chain}.hop{i + 1}(v)" if i + 1 < hops else "v")
            methods.append(f"""
  static String hop{i}(String v) {{
    String w = v + "";
    return {nxt.replace('(v)', '(w)')};
  }}""")
        self.classes.append(f"class {chain} {{{''.join(methods)}\n}}")
        self._plant("tp", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    String v = {chain}.hop0(req.getParameter("p{uid}"));
    resp.getWriter().println(v);""", uid)

    def _pat_tp_reflect(self, servlet: str, uid: int) -> str:
        target = f"{self.prefix}Refl{uid}"
        self.classes.append(f"""
class {target} {{
  public String render(String v) {{ return v; }}
  public String skip(String v) {{ return "safe"; }}
}}""")
        self._plant("tp", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    String raw = req.getParameter("p{uid}");
    {target} obj = new {target}();
    Class k = Class.forName("{target}");
    Method[] methods = k.getMethods();
    Method m = null;
    for (int i = 0; i < 4; i++) {{
      Method cand = methods[i];
      if (cand.getName().equals("render")) {{
        m = cand;
        break;
      }}
    }}
    String v = (String) m.invoke(obj, new Object[] {{ raw }});
    resp.getWriter().println(v);""", uid)

    def _pat_tp_sql(self, servlet: str, uid: int) -> str:
        self._plant("tp", "SQLI", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    String user = req.getParameter("u{uid}");
    Connection c = DriverManager.getConnection("jdbc:app");
    Statement st = c.createStatement();
    st.executeQuery("SELECT * FROM t WHERE u='" + user + "'");""", uid)

    def _pat_tp_file(self, servlet: str, uid: int) -> str:
        self._plant("tp", "MALICIOUS_FILE", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    String path = req.getParameter("f{uid}");
    FileReader r = new FileReader("data/" + path);""", uid)

    def _pat_tp_leak(self, servlet: str, uid: int) -> str:
        self._plant("tp", "INFO_LEAK", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    try {{
      Statement st =
          DriverManager.getConnection("jdbc:app").createStatement();
      st.executeUpdate("UPDATE t SET c = 1");
    }} catch (SQLException e) {{
      resp.getWriter().println(e);
    }}""", uid)

    def _pat_tp_deep(self, servlet: str, uid: int) -> str:
        """A tainted store whose base sits at field-dereference depth 3
        from the sink argument — beyond the default §6.2.3 bound of 2,
        so the fully-optimized configuration misses it."""
        outer = f"{self.prefix}Deep{uid}"
        self.classes.append(f"""
class {outer}Leaf {{
  String secret;
}}
class {outer}Inner {{
  {outer}Leaf leaf;
  {outer}Inner() {{ this.leaf = new {outer}Leaf(); }}
}}
class {outer}Mid {{
  {outer}Inner inner;
  {outer}Mid() {{ this.inner = new {outer}Inner(); }}
}}
class {outer} {{
  {outer}Mid mid;
  {outer}() {{ this.mid = new {outer}Mid(); }}
}}""")
        self._plant("tp_deep", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    {outer} box = new {outer}();
    {outer}Mid mid = box.mid;
    {outer}Inner inner = mid.inner;
    {outer}Leaf leaf = inner.leaf;
    leaf.secret = req.getParameter("p{uid}");
    resp.getWriter().println(box);""", uid)

    def _pat_tp_thread(self, servlet: str, uid: int) -> str:
        """Cross-thread flow through a static channel (CS misses it)."""
        shared = f"{self.prefix}Shared{uid}"
        task = f"{self.prefix}Task{uid}"
        self.classes.append(f"""
class {shared} {{
  static String channel;
}}
class {task} implements Runnable {{
  HttpServletResponse resp;
  {task}(HttpServletResponse r) {{ this.resp = r; }}
  public void run() {{
    String v = {shared}.channel;
    this.resp.getWriter().println(v);
  }}
}}""")
        self._plant("tp_thread", "XSS", f"{task}.run/0")
        return self._flow_method(f"""
    {shared}.channel = req.getParameter("p{uid}");
    Thread worker = new Thread(new {task}(resp));
    worker.start();""", uid)

    def _pat_sanitized(self, servlet: str, uid: int) -> str:
        self._plant("san", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    String v = URLEncoder.encode(req.getParameter("p{uid}"));
    resp.getWriter().println(v);""", uid)

    def _pat_decoy_field(self, servlet: str, uid: int) -> str:
        """Sanitize-in-place through an instance field: the tainted
        store is dead by the time the load runs, but weak heap updates
        keep it visible to every static configuration."""
        box = f"{self.prefix}DecoyBox{uid}"
        self.classes.append(f"""
class {box} {{
  String held;
}}""")
        self._plant("decoy", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    String raw = req.getParameter("p{uid}");
    {box} b = new {box}();
    b.held = raw;
    b.held = URLEncoder.encode(raw);
    resp.getWriter().println(b.held);""", uid)

    def _pat_decoy_static(self, servlet: str, uid: int) -> str:
        """Sanitize-in-place through a static field."""
        reg = f"{self.prefix}DecoyReg{uid}"
        self.classes.append(f"""
class {reg} {{
  static String slot;
}}""")
        self._plant("decoy", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    String raw = req.getParameter("p{uid}");
    {reg}.slot = raw;
    {reg}.slot = StringEscapeUtils.escapeHtml(raw);
    resp.getWriter().println({reg}.slot);""", uid)

    def _pat_decoy_sql(self, servlet: str, uid: int) -> str:
        """Sanitize-in-place feeding a SQL sink."""
        box = f"{self.prefix}DecoyQuery{uid}"
        self.classes.append(f"""
class {box} {{
  String clause;
}}""")
        self._plant("decoy", "SQLI", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    String user = req.getParameter("u{uid}");
    {box} q = new {box}();
    q.clause = user;
    q.clause = StringEscapeUtils.escapeSql(user);
    Connection c = DriverManager.getConnection("jdbc:app");
    Statement st = c.createStatement();
    st.executeQuery("SELECT * FROM t WHERE u='" + q.clause + "'");""",
                                 uid)

    def _pat_trap_context(self, servlet: str, uid: int) -> str:
        helper = f"{self.prefix}Ident{uid}"
        self.classes.append(f"""
class {helper} {{
  static String pass(String v) {{ return v; }}
}}""")
        self._plant("trap_context", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    String dirty = {helper}.pass(req.getParameter("p{uid}"));
    String clean = {helper}.pass("banner{uid}");
    resp.getWriter().println(clean);""", uid)

    def _pat_trap_factory(self, servlet: str, uid: int) -> str:
        """Two holders minted by one library factory: with factory
        call-string contexts (TAJ policy) they are distinct objects; a
        context-insensitive pointer analysis conflates the allocation
        site and reports the clean one."""
        holder = f"{self.prefix}Slot{uid}"
        factory = f"{self.prefix}Slots{uid}"
        self.classes.append(f"""
class {holder} {{
  String value;
}}
library class {factory} {{
  static {holder} create() {{ return new {holder}(); }}
}}""")
        self._plant("trap_factory", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    {holder} dirty = {factory}.create();
    {holder} clean = {factory}.create();
    dirty.value = req.getParameter("p{uid}");
    clean.value = "menu{uid}";
    String v = clean.value;
    resp.getWriter().println(v);""", uid)

    def _pat_trap_xentry(self, uid: int) -> None:
        """Store in one servlet, load+print in another: connected only by
        the flow-insensitive heap (hybrid/CI report, CS does not)."""
        registry = f"{self.prefix}Registry{uid}"
        writer_cls = f"{self.prefix}WriteServlet{uid}"
        reader_cls = f"{self.prefix}ReadServlet{uid}"
        self.classes.append(f"""
class {registry} {{
  static String slot;
}}
class {writer_cls} extends HttpServlet {{
  void doGet(HttpServletRequest req, HttpServletResponse resp) {{
    {registry}.slot = req.getParameter("p{uid}");
  }}
}}
class {reader_cls} extends HttpServlet {{
  void doGet(HttpServletRequest req, HttpServletResponse resp) {{
    String v = {registry}.slot;
    resp.getWriter().println(v);
  }}
}}""")
        self._plant("trap_xentry", "XSS", f"{reader_cls}.doGet/2")

    def _pat_trap_xentry_long(self, uid: int, hops: int = 10) -> None:
        """Like ``trap_xentry``, but the tainted value crawls through a
        long helper chain before reaching the shared static slot — the
        resulting spurious flow is long enough for the §6.2.2 flow-length
        bound to suppress it (the fully-optimized configuration's main
        false-positive cut)."""
        registry = f"{self.prefix}FarRegistry{uid}"
        chain = f"{self.prefix}FarChain{uid}"
        writer_cls = f"{self.prefix}FarWrite{uid}"
        reader_cls = f"{self.prefix}FarRead{uid}"
        methods = []
        for i in range(hops):
            nxt = (f"return {chain}.hop{i + 1}(w);" if i + 1 < hops
                   else "return w;")
            methods.append(f"""
  static String hop{i}(String v) {{
    String w = v + "";
    {nxt}
  }}""")
        self.classes.append(f"""
class {chain} {{{''.join(methods)}
}}
class {registry} {{
  static String slot;
}}
class {writer_cls} extends HttpServlet {{
  void doGet(HttpServletRequest req, HttpServletResponse resp) {{
    {registry}.slot = {chain}.hop0(req.getParameter("p{uid}"));
  }}
}}
class {reader_cls} extends HttpServlet {{
  void doGet(HttpServletRequest req, HttpServletResponse resp) {{
    String v = {registry}.slot;
    resp.getWriter().println(v);
  }}
}}""")
        self._plant("trap_xentry_long", "XSS", f"{reader_cls}.doGet/2")

    def _pat_trap_logger(self, servlet: str, uid: int) -> str:
        """Conflation through the benign Logger's shared static state:
        the sink method only ever logs a constant, but configurations
        analyzing Logger (no whitelist) see the tainted value from the
        sibling method in ``Logger.last``."""
        self._plant("trap_logger", "XSS", f"{servlet}.flowRead{uid}/2")
        writer = self._flow_method(
            f'    Logger.log(req.getParameter("p{uid}"));', uid)
        reader = (
            f"  void flowRead{uid}(HttpServletRequest req, "
            f"HttpServletResponse resp) {{\n"
            '    Logger.log("request-served");\n'
            "    Object recent = Logger.recent();\n"
            "    resp.getWriter().println(recent);\n  }\n")
        return writer + reader

    # -- struts / ejb ----------------------------------------------------------

    def _emit_struts(self, uid: int) -> None:
        form = f"{self.prefix}Form{uid}"
        action = f"{self.prefix}Action{uid}"
        self.classes.append(f"""
class {form} extends ActionForm {{
  String title;
  String body;
}}
class {action} extends Action {{
  ActionForward execute(ActionMapping mapping, ActionForm form,
                        HttpServletRequest req, HttpServletResponse resp) {{
    {form} f = ({form}) form;
    resp.getWriter().println(f.title);
    return null;
  }}
}}""")
        self._plant("tp", "XSS", f"{action}.execute/4")

    def _emit_ejb(self, servlet: str, uid: int) -> str:
        bean = f"{self.prefix}Bean{uid}Ejb"
        jndi = f"java:comp/env/ejb/{bean}"
        self.classes.append(f"""
class {bean} {{
  String echo(String v) {{ return v; }}
}}""")
        self.descriptor[jndi] = bean
        self._plant("tp", "XSS", f"{servlet}.flow{uid}/2")
        return self._flow_method(f"""
    InitialContext ctx = new InitialContext();
    Object ref = ctx.lookup("{jndi}");
    Object home = PortableRemoteObject.narrow(ref, "{bean}Home");
    {bean} remote = ({bean}) home.create();
    String v = remote.echo(req.getParameter("p{uid}"));
    resp.getWriter().println(v);""", uid)

    # -- filler code -------------------------------------------------------------

    def _emit_cold_classes(self) -> List[str]:
        """Reachable, taint-free code that consumes call-graph budget."""
        names = [f"{self.prefix}Cold{i}"
                 for i in range(self.spec.cold_classes)]
        for idx, name in enumerate(names):
            methods = []
            for m in range(self.spec.cold_methods):
                callee = ""
                if m + 1 < self.spec.cold_methods:
                    callee = f"    {name}.step{m + 1}(x + 1);\n"
                elif idx + 1 < len(names):
                    callee = f"    {names[idx + 1]}.step0(x + 1);\n"
                methods.append(f"""
  static void step{m}(int x) {{
    int y = x * 2;
{callee}  }}""")
            self.classes.append(f"class {name} {{{''.join(methods)}\n}}")
        return names

    def _emit_lib_classes(self) -> None:
        """App-specific supporting library code (marked ``library``)."""
        for i in range(self.spec.lib_classes):
            name = f"{self.prefix}Lib{i}"
            methods = []
            for m in range(self.spec.lib_methods):
                nxt = ""
                if m + 1 < self.spec.lib_methods:
                    nxt = f"    String deep = {name}.render{m + 1}(out);\n"
                methods.append(f"""
  static String render{m}(String v) {{
    String out = "<div>" + v + "</div>";
    Logger.log(out);
{nxt}    return out;
  }}""")
            self.classes.append(
                f"library class {name} {{{''.join(methods)}\n}}")

    # -- assembly -----------------------------------------------------------------

    def generate(self) -> GeneratedApp:
        spec = self.spec
        cold_roots = self._emit_cold_classes() if spec.cold_classes else []
        self._emit_lib_classes()

        flows: List[str] = []

        def plant_n(n: int, pattern) -> None:
            for _ in range(n):
                flows.append(pattern)

        plant_n(spec.tp_direct, self._pat_tp_direct)
        plant_n(spec.tp_string, self._pat_tp_string)
        plant_n(spec.tp_map, self._pat_tp_map)
        plant_n(spec.tp_heap, self._pat_tp_heap)
        plant_n(spec.tp_helper, self._pat_tp_helper)
        plant_n(spec.tp_carrier, self._pat_tp_carrier)
        plant_n(spec.tp_chain, self._pat_tp_chain)
        plant_n(spec.tp_reflect, self._pat_tp_reflect)
        plant_n(spec.tp_sql, self._pat_tp_sql)
        plant_n(spec.tp_file, self._pat_tp_file)
        plant_n(spec.tp_leak, self._pat_tp_leak)
        plant_n(spec.tp_deep, self._pat_tp_deep)
        plant_n(spec.tp_thread, self._pat_tp_thread)
        plant_n(spec.sanitized, self._pat_sanitized)
        plant_n(spec.decoy_field, self._pat_decoy_field)
        plant_n(spec.decoy_static, self._pat_decoy_static)
        plant_n(spec.decoy_sql, self._pat_decoy_sql)
        plant_n(spec.trap_context, self._pat_trap_context)
        plant_n(spec.trap_factory, self._pat_trap_factory)
        plant_n(spec.trap_logger, self._pat_trap_logger)
        if spec.uses_ejb:
            flows.append(self._emit_ejb)
        self.rng.shuffle(flows)

        # Spread flow methods across servlets, ~4 per servlet.
        servlet_count = max(1, (len(flows) + 3) // 4)
        servlets = [f"{self.prefix}Servlet{i}" for i in range(servlet_count)]
        buckets: Dict[str, List[str]] = {s: [] for s in servlets}
        for idx, pattern in enumerate(flows):
            servlet = servlets[idx % servlet_count]
            uid = self._uid()
            if pattern is self._emit_ejb:
                buckets[servlet].append(self._emit_ejb(servlet, uid))
            else:
                buckets[servlet].append(pattern(servlet, uid))

        for sidx, servlet in enumerate(servlets):
            calls = []
            for body in buckets[servlet]:
                # Extract every "void <name>(" method defined in the text.
                for piece in body.split("  void ")[1:]:
                    name = piece.split("(", 1)[0]
                    calls.append(f"    this.{name}(req, resp);")
            cold_call = ""
            if cold_roots:
                root = cold_roots[sidx % len(cold_roots)]
                cold_call = f"    {root}.step0({sidx});\n"
            lib_call = ""
            if spec.lib_classes:
                lib = f"{self.prefix}Lib{sidx % spec.lib_classes}"
                lib_call = (f'    String banner = {lib}.render0('
                            f'"page{sidx}");\n')
            body = "\n".join(calls)
            self.classes.append(f"""
class {servlet} extends HttpServlet {{
  void doGet(HttpServletRequest req, HttpServletResponse resp) {{
{cold_call}{lib_call}{body}
  }}
{''.join(buckets[servlet])}
}}""")

        for _ in range(spec.trap_xentry):
            self._pat_trap_xentry(self._uid())
        for _ in range(spec.trap_xentry_long):
            self._pat_trap_xentry_long(self._uid())
        if spec.uses_struts:
            self._emit_struts(self._uid())

        return GeneratedApp(spec=spec, sources=["\n".join(self.classes)],
                            planted=list(self.planted),
                            deployment_descriptor=dict(self.descriptor))


def generate_app(spec: AppSpec) -> GeneratedApp:
    """Generate one application from its spec."""
    return AppGenerator(spec).generate()


def scaling_corpus(scale: int, seed: int = 7) -> GeneratedApp:
    """The parallel-scaling corpus: the default spec at ``scale``×.

    At scale 1 this is a ~3-servlet app; at scale 10 it has ~35
    entrypoints and at scale 100 ~350 — enough independent seed groups
    to keep any realistic ``--jobs`` fan-out busy
    (``benchmarks/parallel_scaling.py``).
    """
    return generate_app(AppSpec(name="scaling", seed=seed).scaled(scale))


def summary_corpus(entrypoints: int, depth: int = 48, stmts: int = 6,
                   variant: int = 0) -> GeneratedApp:
    """The summary-cache corpus: a deep shared library, thin servlets.

    The inverse of :func:`scaling_corpus`'s shape: instead of many
    independent flow patterns (where per-entrypoint work dominates and
    a method summary has nothing to amortize), taint here crosses one
    ``depth``-method pipeline of ``stmts`` statements each — exactly
    the workload per-method summaries (:mod:`repro.summaries`) exist
    for.  Cold runs explore the pipeline once per rule; warm runs seal
    it from the cache and skip that exploration entirely.

    ``variant`` renames the servlets and their parameters while leaving
    the library byte-identical — two variants model two applications
    sharing a library, the cross-app reuse case: the library's
    content-hashed summary keys match across variants, the servlets'
    do not.
    """
    tag = f"V{variant}" if variant else ""
    methods = []
    for i in range(depth):
        steps = "\n".join(
            f'    String s{j + 1} = s{j} + "x{i}_{j}";'
            for j in range(stmts))
        nxt = (f"SharedPipe.stage{i + 1}(s{stmts})"
               if i + 1 < depth else f"s{stmts}")
        methods.append(f"""
  static String stage{i}(String v) {{
    String s0 = v.trim();
{steps}
    return {nxt};
  }}""")
    classes = [f"class SharedPipe {{{''.join(methods)}\n}}"]
    planted: List[PlantedFlow] = []
    for e in range(entrypoints):
        servlet = f"Entry{tag}{e}"
        if e % 2 == 0:
            body = (f'    String v = SharedPipe.stage0('
                    f'req.getParameter("q{tag}{e}"));\n'
                    f"    resp.getWriter().println(v);")
            planted.append(PlantedFlow("tp", "XSS",
                                       f"{servlet}.doGet/2",
                                       f"summary-{variant}"))
        else:
            body = (f'    String v = SharedPipe.stage0('
                    f'req.getParameter("q{tag}{e}"));\n'
                    f'    Connection c = '
                    f'DriverManager.getConnection("jdbc:app");\n'
                    f"    Statement st = c.createStatement();\n"
                    f'    st.executeQuery("SELECT * WHERE u=\'" + v '
                    f"+ \"'\");")
            planted.append(PlantedFlow("tp", "SQLI",
                                       f"{servlet}.doGet/2",
                                       f"summary-{variant}"))
        classes.append(f"""
class {servlet} extends HttpServlet {{
  void doGet(HttpServletRequest req, HttpServletResponse resp) {{
{body}
  }}
}}""")
    spec = AppSpec(name=f"summary-{variant}", seed=variant,
                   cold_classes=0, lib_classes=0)
    return GeneratedApp(spec=spec, sources=["\n".join(classes)],
                        planted=planted)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.bench.generator``: emit a scaled corpus."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="Generate a synthetic web application with ground "
                    "truth, scaled by --scale.")
    parser.add_argument("--scale", type=int, default=1, metavar="N",
                        help="multiply every planted-pattern count by N "
                             "(10-100 for the parallel-scaling corpus)")
    parser.add_argument("--seed", type=int, default=7,
                        help="generator RNG seed (default 7)")
    parser.add_argument("--out", metavar="FILE",
                        help="write the jlang corpus here "
                             "(default: stdout)")
    args = parser.parse_args(argv)
    app = scaling_corpus(args.scale, seed=args.seed)
    source = "\n".join(app.sources)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(source)
    else:
        print(source)
    planted = len(app.planted)
    tps = sum(1 for p in app.planted if p.is_true_positive)
    print(f"generated {app.spec.name}: {len(source.splitlines())} lines, "
          f"{planted} planted patterns ({tps} true positives)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())

"""The evaluation harness: runs configurations over the suite and
renders the paper's Table 3 and Figure 4 analogues."""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..core import TAJ, TAJConfig
from ..core.results import TAJResult
from ..modeling import PreparedProgram, prepare
from .generator import GeneratedApp
from .oracle import Score, aggregate, score_run
from .suite import FIGURE4_APPS, benign_lib_classes, generate_suite


@dataclass
class RunRecord:
    """One (app, config) cell of Table 3."""

    app: str
    config: str
    issues: int
    seconds: float
    failed: bool
    cg_nodes: int
    score: Score
    # Pointer-solver kernel counters and phase times for this run
    # (propagations, cycles_collapsed, time_constraint_solving, ...).
    solver_stats: Dict[str, float] = field(default_factory=dict)
    # Metrics-registry snapshot (counters/gauges/timers/histograms) for
    # this run — the full observability picture, not just the kernel.
    metrics: Dict[str, Dict] = field(default_factory=dict)
    # Resilience record (docs/robustness.md): whether this cell's
    # numbers came from a complete run, and which ladder rungs it
    # descended to get them.
    completeness: str = "complete"
    degradations: List[Dict[str, str]] = field(default_factory=list)
    # Set when the run (or the app's shared modeling) raised instead of
    # returning a result — the harness isolates the failure to this cell
    # and keeps benchmarking the rest of the suite.
    error: Optional[str] = None


@dataclass
class SuiteResults:
    """Everything a harness run produced."""

    records: List[RunRecord] = field(default_factory=list)

    def by_config(self) -> Dict[str, List[RunRecord]]:
        out: Dict[str, List[RunRecord]] = {}
        for rec in self.records:
            out.setdefault(rec.config, []).append(rec)
        return out

    def cell(self, app: str, config: str) -> Optional[RunRecord]:
        for rec in self.records:
            if rec.app == app and rec.config == config:
                return rec
        return None


def default_configs() -> List[TAJConfig]:
    return TAJConfig.all_presets()


def _failure_record(app: GeneratedApp, config: TAJConfig,
                    exc: Exception) -> RunRecord:
    """A cell for a run that raised instead of returning a result."""
    score = Score(app=app.spec.name, config=config.name, failed=True)
    score.fn = sum(1 for p in app.planted if p.is_true_positive)
    score.missed = [p for p in app.planted if p.is_true_positive]
    return RunRecord(app=app.spec.name, config=config.name, issues=0,
                     seconds=0.0, failed=True, cg_nodes=0, score=score,
                     completeness="failed",
                     error=f"{type(exc).__name__}: {exc}")


def run_suite(apps: Optional[Dict[str, GeneratedApp]] = None,
              configs: Optional[List[TAJConfig]] = None,
              app_names: Optional[List[str]] = None,
              isolate: bool = True) -> SuiteResults:
    """Run every configuration on every app; the modeled program is
    prepared once per app and shared across configurations.

    With ``isolate`` (the default), a run that raises is recorded as a
    failed cell for that (app, config) alone — one crashing app or
    configuration cannot take down the rest of the sweep.  Pass
    ``isolate=False`` to let exceptions propagate (debugging).

    Parallel configurations (``jobs > 1``, no checkpoint) share one
    :class:`~repro.parallel.PoolLease` per (jobs, start_method) pair
    across the whole corpus loop, so only the first app pays worker
    startup — the rest reload the live pool (unsupervised; acceptable
    for the trusted bench corpus).
    """
    if apps is None:
        apps = generate_suite(app_names)
    configs = configs if configs is not None else default_configs()
    results = SuiteResults()
    leases: Dict = {}

    def _lease_for(config: TAJConfig):
        if config.jobs <= 1 or config.checkpoint_dir is not None:
            return None
        from ..parallel import PoolLease
        key = (config.jobs, config.start_method)
        if key not in leases:
            leases[key] = PoolLease(config.jobs, config.start_method)
        return leases[key]

    try:
        for name in sorted(apps):
            app = apps[name]
            try:
                prepared = prepare(app.sources,
                                   app.deployment_descriptor)
            except Exception as exc:
                if not isolate:
                    raise
                # The shared modeling phase died: every cell of this
                # app's row fails, the remaining apps still run.
                for config in configs:
                    results.records.append(
                        _failure_record(app, config, exc))
                continue
            whitelist_extra = frozenset(benign_lib_classes(app))
            for config in configs:
                run_config = config
                if config.use_whitelist:
                    run_config = replace(config,
                                         whitelist_extra=whitelist_extra)
                try:
                    result = TAJ(run_config,
                                 pool_lease=_lease_for(run_config)) \
                        .analyze_prepared(prepared)
                except Exception as exc:
                    if not isolate:
                        raise
                    results.records.append(
                        _failure_record(app, config, exc))
                    continue
                score = score_run(app, result)
                results.records.append(RunRecord(
                    app=name, config=config.name, issues=result.issues,
                    seconds=result.times.total, failed=result.failed,
                    cg_nodes=result.cg_nodes, score=score,
                    solver_stats=result.solver_stats(),
                    metrics=result.metrics,
                    completeness=result.completeness,
                    degradations=[d.to_dict()
                                  for d in result.degradations]))
    finally:
        for lease in leases.values():
            lease.close()
    return results


def write_bench_json(path: str, payload: Dict) -> None:
    """Write a machine-readable benchmark artifact.

    Stable formatting (sorted keys, trailing newline) so committed
    artifacts like ``BENCH_solver.json`` produce minimal diffs.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- rendering ----------------------------------------------------------------

def format_table3(results: SuiteResults,
                  configs: Optional[List[str]] = None) -> str:
    """The Table 3 analogue: issues + time per configuration per app.

    Failed runs (CS exceeding its memory-emulation budget) render as
    "-", as in the paper's empty cells.
    """
    config_names = configs or [c.name for c in default_configs()]
    apps = sorted({rec.app for rec in results.records})
    header = f"{'Application':<14}"
    for cname in config_names:
        short = cname.replace("hybrid-", "h-")
        header += f"{short + ' iss':>16}{'t(s)':>7}"
    lines = [header, "-" * len(header)]
    for app in apps:
        row = f"{app:<14}"
        for cname in config_names:
            rec = results.cell(app, cname)
            if rec is None or rec.failed:
                row += f"{'-':>16}{'-':>7}"
            else:
                row += f"{rec.issues:>16}{rec.seconds:>7.2f}"
        lines.append(row)
    lines.append("-" * len(header))
    summary = f"{'mean time':<14}"
    for cname in config_names:
        recs = [r for r in results.by_config().get(cname, [])
                if not r.failed]
        mean = sum(r.seconds for r in recs) / len(recs) if recs else 0.0
        summary += f"{'':>16}{mean:>7.2f}"
    lines.append(summary)
    return "\n".join(lines)


def format_figure4(results: SuiteResults,
                   apps: Optional[List[str]] = None,
                   configs: Optional[List[str]] = None) -> str:
    """The Figure 4 analogue: TP/FP breakdown on the key benchmarks,
    plus per-configuration accuracy scores."""
    config_names = configs or [c.name for c in default_configs()]
    apps = apps or FIGURE4_APPS
    header = f"{'Application':<14}"
    for cname in config_names:
        short = cname.replace("hybrid-", "h-")
        header += f"{short:>22}"
    lines = [header]
    sub = f"{'':<14}" + "".join(f"{'TP/FP/FN':>22}" for _ in config_names)
    lines.append(sub)
    lines.append("-" * len(sub))
    for app in apps:
        row = f"{app:<14}"
        for cname in config_names:
            rec = results.cell(app, cname)
            if rec is None:
                row += f"{'?':>22}"
            elif rec.failed:
                row += f"{'(out of budget)':>22}"
            else:
                s = rec.score
                row += f"{f'{s.tp}/{s.fp}/{s.fn}':>22}"
        lines.append(row)
    lines.append("-" * len(sub))
    acc = f"{'accuracy':<14}"
    for cname in config_names:
        scores = [results.cell(app, cname).score for app in apps
                  if results.cell(app, cname) is not None]
        agg = aggregate(scores)
        acc += f"{agg['accuracy']:>22.2f}"
    lines.append(acc)
    return "\n".join(lines)

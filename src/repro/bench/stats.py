"""Application statistics (the Table 2 reproduction).

The paper reports files / line counts / class counts / method counts,
application vs. total (with supporting libraries).  jlang programs have
no files; we report class counts, method counts, and IR instruction
counts (the closest analogue of line counts) for application code and
for the whole program including the model library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..modeling import prepare
from .generator import GeneratedApp


@dataclass
class AppStats:
    """Size statistics for one benchmark application."""

    name: str
    app_classes: int
    total_classes: int
    app_methods: int
    total_methods: int
    app_instructions: int
    total_instructions: int
    planted_tp: int
    planted_other: int


def compute_stats(app: GeneratedApp) -> AppStats:
    prepared = prepare(app.sources, app.deployment_descriptor)
    raw = prepared.program.stats()
    tp = sum(1 for p in app.planted if p.is_true_positive)
    return AppStats(
        name=app.spec.name,
        app_classes=raw["app_classes"],
        total_classes=raw["total_classes"],
        app_methods=raw["app_methods"],
        total_methods=raw["total_methods"],
        app_instructions=raw["app_instructions"],
        total_instructions=raw["total_instructions"],
        planted_tp=tp,
        planted_other=len(app.planted) - tp,
    )


def format_table2(stats: List[AppStats]) -> str:
    """Render the Table 2 analogue."""
    header = (f"{'Application':<14}{'Classes':>9}{'(tot)':>7}"
              f"{'Methods':>9}{'(tot)':>7}{'Instrs':>9}{'(tot)':>8}"
              f"{'TP':>5}{'Other':>7}")
    lines = [header, "-" * len(header)]
    for s in stats:
        lines.append(
            f"{s.name:<14}{s.app_classes:>9}{s.total_classes:>7}"
            f"{s.app_methods:>9}{s.total_methods:>7}"
            f"{s.app_instructions:>9}{s.total_instructions:>8}"
            f"{s.planted_tp:>5}{s.planted_other:>7}")
    return "\n".join(lines)

"""CFG traversal utilities over :class:`~repro.ir.program.Method` bodies."""

from __future__ import annotations

from typing import Dict, List

from ..ir import Method


def reverse_postorder(method: Method) -> List[int]:
    """Block ids in reverse postorder from the entry block."""
    visited = set()
    order: List[int] = []

    def visit(bid: int) -> None:
        # Iterative DFS to keep deep CFGs off the Python stack.
        stack = [(bid, iter(method.blocks[bid].succs))]
        visited.add(bid)
        while stack:
            cur, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(method.blocks[succ].succs)))
                    advanced = True
                    break
            if not advanced:
                order.append(cur)
                stack.pop()

    visit(method.entry_block)
    order.reverse()
    return order


def rpo_numbering(method: Method) -> Dict[int, int]:
    """Map block id -> its reverse-postorder index."""
    return {bid: idx for idx, bid in enumerate(reverse_postorder(method))}

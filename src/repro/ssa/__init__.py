"""SSA construction and SSA-based analyses for jlang IR."""

from .cfg import reverse_postorder, rpo_numbering
from .constprop import BOTTOM, ConstantValues, TOP
from .construct import SSAInfo, program_to_ssa, to_ssa
from .dominance import DominatorTree

__all__ = [
    "BOTTOM", "ConstantValues", "DominatorTree", "SSAInfo", "TOP",
    "program_to_ssa", "reverse_postorder", "rpo_numbering", "to_ssa",
]

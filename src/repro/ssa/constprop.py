"""Sparse constant propagation over SSA form.

Computes, for every SSA variable, whether it holds a single compile-time
constant.  Two TAJ model passes consume this: reflection resolution
(``Class.forName``/``Method.invoke`` with constant operands, paper §4.2.3)
and constant-key dictionary access (paper §4.2.1).

The lattice per variable is TOP (no information yet) / a constant /
BOTTOM (more than one value).  String concatenation folds, matching the
paper's observation that hash keys are usually resolvable constants.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir import Assign, BinOp, Cast, Const, Method, Phi, StringOp, UnOp, Var
from .construct import SSAInfo


class _Top:
    def __repr__(self) -> str:
        return "TOP"


class _Bottom:
    def __repr__(self) -> str:
        return "BOTTOM"


TOP = _Top()
BOTTOM = _Bottom()

# StringOps whose result is a constant when all inputs are constants.
_FOLDABLE_STRING_OPS = {
    "concat": lambda args: "".join(args),
    "toString": lambda args: args[0],
    "valueOf": lambda args: args[0],
    "trim": lambda args: args[0].strip(),
    "intern": lambda args: args[0],
}


def _eval_binop(op: str, left: object, right: object) -> object:
    try:
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return f"{left}{right}"
            return left + right  # type: ignore[operator]
        if op == "-":
            return left - right  # type: ignore[operator]
        if op == "*":
            return left * right  # type: ignore[operator]
        if op == "/":
            return left // right  # type: ignore[operator]
        if op == "%":
            return left % right  # type: ignore[operator]
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except (TypeError, ZeroDivisionError):
        return BOTTOM
    return BOTTOM


class ConstantValues:
    """Constant lattice values for every SSA variable of one method."""

    def __init__(self, method: Method, ssa: SSAInfo) -> None:
        self.method = method
        self.ssa = ssa
        self.values: Dict[Var, object] = {}
        self._solve()

    def _transfer(self, var: Var) -> object:
        instr = self.ssa.def_site.get(var)
        if instr is None:
            return BOTTOM  # parameter / undef: unknown
        if isinstance(instr, Const):
            return instr.value
        if isinstance(instr, Assign):
            return self.values.get(instr.rhs, BOTTOM)
        if isinstance(instr, Cast):
            return self.values.get(instr.value, BOTTOM)
        if isinstance(instr, UnOp):
            val = self.values.get(instr.operand, BOTTOM)
            if val is BOTTOM or val is TOP:
                return val
            if instr.op == "!":
                return not val
            if instr.op == "-" and isinstance(val, int):
                return -val
            return BOTTOM
        if isinstance(instr, BinOp):
            left = self.values.get(instr.left, BOTTOM)
            right = self.values.get(instr.right, BOTTOM)
            if left is TOP or right is TOP:
                return TOP
            if left is BOTTOM or right is BOTTOM:
                return BOTTOM
            return _eval_binop(instr.op, left, right)
        if isinstance(instr, Phi):
            result: object = TOP
            for operand in instr.operands.values():
                val = self.values.get(operand, BOTTOM)
                if val is TOP:
                    continue
                if result is TOP:
                    result = val
                elif val is BOTTOM or val != result or \
                        type(val) is not type(result):
                    return BOTTOM
            return result
        if isinstance(instr, StringOp):
            op = instr.method.rsplit(".", 1)[-1]
            fold = _FOLDABLE_STRING_OPS.get(op)
            if fold is None:
                return BOTTOM
            args = [self.values.get(a, BOTTOM) for a in instr.args]
            if any(a is TOP for a in args):
                return TOP
            if any(a is BOTTOM or not isinstance(a, str) for a in args):
                return BOTTOM
            return fold([str(a) for a in args])
        return BOTTOM

    def _solve(self) -> None:
        for var in self.ssa.def_site:
            self.values[var] = TOP
        changed = True
        # SSA has one def per var; a few rounds reach the fixed point.
        while changed:
            changed = False
            for var in self.ssa.def_site:
                new = self._transfer(var)
                old = self.values[var]
                if new is not old and new != old:
                    # Monotone descent TOP -> const -> BOTTOM only.
                    if old is TOP or new is BOTTOM:
                        self.values[var] = new
                        changed = True
        # Anything still TOP is unreachable/undefined; treat as unknown.
        for var, val in self.values.items():
            if val is TOP:
                self.values[var] = BOTTOM

    def constant_of(self, var: Var) -> Optional[object]:
        """The constant value of ``var``, or None if not constant."""
        val = self.values.get(var, BOTTOM)
        if val is BOTTOM or val is TOP:
            return None
        return val

    def string_constant_of(self, var: Var) -> Optional[str]:
        val = self.constant_of(var)
        return val if isinstance(val, str) else None

"""SSA construction (Cytron et al.): phi placement + renaming.

After :func:`to_ssa`, every variable in a method body has exactly one
definition.  Renamed versions are ``name.1``, ``name.2`` ...; version 0
(``name.0``) is the implicit "undefined at entry" value.  Parameters and
``this`` keep their original names (they are defined at entry).

The SSA form gives TAJ's pointer analysis its measure of flow sensitivity
for local points-to sets (paper §3.1, citing Hasti & Horwitz), and makes
the local data-dependence edges of the no-heap SDG a pure def-use lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir import Instruction, Method, Phi, Var
from .dominance import DominatorTree


@dataclass
class SSAInfo:
    """Def-use information for a method in SSA form."""

    def_site: Dict[Var, Instruction] = field(default_factory=dict)
    uses: Dict[Var, List[Instruction]] = field(default_factory=dict)

    def users_of(self, var: Var) -> List[Instruction]:
        return self.uses.get(var, [])


def _original(name: Var) -> Var:
    """Strip an SSA version suffix."""
    if "." in name:
        base, _, ver = name.rpartition(".")
        if ver.isdigit():
            return base
    return name


def to_ssa(method: Method) -> SSAInfo:
    """Convert ``method`` to SSA form in place and return def-use info."""
    if method.is_native or not method.blocks:
        return SSAInfo()
    dom = DominatorTree(method)

    # 1. Collect assignment sites per variable.
    def_blocks: Dict[Var, Set[int]] = {}
    all_vars: Set[Var] = set()
    for bid, block in method.blocks.items():
        for instr in block.instrs:
            for var in instr.defs():
                def_blocks.setdefault(var, set()).add(bid)
                all_vars.add(var)
            all_vars.update(instr.uses())

    entry_defined = set(method.param_names())
    if not method.is_static:
        entry_defined.add("this")

    # 2. Place phi nodes using iterated dominance frontiers.
    phis_in_block: Dict[int, List[Tuple[Var, Phi]]] = {}
    for var, blocks in def_blocks.items():
        worklist = list(blocks)
        placed: Set[int] = set()
        while worklist:
            bid = worklist.pop()
            for df in dom.frontier.get(bid, ()):
                if df in placed:
                    continue
                if len(method.blocks[df].preds) < 2:
                    continue
                phi = Phi(var)
                phi.iid = method.fresh_iid()
                method.blocks[df].instrs.insert(0, phi)
                phis_in_block.setdefault(df, []).append((var, phi))
                placed.add(df)
                if df not in blocks:
                    worklist.append(df)

    # 3. Rename along the dominator tree.
    counters: Dict[Var, int] = {}
    stacks: Dict[Var, List[Var]] = {}

    def top(var: Var) -> Var:
        stack = stacks.get(var)
        if stack:
            return stack[-1]
        return var if var in entry_defined else f"{var}.0"

    def fresh(var: Var) -> Var:
        counters[var] = counters.get(var, 0) + 1
        new = f"{var}.{counters[var]}"
        stacks.setdefault(var, []).append(new)
        return new

    pushed: Dict[int, List[Var]] = {}

    def rename_block(bid: int) -> None:
        block = method.blocks[bid]
        pushed[bid] = []
        for instr in block.instrs:
            if not isinstance(instr, Phi):
                instr.replace_uses({v: top(v) for v in instr.uses()})
            olds = instr.defs()
            if olds:
                old = olds[0]
                instr.replace_defs({old: fresh(old)})
                pushed[bid].append(old)
        for succ in block.succs:
            for var, phi in phis_in_block.get(succ, ()):
                phi.operands[bid] = top(var)

    def pop_block(bid: int) -> None:
        for var in pushed[bid]:
            stacks[var].pop()

    # Explicit preorder walk with post-visit pops.
    stack: List[Tuple[int, bool]] = [(method.entry_block, False)]
    while stack:
        bid, done = stack.pop()
        if done:
            pop_block(bid)
            continue
        rename_block(bid)
        stack.append((bid, True))
        for child in reversed(dom.children.get(bid, [])):
            stack.append((child, False))

    # 4. Prune dead phis (mostly versions of expression temporaries) so
    # downstream graphs don't carry noise nodes.
    _prune_dead_phis(method)

    # 5. Build def-use info.
    info = SSAInfo()
    for block in method.blocks.values():
        for instr in block.instrs:
            for var in instr.defs():
                info.def_site[var] = instr
            for var in instr.uses():
                info.uses.setdefault(var, []).append(instr)
    return info


def _prune_dead_phis(method: Method) -> None:
    """Iteratively remove phi nodes whose results are never used."""
    while True:
        used: Set[Var] = set()
        for block in method.blocks.values():
            for instr in block.instrs:
                used.update(instr.uses())
        removed = False
        for block in method.blocks.values():
            keep = []
            for instr in block.instrs:
                if isinstance(instr, Phi) and instr.lhs not in used:
                    removed = True
                else:
                    keep.append(instr)
            block.instrs = keep
        if not removed:
            return


def program_to_ssa(program) -> Dict[str, SSAInfo]:
    """Convert every method of a program to SSA; map qname -> SSAInfo."""
    out: Dict[str, SSAInfo] = {}
    for method in program.methods():
        out[method.qname] = to_ssa(method)
    return out

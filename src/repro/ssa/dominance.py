"""Dominator trees and dominance frontiers.

Implements the iterative algorithm of Cooper, Harvey & Kennedy ("A Simple,
Fast Dominance Algorithm") over reverse postorder, and Cytron et al.'s
dominance-frontier computation.  Both feed SSA construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir import Method
from .cfg import reverse_postorder


class DominatorTree:
    """Immediate dominators and dominance frontiers for one method."""

    def __init__(self, method: Method) -> None:
        self.method = method
        self.rpo = reverse_postorder(method)
        self._rpo_index = {bid: i for i, bid in enumerate(self.rpo)}
        self.idom: Dict[int, Optional[int]] = {}
        self.frontier: Dict[int, Set[int]] = {}
        self.children: Dict[int, List[int]] = {}
        self._compute_idoms()
        self._compute_frontiers()

    def _intersect(self, b1: int, b2: int) -> int:
        idx = self._rpo_index
        while b1 != b2:
            while idx[b1] > idx[b2]:
                b1 = self.idom[b1]  # type: ignore[assignment]
            while idx[b2] > idx[b1]:
                b2 = self.idom[b2]  # type: ignore[assignment]
        return b1

    def _compute_idoms(self) -> None:
        entry = self.method.entry_block
        self.idom = {bid: None for bid in self.rpo}
        self.idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for bid in self.rpo:
                if bid == entry:
                    continue
                preds = [p for p in self.method.blocks[bid].preds
                         if self.idom.get(p) is not None]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(pred, new_idom)
                if self.idom[bid] != new_idom:
                    self.idom[bid] = new_idom
                    changed = True
        self.children = {bid: [] for bid in self.rpo}
        for bid in self.rpo:
            if bid != entry and self.idom[bid] is not None:
                self.children[self.idom[bid]].append(bid)  # type: ignore

    def _compute_frontiers(self) -> None:
        self.frontier = {bid: set() for bid in self.rpo}
        for bid in self.rpo:
            preds = self.method.blocks[bid].preds
            if len(preds) < 2:
                continue
            for pred in preds:
                if pred not in self._rpo_index:
                    continue
                runner = pred
                while runner != self.idom[bid]:
                    self.frontier[runner].add(bid)
                    nxt = self.idom[runner]
                    if nxt is None or nxt == runner and runner != \
                            self.method.entry_block:
                        break
                    if nxt == runner:
                        break
                    runner = nxt

    def dominates(self, a: int, b: int) -> bool:
        """True if block ``a`` dominates block ``b``."""
        entry = self.method.entry_block
        cur: Optional[int] = b
        while cur is not None:
            if cur == a:
                return True
            if cur == entry:
                return False
            cur = self.idom[cur]
        return False

    def dom_tree_preorder(self) -> List[int]:
        """Dominator-tree preorder starting at the entry block."""
        order: List[int] = []
        stack = [self.method.entry_block]
        while stack:
            bid = stack.pop()
            order.append(bid)
            stack.extend(reversed(self.children.get(bid, [])))
        return order

"""Dynamic-confirmation scoring: oracle precision/recall per config.

Runs the whole differential corpus (motivating example + micro cases +
securibench) and a pair of scaled generator apps (one decoy-free, one
decoy-rich) through analyze→confirm for each engine config (ci /
hybrid / cs), then scores the replay oracle as a classifier over the
statically-reported flows:

* a reported flow is *dynamically real* iff the corpus ground truth
  says so — the three securibench cases documented in-source as sound
  static over-approximations (index-insensitive arrays, unknown map
  keys, weak field updates) are real *statically* but false
  *dynamically*, and generator decoys are planted false positives;
* precision = confirmed-and-real / confirmed;
* recall    = confirmed-and-real / real-and-reported.

The headline guarantee is separation, not speed: the oracle must
confirm every reported planted true positive, refute every reported
decoy, and never refute a true positive.  ``--check`` enforces exactly
that (and precision == 1.0 on the decoy-free app — the CI
confirmation-smoke gate).

Entry point (script only):

    PYTHONPATH=src python benchmarks/confirmation.py
        [--quick] [--check] [--scale N] [--out BENCH_solver.json]

Results merge into ``BENCH_solver.json`` under the ``confirmation``
key, preserving everything already recorded there.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script mode
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.generator import AppSpec, GeneratedApp, generate_app
from repro.bench.harness import write_bench_json
from repro.bench.micro import MICRO_CASES, MICRO_DESCRIPTORS, MOTIVATING
from repro.bench.securibench import CASES
from repro.confirm import CONFIRMED, INCONCLUSIVE, REFUTED
from repro.core import TAJ, TAJConfig

# Statically expected yet dynamically unrealizable: the replay is the
# judge the static analysis cannot be (see tests/confirm/test_oracle).
KNOWN_OVERAPPROX = {
    "securibench/arrays/Arrays2_collapsed_indices",
    "securibench/collections/Collections3_unknown_key",
    "securibench/datastructures/Data4_field_overwrite_weak",
}

CONFIGS = ("ci", "hybrid", "cs")
DEFAULT_SCALE = 4


def make_config(name: str, resilient: bool = False) -> TAJConfig:
    base = {"ci": TAJConfig.ci, "hybrid": TAJConfig.hybrid_optimized,
            "cs": TAJConfig.cs}[name]()
    if resilient:
        base = base.with_resilience(resilient=True)
    return base.with_confirm()


def corpus_cases() -> Iterator[Tuple[str, List[str], Optional[Dict],
                                     Dict[str, int]]]:
    """(case_id, sources, descriptor, expected-real-flow counts)."""
    yield "micro/motivating", [MOTIVATING], None, {"XSS": 1}
    for name, (source, expected) in sorted(MICRO_CASES.items()):
        descriptor = MICRO_DESCRIPTORS.get(name)
        yield f"micro/{name}", [source], descriptor, dict(expected)
    for category, cases in sorted(CASES.items()):
        for name, (source, expected) in sorted(cases.items()):
            case_id = f"securibench/{category}/{name}"
            real = {} if case_id in KNOWN_OVERAPPROX else dict(expected)
            yield case_id, [source], None, real


def generator_apps(scale: int) -> List[Tuple[str, GeneratedApp]]:
    clean = AppSpec(name="clean", seed=13).scaled(scale)
    decoys = AppSpec(name="decoys", seed=11, decoy_field=2,
                     decoy_static=1, decoy_sql=1).scaled(scale)
    return [("clean", generate_app(clean)),
            ("decoys", generate_app(decoys))]


@dataclass
class Tally:
    """Oracle-as-classifier counts for one (config, corpus) pair."""

    reported: int = 0
    confirmed: int = 0
    refuted: int = 0
    inconclusive: int = 0
    tp: int = 0                 # confirmed and dynamically real
    fp_confirmed: int = 0       # confirmed but dynamically false
    tp_refuted: int = 0         # refuted despite being real (must be 0)
    real_reported: int = 0      # real flows the static analysis showed
    decoys_reported: int = 0
    decoys_refuted: int = 0
    seconds: float = 0.0
    incomplete: List[str] = field(default_factory=list)

    def precision(self) -> Optional[float]:
        return self.tp / self.confirmed if self.confirmed else None

    def recall(self) -> Optional[float]:
        return self.tp / self.real_reported if self.real_reported \
            else None

    def to_row(self) -> Dict[str, object]:
        row = {k: getattr(self, k) for k in
               ("reported", "confirmed", "refuted", "inconclusive",
                "tp", "fp_confirmed", "tp_refuted", "real_reported",
                "decoys_reported", "decoys_refuted")}
        row["precision"] = self.precision()
        row["recall"] = self.recall()
        row["seconds"] = round(self.seconds, 2)
        if self.incomplete:
            row["incomplete"] = sorted(self.incomplete)
        return row


def score_corpus_case(tally: Tally, expected: Dict[str, int],
                      conf) -> None:
    """Count-matched scoring: flows are attributed per (rule)."""
    rules = {v.rule for v in conf.verdicts} | set(expected)
    for rule in rules:
        verdicts = [v for v in conf.verdicts if v.rule == rule]
        real = expected.get(rule, 0)
        confirmed = sum(v.verdict == CONFIRMED for v in verdicts)
        refuted = sum(v.verdict == REFUTED for v in verdicts)
        tally.reported += len(verdicts)
        tally.confirmed += confirmed
        tally.refuted += refuted
        tally.inconclusive += sum(v.verdict == INCONCLUSIVE
                                  for v in verdicts)
        tp = min(confirmed, real)
        tally.tp += tp
        tally.fp_confirmed += confirmed - tp
        tally.real_reported += min(len(verdicts), real)
        # Refuting more than the statically-over-reported surplus means
        # a real flow was killed.
        surplus = len(verdicts) - real
        tally.tp_refuted += max(0, refuted - max(0, surplus))


def score_generated_app(tally: Tally, app: GeneratedApp, conf) -> None:
    """Plant-attributed scoring, count-matched per (rule, sink method).

    A plant guarantees exactly one real flow into its sink method; the
    static analysis may report *more* (e.g. the cross-product of
    INFO_LEAK sources and sinks through the shared exception model) and
    the oracle is expected to refute that surplus, not be penalized
    for it."""
    plants = {p.sink_method: p for p in app.planted}
    groups: Dict[Tuple[str, str], List] = {}
    for verdict in conf.verdicts:
        key = (verdict.rule, verdict.sink.split("@")[0])
        groups.setdefault(key, []).append(verdict)
    for (rule, sink_method), verdicts in groups.items():
        plant = plants.get(sink_method)
        matches = plant is not None and plant.rule == rule
        real = int(matches and plant.is_true_positive)
        confirmed = sum(v.verdict == CONFIRMED for v in verdicts)
        refuted = sum(v.verdict == REFUTED for v in verdicts)
        tally.reported += len(verdicts)
        tally.confirmed += confirmed
        tally.refuted += refuted
        tally.inconclusive += sum(v.verdict == INCONCLUSIVE
                                  for v in verdicts)
        tp = min(confirmed, real)
        tally.tp += tp
        tally.fp_confirmed += confirmed - tp
        tally.real_reported += min(len(verdicts), real)
        surplus = len(verdicts) - real
        tally.tp_refuted += max(0, refuted - max(0, surplus))
        if matches and plant.is_decoy:
            tally.decoys_reported += len(verdicts)
            tally.decoys_refuted += refuted


def sweep_corpus(config_name: str) -> Tally:
    tally = Tally()
    engine_config = make_config(config_name)
    start = time.time()
    for case_id, sources, descriptor, expected in corpus_cases():
        result = TAJ(engine_config).analyze_sources(
            sources, deployment_descriptor=descriptor)
        if result.completeness != "complete":
            tally.incomplete.append(case_id)
        if result.confirmation is not None:
            score_corpus_case(tally, expected, result.confirmation)
    tally.seconds = time.time() - start
    return tally


def sweep_generated(config_name: str, apps) -> Dict[str, Tally]:
    """Per-app tallies; cs runs resilient so budget exhaustion
    degrades to a partial result instead of dying."""
    out: Dict[str, Tally] = {}
    engine_config = make_config(config_name, resilient=True)
    for app_name, app in apps:
        tally = Tally()
        start = time.time()
        result = TAJ(engine_config).analyze_sources(
            app.sources, deployment_descriptor=app.deployment_descriptor)
        if result.completeness != "complete":
            tally.incomplete.append(f"{app_name}:{result.completeness}")
        if result.confirmation is not None:
            score_generated_app(tally, app, result.confirmation)
        tally.seconds = time.time() - start
        out[app_name] = tally
    return out


def fmt(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.3f}"


def run(scale: int) -> Dict[str, object]:
    apps = generator_apps(scale)
    per_config: Dict[str, Dict[str, object]] = {}
    for config_name in CONFIGS:
        corpus = sweep_corpus(config_name)
        generated = sweep_generated(config_name, apps)
        per_config[config_name] = {
            "corpus": corpus.to_row(),
            "generated": {name: t.to_row()
                          for name, t in generated.items()},
        }
        print(f"[{config_name}] corpus: {corpus.reported} reported, "
              f"{corpus.confirmed} confirmed, {corpus.refuted} refuted, "
              f"{corpus.inconclusive} inconclusive  "
              f"precision={fmt(corpus.precision())} "
              f"recall={fmt(corpus.recall())} "
              f"({corpus.seconds:.1f}s)")
        for app_name, tally in generated.items():
            print(f"[{config_name}] {app_name}: {tally.reported} "
                  f"reported, {tally.confirmed} confirmed, "
                  f"{tally.refuted} refuted  "
                  f"precision={fmt(tally.precision())} "
                  f"recall={fmt(tally.recall())} "
                  f"decoys {tally.decoys_refuted}/"
                  f"{tally.decoys_reported} refuted")
    return {
        "meta": {
            "configs": list(CONFIGS),
            "corpus_programs": sum(1 for _ in corpus_cases()),
            "generator_scale": scale,
            "known_overapproximations": sorted(KNOWN_OVERAPPROX),
        },
        "per_config": per_config,
    }


def check(payload: Dict[str, object]) -> List[str]:
    """The separation gates; returns human-readable failures."""
    failures: List[str] = []
    for config_name, entry in payload["per_config"].items():
        corpus = entry["corpus"]
        if corpus["tp_refuted"]:
            failures.append(f"{config_name}: {corpus['tp_refuted']} "
                            "real corpus flows refuted")
        for app_name, row in entry["generated"].items():
            if row["tp_refuted"]:
                failures.append(f"{config_name}/{app_name}: "
                                f"{row['tp_refuted']} planted TPs "
                                "refuted")
            if row["decoys_refuted"] != row["decoys_reported"]:
                failures.append(
                    f"{config_name}/{app_name}: only "
                    f"{row['decoys_refuted']}/{row['decoys_reported']} "
                    "reported decoys refuted")
        clean = entry["generated"]["clean"]
        if clean["confirmed"] and clean["precision"] != 1.0:
            failures.append(f"{config_name}/clean: precision "
                            f"{clean['precision']} != 1.0 on the "
                            "decoy-free app")
    # The context-sensitive engine is the precision flagship: on the
    # differential corpus every reported real flow must be confirmed
    # and the only refutations are the known over-approximations.
    cs = payload["per_config"]["cs"]["corpus"]
    if cs["recall"] != 1.0:
        failures.append(f"cs corpus recall {cs['recall']} != 1.0")
    if cs["precision"] != 1.0:
        failures.append(f"cs corpus precision {cs['precision']} != 1.0")
    expected_refutations = len(KNOWN_OVERAPPROX)
    if cs["refuted"] != expected_refutations:
        failures.append(f"cs corpus refuted {cs['refuted']} != "
                        f"{expected_refutations} known "
                        "over-approximations")
    return failures


def merge_artifact(path: str, payload: Dict) -> None:
    """Fold the confirmation table into the solver artifact, keeping
    everything already recorded there."""
    existing: Dict = {}
    target = Path(path)
    if target.exists():
        try:
            existing = json.loads(target.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
    existing["confirmation"] = payload
    write_bench_json(path, existing)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Score the replay oracle over the corpus")
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE,
                        help="generator-app scale factor")
    parser.add_argument("--quick", action="store_true",
                        help="scale-2 generator apps only")
    parser.add_argument("--check", action="store_true",
                        help="enforce the separation gates")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_solver.json"))
    args = parser.parse_args(argv)

    scale = 2 if args.quick else args.scale
    payload = run(scale)
    merge_artifact(args.out, payload)
    print(f"merged 'confirmation' into {args.out}")

    if args.check:
        failures = check(payload)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("all confirmation gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

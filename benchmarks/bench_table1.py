"""Table 1 — settings used for the evaluated algorithms.

Regenerates the paper's configuration matrix: which of the five
configurations uses synthetic models, priority-driven call-graph
construction, and the §6.2 bounds.
"""

from repro import TAJConfig, settings_matrix


def test_table1_settings_matrix(benchmark, capsys):
    text = benchmark.pedantic(settings_matrix, rounds=3, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 72)
        print("Table 1: Settings Used for the Evaluated Algorithms")
        print("=" * 72)
        print(text)
    # The matrix encodes Table 1's structure.
    configs = {c.name: c for c in TAJConfig.all_presets()}
    assert not configs["hybrid-unbounded"].prioritized
    assert configs["hybrid-prioritized"].prioritized
    assert configs["hybrid-optimized"].prioritized
    assert configs["hybrid-optimized"].use_whitelist
    assert configs["hybrid-optimized"].budget.max_flow_length is not None
    assert configs["cs"].budget.max_state_units is not None
    assert configs["ci"].context_insensitive_pointers

"""Chaos sweep: every crash mode of the parallel sweep must recover.

Runs the real CLI (in-process) over the securibench corpus once serial
— the reference report — then once per crash scenario with ``--jobs 2``
and a scripted ``--fault-plan`` (repro.resilience.faults, process
seams), and enforces the crash-recovery contract of
``docs/robustness.md``:

* a crash the supervisor can absorb (a bounded kill, a hang, a corrupt
  outcome payload, a dead pool initializer) ends with a report
  **byte-identical** to serial, betrayed only by the supervision
  counters (``taint.pool.retries`` / ``restarts`` / ``hangs`` /
  ``corrupt_outcomes`` / ``quarantined``);
* a shard that kills its worker on *every* attempt is abandoned
  honestly: the run completes with ``completeness == "partial-crash"``
  and a per-shard ``worker-crash`` diagnostic — never a raised
  ``BrokenProcessPool``;
* either way the exit code is the ordinary report code (0 clean,
  1 issues/partial, 2 failed) — crashes never leak a traceback.

Scenarios: ``kill-once`` (SIGKILL, one retry), ``kill-always``
(poison shard → honest abandonment), ``hang-once`` (watchdog SIGKILL +
retry, via ``--hang-seconds``), ``corrupt-once`` (bad payload, one
retry), ``corrupt-always`` (poison → parent serial re-run, still
byte-identical), ``init-kill-always`` (every pool initializer dies →
restart budget exhausted → whole plan re-run serially in the parent,
still byte-identical).

    PYTHONPATH=src python benchmarks/chaos.py [--check] [--jobs N]

``--check`` (the CI job) additionally enforces a hard wall-clock guard
(default 120 s) — supervision must converge by backoff and watchdog,
not by waiting out worker hangs.  Exit 0 when every scenario holds,
1 otherwise.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script mode
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.securibench import CASES
from repro.cli import main as cli_main

# (name, fault rows, extra CLI args, byte-identical?, expected
# completeness, counters that must be >= 1).  ``at: 0`` pins the first
# shard; ``at: -1`` matches every ordinal; ``attempts: -1`` keeps
# crashing on every retry.
SCENARIOS: List[Tuple[str, List[Dict], List[str], bool, str,
                      Tuple[str, ...]]] = [
    ("kill-once",
     [{"seam": "worker.shard", "at": 0, "action": "kill-worker",
       "attempts": 1}],
     [], True, "complete",
     ("taint.pool.retries", "taint.pool.restarts")),
    ("kill-always",
     [{"seam": "worker.shard", "at": 0, "action": "kill-worker",
       "attempts": -1}],
     [], False, "partial-crash",
     ("taint.pool.quarantined",)),
    ("hang-once",
     [{"seam": "worker.shard", "at": 0, "action": "hang-worker",
       "attempts": 1}],
     ["--hang-seconds", "1.0"], True, "complete",
     ("taint.pool.hangs", "taint.pool.retries")),
    ("corrupt-once",
     [{"seam": "worker.shard", "at": 0, "action": "corrupt-outcome",
       "attempts": 1}],
     [], True, "complete",
     ("taint.pool.corrupt_outcomes", "taint.pool.retries")),
    ("corrupt-always",
     [{"seam": "worker.shard", "at": 0, "action": "corrupt-outcome",
       "attempts": -1}],
     [], True, "complete",
     ("taint.pool.corrupt_outcomes", "taint.pool.quarantined")),
    ("init-kill-always",
     [{"seam": "worker.init", "at": -1, "action": "kill-worker",
       "attempts": -1}],
     [], True, "complete",
     ("taint.pool.restarts", "taint.pool.quarantined")),
]


def run_cli(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out), \
            contextlib.redirect_stderr(io.StringIO()):
        code = cli_main(argv)
    return code, out.getvalue()


def normalize_json(text: str) -> str:
    payload = json.loads(text)
    payload.pop("seconds", None)
    return json.dumps(payload, indent=2, sort_keys=True)


def run_scenario(name, rows, extra, identical, completeness, counters,
                 tmp: Path, base: List[str], jobs: int,
                 reference: str) -> List[str]:
    """One crash scenario; returns its contract violations."""
    plan = tmp / f"{name}.json"
    plan.write_text(json.dumps(rows), encoding="utf-8")
    metrics = tmp / f"{name}-metrics.json"
    try:
        code, report = run_cli(["--json", "--jobs", str(jobs),
                                "--fault-plan", str(plan),
                                "--metrics", str(metrics)]
                               + extra + base)
    except Exception as exc:  # the contract: crashes never raise
        return [f"{name}: crash leaked out of the CLI: "
                f"{type(exc).__name__}: {exc}"]
    errors: List[str] = []
    payload = json.loads(report)
    if payload.get("completeness") != completeness:
        errors.append(f"{name}: completeness "
                      f"{payload.get('completeness')!r}, expected "
                      f"{completeness!r}")
    if identical and normalize_json(report) != reference:
        errors.append(f"{name}: report diverged from serial despite a "
                      f"recoverable crash")
    if not identical:
        diags = [d for d in payload.get("diagnostics", [])
                 if d.get("kind") == "worker-crash"]
        if not diags:
            errors.append(f"{name}: abandoned shard left no "
                          f"worker-crash diagnostic")
    if code == 2:
        errors.append(f"{name}: exit code 2 — the run claims to have "
                      f"failed outright")
    snapshot = json.loads(metrics.read_text(encoding="utf-8"))
    have = snapshot.get("counters", {})
    missing = [counter for counter in counters if not have.get(counter)]
    if missing:
        errors.append(f"{name}: supervision counters {missing} absent "
                      f"— the intervention is invisible to the "
                      f"regression sentinel")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Assert every pool crash mode recovers "
                    "byte-identically or degrades honestly.")
    parser.add_argument("--jobs", type=int, default=2,
                        help="pool fan-out under fault (default 2)")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: also enforce the wall-clock "
                             "guard")
    parser.add_argument("--wall-guard", type=float, default=120.0,
                        help="hard wall-clock budget for the whole "
                             "sweep under --check (default 120s)")
    args = parser.parse_args(argv)

    sources = [src for cat in CASES.values() for src, _ in cat.values()]
    started = time.monotonic()
    failures: List[str] = []
    with tempfile.TemporaryDirectory() as tmpname:
        tmp = Path(tmpname)
        corpus = tmp / "securibench.jlang"
        corpus.write_text("\n".join(sources), encoding="utf-8")
        base = ["--rules", "extended", str(corpus)]
        ref_code, ref_report = run_cli(["--json"] + base)
        reference = normalize_json(ref_report)
        for name, rows, extra, identical, completeness, counters \
                in SCENARIOS:
            errors = run_scenario(name, rows, extra, identical,
                                  completeness, counters, tmp, base,
                                  args.jobs, reference)
            failures.extend(errors)
            print(f"  {name}: {'FAIL' if errors else 'ok'}")
    elapsed = time.monotonic() - started
    if args.check and elapsed > args.wall_guard:
        failures.append(f"wall-clock guard blown: {elapsed:.1f}s > "
                        f"{args.wall_guard:.0f}s — supervision is not "
                        f"converging by backoff/watchdog")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print(f"OK: {len(SCENARIOS)} crash modes recovered or degraded "
          f"honestly in {elapsed:.1f}s (--jobs {args.jobs}, "
          f"{len(sources)} servlets)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Parallel-determinism smoke: ``--jobs N`` must not change a report.

Runs the real CLI (in-process) over the securibench corpus twice — once
serial, once with ``--jobs 4`` — in every output format, and fails
unless the outputs are byte-identical:

* text report — compared verbatim (it carries no timing);
* JSON report — compared after dropping the one volatile field
  (``"seconds"``, the wall-clock total);
* exit codes — must match.

The parallel JSON pass also captures the CLI's ``--metrics`` snapshot
and prints the pool's per-phase breakdown — startup (snapshot build +
worker spawn/deserialize) vs shard compute vs merge — next to the
serial sweep's own compute time.  When the serial sweep is cheaper
than twice the pool startup, the smoke warns that this workload is too
small for parallelism to pay (the report-identity checks still run;
see "When parallelism pays" in ``docs/performance.md``).

This is the determinism half of the parallel sweep's contract; the
throughput half lives in ``parallel_scaling.py`` / ``bench_solver.py``.
Exit 0 on identical outputs, 1 on any divergence.

    PYTHONPATH=src python benchmarks/parallel_smoke.py [--jobs N]
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script mode
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.securibench import CASES
from repro.cli import main as cli_main


def run_cli(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out), \
            contextlib.redirect_stderr(io.StringIO()):
        code = cli_main(argv)
    return code, out.getvalue()


def normalize_json(text: str) -> str:
    payload = json.loads(text)
    payload.pop("seconds", None)
    return json.dumps(payload, indent=2, sort_keys=True)


def phase_breakdown(metrics_path: Path):
    """Pool phase timings from a CLI ``--metrics`` snapshot."""
    snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
    gauges = snapshot.get("gauges", {})
    timers = snapshot.get("timers", {})
    shard = timers.get("taint.pool.shard_seconds", {})
    serial_rules = timers.get("taint.rule_seconds", {})
    return {
        "startup_s": gauges.get("taint.pool.startup_seconds", 0.0),
        "shard_compute_s": shard.get("total", 0.0),
        "merge_s": gauges.get("taint.pool.merge_seconds", 0.0),
        "shards": gauges.get("taint.pool.shards", 0),
        "rule_sweep_s": serial_rules.get("total", 0.0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Assert --jobs N and serial CLI reports are "
                    "byte-identical over securibench.")
    parser.add_argument("--jobs", type=int, default=4,
                        help="parallel fan-out to compare against "
                             "serial (default 4)")
    args = parser.parse_args(argv)

    sources = [src for cat in CASES.values() for src, _ in cat.values()]
    with tempfile.TemporaryDirectory() as tmp:
        corpus = Path(tmp) / "securibench.jlang"
        corpus.write_text("\n".join(sources), encoding="utf-8")
        base = ["--rules", "extended", str(corpus)]

        failures = []
        code1, text1 = run_cli(base)
        codeN, textN = run_cli(["--jobs", str(args.jobs)] + base)
        if code1 != codeN:
            failures.append(f"exit codes differ: {code1} vs {codeN}")
        if text1 != textN:
            failures.append("text reports differ")

        serial_metrics = Path(tmp) / "serial-metrics.json"
        pool_metrics = Path(tmp) / "pool-metrics.json"
        jcode1, json1 = run_cli(["--json", "--metrics",
                                 str(serial_metrics)] + base)
        jcodeN, jsonN = run_cli(["--json", "--jobs", str(args.jobs),
                                 "--metrics", str(pool_metrics)] + base)
        if jcode1 != jcodeN:
            failures.append(f"json exit codes differ: {jcode1} vs "
                            f"{jcodeN}")
        if normalize_json(json1) != normalize_json(jsonN):
            failures.append("json reports differ (seconds excluded)")

        serial_sweep = phase_breakdown(serial_metrics)["rule_sweep_s"]
        pool = phase_breakdown(pool_metrics)

    print(f"pool phases (--jobs {args.jobs}, {pool['shards']:.0f} "
          f"shards): startup {pool['startup_s']:.3f}s, "
          f"shard compute {pool['shard_compute_s']:.3f}s, "
          f"merge {pool['merge_s']:.3f}s; "
          f"serial sweep {serial_sweep:.3f}s")
    if serial_sweep < 2.0 * pool["startup_s"]:
        print(f"WARNING: workload too small for parallelism to pay — "
              f"the serial sweep ({serial_sweep:.3f}s) is under twice "
              f"the pool startup cost ({pool['startup_s']:.3f}s); "
              f"determinism checks still apply, wall clock favors "
              f"--jobs 1 (see docs/performance.md)")

    issues = json.loads(json1).get("issues", [])
    if not issues:
        failures.append("smoke corpus produced no issues — the "
                        "comparison is vacuous")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: serial and --jobs {args.jobs} reports byte-identical "
          f"over securibench ({len(sources)} servlets, "
          f"{len(issues)} issues)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

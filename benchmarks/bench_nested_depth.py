"""§6.2.3 ablation — nested-taint depth.

"Empirically, we found 2 levels of field dereference to be sufficient."
We sweep the carrier-detection depth bound over the Figure 4 suite and
confirm that depth 2 already finds every true positive except the one
deliberately deep flow (BlueBlog), while deeper settings only add cost.
"""

from repro.bench import FIGURE4_APPS, score_run
from repro.core import TAJ, TAJConfig
from repro.modeling import prepare


def _sweep_depths(suite_apps, depths):
    prepared = {}
    for name in FIGURE4_APPS:
        app = suite_apps[name]
        prepared[name] = prepare(app.sources, app.deployment_descriptor)
    rows = []
    for depth in depths:
        config = TAJConfig.hybrid_unbounded().with_budget(
            max_nested_depth=depth)
        tp = fn = 0
        for name in FIGURE4_APPS:
            result = TAJ(config).analyze_prepared(prepared[name])
            score = score_run(suite_apps[name], result)
            tp += score.tp
            fn += score.fn
        rows.append((depth, tp, fn))
    return rows


def test_nested_depth_two_is_sufficient(benchmark, suite_apps, capsys):
    rows = benchmark.pedantic(
        _sweep_depths, args=(suite_apps, [0, 1, 2, 3, None]),
        rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 56)
        print("Nested-taint depth sweep (9 key benchmarks, §6.2.3)")
        print("=" * 56)
        print(f"{'depth':<10}{'TP':>6}{'FN':>6}")
        for depth, tp, fn in rows:
            print(f"{str(depth):<10}{tp:>6}{fn:>6}")

    by_depth = {depth: (tp, fn) for depth, tp, fn in rows}
    unbounded_tp, _ = by_depth[None]
    # Depth 2 misses only the one deliberately deep flow.
    tp2, fn2 = by_depth[2]
    assert unbounded_tp - tp2 == 1
    # Depth 3 recovers it.
    tp3, _ = by_depth[3]
    assert tp3 == unbounded_tp
    # Depth monotonicity.
    tps = [tp for _, tp, _ in rows]
    assert tps == sorted(tps)

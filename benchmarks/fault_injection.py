"""Fault-injection sweep: every pipeline seam must fail gracefully.

Runs the securibench micro-suite through :class:`repro.core.TAJ` with a
matrix of scripted :class:`~repro.resilience.FaultPlan`\\ s — one plan
per (seam, action) pair, covering all ten seams of
``repro.resilience.faults`` — and enforces the robustness contract of
``docs/robustness.md``:

* **no unhandled tracebacks**: every run returns a
  :class:`~repro.core.results.TAJResult`, never raises;
* **no silent absorption**: a run that swallowed a fault carries at
  least one diagnostic or degradation, and its ``completeness`` is not
  ``"complete"``;
* **completeness is truthful**: deadline faults report
  ``partial-deadline``, budget faults ``partial-budget`` (or a ladder
  descent), essential-phase faults ``failed``.

Entry points:

* **script** — ``PYTHONPATH=src python benchmarks/fault_injection.py``
  (the CI job); ``--quick`` runs one case per securibench category;
  exits non-zero on any contract violation.
* **pytest** — the ``test_*`` functions run a cross-section of the
  matrix under the regular suite.

Beyond the ten cooperative seams, the matrix carries **crash rows** for
the two process seams (``worker.shard``, ``worker.init``,
docs/robustness.md): SIGKILLed workers, poison shards, and corrupted
outcome payloads under ``--jobs 2``.  Their contract is different —
recovery must be *invisible in the report* (byte-identical flows, or an
honest ``partial-crash``) and *visible in the counters*
(``taint.pool.retries`` / ``restarts`` / ``quarantined``, which also
ride ``BENCH_ledger.jsonl`` records into the regression sentinel).  The
full crash-recovery sweep with serial reference comparison lives in
``benchmarks/chaos.py``; these rows keep the seam matrix complete.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script mode
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.securibench import CASES
from repro.core import TAJ, TAJConfig
from repro.resilience import Fault, FaultPlan

# One scenario per row: (label, seam, fault kwargs, config factory name,
# expected completeness values).  Every seam of the fault table appears
# at least once.
SCENARIOS: List[Tuple[str, Fault, str, Tuple[str, ...]]] = [
    ("frontend-source-error",
     Fault("frontend.source", action="raise", exception="source"),
     "optimized", ("partial-fault",)),
    ("frontend-corrupt",
     Fault("frontend.source", action="corrupt"),
     "optimized", ("partial-fault",)),
    ("modeling-fault",
     Fault("modeling.pass", action="raise"),
     "optimized", ("failed",)),
    ("pointer-fault",
     Fault("pointer.solve", action="raise"),
     "optimized", ("failed",)),
    ("pointer-deadline",
     Fault("pointer.solve", action="trip-deadline"),
     "optimized", ("partial-deadline",)),
    ("sdg-fault",
     Fault("sdg.build", action="raise"),
     "optimized", ("failed",)),
    ("tabulation-fault",
     Fault("tabulation.step", action="raise"),
     "optimized", ("partial-fault",)),
    ("hybrid-budget-ladder",
     Fault("slicing.hybrid", action="raise", exception="budget"),
     "optimized", ("partial-budget",)),
    ("cs-budget-ladder",
     Fault("slicing.cs", action="raise", exception="budget"),
     "cs", ("partial-budget",)),
    ("ci-fault",
     Fault("slicing.ci", action="raise"),
     "ci", ("partial-fault",)),
    ("ci-step-deadline",
     Fault("ci.step", action="trip-deadline"),
     "ci", ("partial-deadline", "partial-fault")),
    ("reporting-fault",
     Fault("reporting.build", action="raise"),
     "optimized", ("partial-fault",)),
]

CONFIGS = {
    "optimized": TAJConfig.hybrid_optimized,
    "cs": TAJConfig.cs,
    "ci": TAJConfig.ci,
}

# Crash rows: process-seam faults against the --jobs 2 pool
# (supervised, docs/robustness.md).  Each row: (label, fault, expected
# completeness values, counters that must be >= 1 afterwards).  A
# recovered crash leaves the report byte-identical — only the
# supervision counters betray it — so the contract here is
# counter-presence plus truthful completeness, and the report-identity
# half lives in benchmarks/chaos.py.
PROCESS_SCENARIOS: List[Tuple[str, Fault, Tuple[str, ...],
                              Tuple[str, ...]]] = [
    ("worker-kill-retried",
     Fault("worker.shard", at=0, action="kill-worker", attempts=1),
     ("complete",), ("taint.pool.retries", "taint.pool.restarts")),
    ("worker-kill-poison",
     Fault("worker.shard", at=0, action="kill-worker", attempts=-1),
     ("partial-crash",), ("taint.pool.quarantined",)),
    ("worker-corrupt-outcome",
     Fault("worker.shard", at=0, action="corrupt-outcome", attempts=1),
     ("complete",), ("taint.pool.corrupt_outcomes",
                     "taint.pool.retries")),
    ("worker-init-crash",
     Fault("worker.init", at=0, action="kill-worker", attempts=1),
     ("complete",), ("taint.pool.restarts",)),
]


def run_process_scenario(label: str, fault: Fault,
                         expected: Tuple[str, ...],
                         counters: Tuple[str, ...],
                         sources: List[str]) -> Optional[str]:
    """One crash row against the supervised pool; error string or
    None."""
    from repro.obs import Observability
    config = CONFIGS["optimized"]().with_jobs(2)
    obs = Observability()
    taj = TAJ(config, obs=obs, faults=FaultPlan.of(fault))
    try:
        result = taj.analyze_sources(sources)
    except Exception:
        return (f"{label}: unhandled exception escaped the supervised "
                f"pool:\n{traceback.format_exc()}")
    if result.completeness not in expected:
        return (f"{label}: completeness {result.completeness!r}, "
                f"expected one of {expected}")
    snapshot = obs.metrics.snapshot().get("counters", {})
    missing = [name for name in counters
               if not snapshot.get(name)]
    if missing:
        return (f"{label}: crash recovered but the supervision "
                f"counters {missing} are absent — the regression "
                f"sentinel would never see the intervention")
    if "partial-crash" in expected and not result.diagnostics:
        return (f"{label}: abandoned shard left no per-shard "
                f"diagnostic")
    return None


def suite_cases(quick: bool = False) -> Dict[str, str]:
    """case name -> source, over the securibench micro-suite."""
    out: Dict[str, str] = {}
    for category, cases in CASES.items():
        names = sorted(cases)
        if quick:
            names = names[:1]
        for name in names:
            out[f"{category}/{name}"] = cases[name][0]
    return out


def run_scenario(label: str, fault: Fault, config_key: str,
                 expected: Tuple[str, ...],
                 source: str) -> Optional[str]:
    """Run one (scenario, case); returns an error string or None."""
    config = CONFIGS[config_key]().with_resilience(
        deadline_seconds=3600.0, resilient=True)
    taj = TAJ(config, faults=FaultPlan.of(fault))
    try:
        result = taj.analyze_sources([source])
    except Exception:
        return (f"{label}: unhandled exception escaped the pipeline:\n"
                f"{traceback.format_exc()}")
    if not result.diagnostics and not result.degradations:
        return (f"{label}: fault at {fault.seam} was absorbed silently "
                f"(no diagnostics, no degradations)")
    if result.completeness == "complete":
        return (f"{label}: fault at {fault.seam} absorbed but the run "
                f"still claims to be complete")
    if result.completeness not in expected:
        return (f"{label}: completeness {result.completeness!r}, "
                f"expected one of {expected}")
    return None


def run_matrix(quick: bool = False,
               process_rows: bool = True) -> List[str]:
    """The full sweep; returns the list of contract violations."""
    cases = suite_cases(quick)
    errors: List[str] = []
    runs = 0
    for case_name, source in cases.items():
        for label, fault, config_key, expected in SCENARIOS:
            runs += 1
            error = run_scenario(label, fault, config_key, expected,
                                 source)
            if error is not None:
                errors.append(f"[{case_name}] {error}")
    process_runs = 0
    if process_rows:
        # Crash rows need >= 2 shards to reach the pool, so they run
        # once over the whole (quick) corpus instead of per case.
        sources = list(cases.values())
        for label, fault, expected, counters in PROCESS_SCENARIOS:
            process_runs += 1
            error = run_process_scenario(label, fault, expected,
                                         counters, sources)
            if error is not None:
                errors.append(f"[pool] {error}")
    print(f"fault-injection: {runs} runs over {len(cases)} cases x "
          f"{len(SCENARIOS)} scenarios + {process_runs} pool crash "
          f"rows, {len(errors)} violations")
    return errors


# -- pytest mode --------------------------------------------------------------

def test_fault_matrix_quick():
    """Every seam scenario survives one case per category."""
    errors = run_matrix(quick=True, process_rows=False)
    assert not errors, "\n".join(errors)


def test_process_fault_rows():
    """Every crash row recovers (or abandons honestly) with its
    supervision counters visible."""
    sources = list(suite_cases(quick=True).values())
    errors = []
    for label, fault, expected, counters in PROCESS_SCENARIOS:
        error = run_process_scenario(label, fault, expected, counters,
                                     sources)
        if error is not None:
            errors.append(error)
    assert not errors, "\n".join(errors)


# -- script mode --------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fault-injection sweep over the securibench suite.")
    parser.add_argument("--quick", action="store_true",
                        help="one case per securibench category")
    args = parser.parse_args(argv)
    errors = run_matrix(quick=args.quick)
    for error in errors:
        print(f"FAIL: {error}")
    if errors:
        return 1
    print("OK: every seam fault produced a diagnosed, "
          "correctly-labelled TAJResult")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""§6.2.2 ablation — flow length vs. true-positive rate.

"Our empirical studies suggest that the longer a flow is, the less
likely it is to be a true positive."  We regenerate the evidence: bucket
every raw flow found by the unbounded hybrid configuration over the
Figure 4 benchmarks by flow length and measure the fraction that matches
a planted true positive, then sweep the cutoff to show the optimized
filter's trade-off.
"""

from repro.bench import FIGURE4_APPS
from repro.core import TAJ, TAJConfig
from repro.modeling import prepare


def _collect_flows(suite_apps):
    """(flow length, is_true_positive) samples over the key benchmarks."""
    samples = []
    for name in FIGURE4_APPS:
        app = suite_apps[name]
        prepared = prepare(app.sources, app.deployment_descriptor)
        result = TAJ(TAJConfig.hybrid_unbounded()).analyze_prepared(
            prepared)
        planted = {(p.rule, p.sink_method): p for p in app.planted}
        for flow in result.flows:
            key = (flow.rule, flow.sink.method)
            plant = planted.get(key)
            is_tp = plant is not None and plant.is_true_positive
            samples.append((flow.length, is_tp))
    return samples


def test_flow_length_vs_tp_rate(benchmark, suite_apps, capsys):
    samples = benchmark.pedantic(_collect_flows, args=(suite_apps,),
                                 rounds=1, iterations=1)
    buckets = {}
    for length, is_tp in samples:
        bucket = min(length // 10, 4)
        tp, total = buckets.get(bucket, (0, 0))
        buckets[bucket] = (tp + (1 if is_tp else 0), total + 1)

    with capsys.disabled():
        print()
        print("=" * 58)
        print("Flow length vs true-positive rate (§6.2.2)")
        print("=" * 58)
        print(f"{'length bucket':<16}{'flows':>8}{'TP':>6}{'TP rate':>10}")
        for bucket in sorted(buckets):
            tp, total = buckets[bucket]
            label = f"{bucket * 10}-{bucket * 10 + 9}" if bucket < 4 \
                else "40+"
            print(f"{label:<16}{total:>8}{tp:>6}{tp / total:>10.2f}")

    # The shortest bucket must have a higher TP rate than the longest
    # non-empty bucket — the paper's §6.2.2 correlation.
    populated = sorted(buckets)
    first_tp, first_total = buckets[populated[0]]
    last_tp, last_total = buckets[populated[-1]]
    assert len(populated) >= 2, "need a length spread to correlate"
    assert first_tp / first_total > last_tp / last_total


def test_length_cutoff_sweep(benchmark, suite_apps, capsys):
    """Sweep the §6.2.2 cutoff: tighter cutoffs cut FPs before TPs."""
    app = suite_apps["S"]
    prepared = prepare(app.sources, app.deployment_descriptor)
    planted = {(p.rule, p.sink_method): p for p in app.planted}

    def sweep():
        rows = []
        for cutoff in (5, 15, 25, 40, None):
            config = TAJConfig.hybrid_unbounded().with_budget(
                max_flow_length=cutoff)
            result = TAJ(config).analyze_prepared(prepared)
            tp = fp = 0
            for issue in result.report.issues:
                key = (issue.rule, issue.sink.split("@")[0])
                plant = planted.get(key)
                if plant is not None and plant.is_true_positive:
                    tp += 1
                else:
                    fp += 1
            rows.append((cutoff, tp, fp))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(f"{'cutoff':<10}{'TP':>6}{'FP':>6}   (benchmark S)")
        for cutoff, tp, fp in rows:
            print(f"{str(cutoff):<10}{tp:>6}{fp:>6}")
    unbounded = rows[-1]
    # Monotone: relaxing the cutoff never loses findings.
    for (c1, tp1, fp1), (c2, tp2, fp2) in zip(rows, rows[1:]):
        assert tp1 <= tp2 and fp1 <= fp2
    # The default cutoff (25) keeps all TPs of this app while cutting FPs.
    at_default = next(r for r in rows if r[0] == 25)
    assert at_default[1] == unbounded[1]
    assert at_default[2] < unbounded[2]

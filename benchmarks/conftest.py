"""Shared benchmark fixtures.

The generated suite and per-app modeled programs are session-scoped;
analysis runs never mutate them.
"""

from __future__ import annotations

import pytest

from repro.bench import generate_suite
from repro.modeling import prepare


@pytest.fixture(scope="session")
def suite_apps():
    return generate_suite()


@pytest.fixture(scope="session")
def prepared_cache(suite_apps):
    cache = {}

    def get(name):
        if name not in cache:
            app = suite_apps[name]
            cache[name] = prepare(app.sources, app.deployment_descriptor)
        return cache[name]

    return get

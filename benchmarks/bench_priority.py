"""§6.1 ablation — priority-driven vs chaotic call-graph construction
under a node budget.

"Our experiments show that it enables the detection of a significantly
larger number of taint vulnerabilities than chaotic iteration when TAJ
runs in a constrained time or memory budget."
"""

from dataclasses import replace

from repro.bench import score_run
from repro.core import TAJ, TAJConfig
from repro.modeling import prepare

APP = "Webgoat"   # the budget-pressured benchmark


def _tp_under_budget(prepared, app, budget_nodes, prioritized):
    config = TAJConfig(
        name="ablate", slicing="hybrid", prioritized=prioritized)
    config = config.with_budget(max_cg_nodes=budget_nodes)
    result = TAJ(config).analyze_prepared(prepared)
    return score_run(app, result).tp


def test_priority_beats_chaotic_under_budget(benchmark, suite_apps,
                                             capsys):
    app = suite_apps[APP]
    prepared = prepare(app.sources, app.deployment_descriptor)
    total_tp = sum(1 for p in app.planted if p.is_true_positive)

    def sweep():
        rows = []
        for budget in (120, 200, 320, None):
            chaotic = _tp_under_budget(prepared, app, budget, False)
            priority = _tp_under_budget(prepared, app, budget, True)
            rows.append((budget, chaotic, priority))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 62)
        print(f"Priority-driven vs chaotic under a CG-node budget "
              f"({APP}, {total_tp} planted TPs)")
        print("=" * 62)
        print(f"{'budget':<10}{'chaotic TP':>12}{'priority TP':>13}")
        for budget, chaotic, priority in rows:
            print(f"{str(budget):<10}{chaotic:>12}{priority:>13}")

    # Unbounded: both find everything.
    assert rows[-1][1] == rows[-1][2] == total_tp
    # Under at least one constrained budget, priority finds strictly
    # more true positives than chaotic iteration.
    constrained = rows[:-1]
    assert any(priority > chaotic for _, chaotic, priority in constrained)
    assert all(priority >= chaotic for _, chaotic, priority in constrained)


def test_priority_overhead_is_moderate(benchmark, prepared_cache):
    """Priority bookkeeping must not dominate analysis time."""
    prepared = prepared_cache("SBM")

    def run_prioritized():
        return TAJ(TAJConfig.hybrid_prioritized()).analyze_prepared(
            prepared)

    result = benchmark(run_prioritized)
    assert not result.failed

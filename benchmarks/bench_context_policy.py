"""§3.1 ablation — the custom context-sensitivity policy.

The paper motivates three custom policy ingredients: object sensitivity
for most methods, collection cloning, and call-string contexts for
library factories and taint APIs.  This bench flips each off on a
benchmark rich in the corresponding patterns and shows the precision it
buys (false positives reappear when an ingredient is removed).
"""

from dataclasses import replace

from repro.bench import score_run
from repro.core import TAJ, TAJConfig
from repro.modeling import prepare

APP = "S"   # ejb + containers + factory traps


def _fp_with(prepared, app, **flags):
    config = TAJConfig(name="ablate", slicing="hybrid")
    for key, value in flags.items():
        setattr(config, key, value)
    result = TAJ(config).analyze_prepared(prepared)
    return score_run(app, result).fp


def test_context_policy_ingredients(benchmark, suite_apps, capsys):
    app = suite_apps[APP]
    prepared = prepare(app.sources, app.deployment_descriptor)

    def sweep():
        return {
            "full policy": _fp_with(prepared, app),
            "no factory call-strings": _fp_with(
                prepared, app, factory_call_strings=False),
            "no object sensitivity": _fp_with(
                prepared, app, object_sensitive=False),
            "fully insensitive": _fp_with(
                prepared, app, object_sensitive=False,
                collections_unlimited=False, factory_call_strings=False,
                taint_api_call_strings=False),
        }

    fps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 56)
        print(f"Context-policy ablation on benchmark {APP} "
              f"(false positives)")
        print("=" * 56)
        for label, fp in fps.items():
            print(f"{label:<28}{fp:>6}")

    assert fps["no factory call-strings"] > fps["full policy"], \
        "factory call-strings remove allocation-site conflation FPs"
    assert fps["fully insensitive"] >= fps["no factory call-strings"]
    assert fps["fully insensitive"] > fps["full policy"]


def test_taint_api_call_strings_disambiguate_sources(benchmark, capsys):
    """§3.1: the two getParameter calls on one receiver are separated by
    the 1-call-string context on taint APIs.  (With the string-carrier
    model both are precise anyway; this bench asserts the call-graph
    level separation.)"""
    source = """
class C extends HttpServlet {
  void doGet(HttpServletRequest req, HttpServletResponse resp) {
    String a = req.getParameter("first");
    String b = req.getParameter("second");
    resp.getWriter().println(URLEncoder.encode(a));
    resp.getWriter().println(URLEncoder.encode(b));
  }
}"""
    prepared = prepare([source])

    def count_source_nodes():
        config = TAJConfig(name="ablate", slicing="hybrid")
        result = TAJ(config).analyze_prepared(prepared)
        return result

    result = benchmark.pedantic(count_source_nodes, rounds=1,
                                iterations=1)
    assert result.issues == 0  # both flows sanitized
    with capsys.disabled():
        print(f"\ncall-graph nodes with taint-API call-strings: "
              f"{result.cg_nodes}")

"""CI smoke for the observability layer.

Runs the SecuriBench-style suite through the real CLI with ``--trace``,
``--metrics``, ``--audit``, ``--profile``, and ``--ledger``, then
validates every artifact:

* the Chrome trace is non-empty, schema-valid, and contains all five
  top-level ``phase.*`` spans per analyzed case;
* the metrics snapshot carries the solver counters, timer percentile
  summaries, and the peak-memory gauge;
* the audit payload is well-formed (and non-empty whenever the run
  actually reported issues, i.e. the CLI exited 1);
* the collapsed-stack profile parses (``stack count`` lines whose
  stacks are rooted in a known phase);
* the run ledger accumulates one well-formed ``kind="analysis"``
  record per case.

Exit status is non-zero on any failure, so CI can gate on it directly:

    PYTHONPATH=src python benchmarks/obs_smoke.py
    PYTHONPATH=src python benchmarks/obs_smoke.py --max-cases 6  # quicker
    PYTHONPATH=src python benchmarks/obs_smoke.py --keep artifacts/

``--keep DIR`` writes the artifacts into ``DIR`` (created if missing)
instead of a throwaway tempdir, so CI can upload them.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script mode
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.securibench import CASES
from repro.cli import main as cli_main

PHASES = {"phase.modeling", "phase.pointer_analysis", "phase.sdg",
          "phase.taint", "phase.reporting"}


def check_trace(path: Path, case: str) -> None:
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert events, f"{case}: empty trace"
    names = set()
    for event in events:
        assert event["ph"] == "X", f"{case}: bad phase type {event}"
        assert event["ts"] >= 0 and event["dur"] >= 0, \
            f"{case}: negative timestamp {event}"
        names.add(event["name"])
    missing = PHASES - names
    assert not missing, f"{case}: phases missing from trace: {missing}"


def check_metrics(path: Path, case: str) -> None:
    snap = json.loads(path.read_text())
    counters = snap["counters"]
    assert counters.get("pointer.propagations", 0) > 0, \
        f"{case}: no solver counters in metrics"
    solving = snap["timers"]["pointer.constraint_solving"]
    for field in ("count", "total", "p50", "p95", "max"):
        assert field in solving, f"{case}: timer summary missing {field}"
    assert snap["gauges"].get("memory.peak_bytes", 0) > 0, \
        f"{case}: no peak-memory gauge"


def check_audit(path: Path, case: str, expect_flows: bool) -> None:
    payload = json.loads(path.read_text())
    assert "flows" in payload and "rules_consulted" in payload, \
        f"{case}: malformed audit payload"
    if expect_flows:
        assert payload["flows"], f"{case}: expected a flow witness"
        for witness in payload["flows"]:
            assert witness["rule"], f"{case}: witness without a rule"
            assert "grouping" in witness, \
                f"{case}: witness without a grouping decision"


def check_profile(path: Path, case: str) -> None:
    lines = path.read_text().splitlines()
    phases = {p[len("phase."):] for p in PHASES}
    for line in lines:
        stack, _, count = line.rpartition(" ")
        assert stack and count.isdigit() and int(count) > 0, \
            f"{case}: malformed collapsed-stack line {line!r}"
        root = stack.split(";", 1)[0]
        assert root in phases or root in ("confirm", "untracked"), \
            f"{case}: profile stack rooted outside a phase: {root!r}"


def check_ledger(path: Path, case: str, expected: int) -> None:
    from repro.obs.ledger import read_ledger
    records = read_ledger(str(path))
    assert len(records) == expected, \
        f"{case}: ledger has {len(records)} records, expected {expected}"
    newest = records[-1]
    assert newest["kind"] == "analysis", f"{case}: wrong ledger kind"
    assert newest["phases"], f"{case}: ledger record without phases"
    assert newest["config"]["fingerprint"], \
        f"{case}: ledger record without a config fingerprint"


def _run_cases(tmpdir: Path, cases, failures: int = 0) -> int:
    ledger = tmpdir / "ledger.jsonl"
    for index, (case, source) in enumerate(cases):
        app = tmpdir / f"case{index}.jlang"
        app.write_text(source)
        trace = tmpdir / f"trace{index}.json"
        metrics = tmpdir / f"metrics{index}.json"
        audit = tmpdir / f"audit{index}.json"
        profile = tmpdir / f"profile{index}.collapsed"
        # Exit code 1 just means "issues found" — not a failure.
        code = cli_main(["--trace", str(trace),
                         "--metrics", str(metrics),
                         "--audit", str(audit),
                         "--profile", str(profile),
                         "--ledger", str(ledger), str(app)])
        try:
            check_trace(trace, case)
            check_metrics(metrics, case)
            check_audit(audit, case, expect_flows=code == 1)
            check_profile(profile, case)
            check_ledger(ledger, case, expected=index + 1)
        except AssertionError as exc:
            print(f"FAIL {case}: {exc}")
            failures += 1
    return failures


def run(max_cases: int = 0, keep: str = None) -> int:
    cases = [(f"{category}/{name}", source)
             for category, members in CASES.items()
             for name, (source, _truth) in members.items()]
    if max_cases:
        cases = cases[:max_cases]
    if keep:
        outdir = Path(keep)
        outdir.mkdir(parents=True, exist_ok=True)
        failures = _run_cases(outdir, cases)
        print(f"artifacts kept in {outdir}")
    else:
        with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
            failures = _run_cases(Path(tmp), cases)
    print(f"obs smoke: {len(cases) - failures}/{len(cases)} cases ok")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate --trace/--metrics/--audit/--profile/"
                    "--ledger artifacts over the securibench suite.")
    parser.add_argument("--max-cases", type=int, default=0,
                        help="only run the first N cases (0 = all)")
    parser.add_argument("--keep", metavar="DIR",
                        help="write artifacts into DIR (for CI upload) "
                             "instead of a throwaway tempdir")
    args = parser.parse_args(argv)
    return run(max_cases=args.max_cases, keep=args.keep)


if __name__ == "__main__":
    sys.exit(main())

"""CI smoke for the observability layer.

Runs the SecuriBench-style suite through the real CLI with ``--trace``,
``--metrics``, and ``--audit``, then validates every artifact:

* the Chrome trace is non-empty, schema-valid, and contains all five
  top-level ``phase.*`` spans per analyzed case;
* the metrics snapshot carries the solver counters, timer percentile
  summaries, and the peak-memory gauge;
* the audit payload is well-formed (and non-empty whenever the run
  actually reported issues, i.e. the CLI exited 1).

Exit status is non-zero on any failure, so CI can gate on it directly:

    PYTHONPATH=src python benchmarks/obs_smoke.py
    PYTHONPATH=src python benchmarks/obs_smoke.py --max-cases 6  # quicker
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script mode
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.securibench import CASES
from repro.cli import main as cli_main

PHASES = {"phase.modeling", "phase.pointer_analysis", "phase.sdg",
          "phase.taint", "phase.reporting"}


def check_trace(path: Path, case: str) -> None:
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert events, f"{case}: empty trace"
    names = set()
    for event in events:
        assert event["ph"] == "X", f"{case}: bad phase type {event}"
        assert event["ts"] >= 0 and event["dur"] >= 0, \
            f"{case}: negative timestamp {event}"
        names.add(event["name"])
    missing = PHASES - names
    assert not missing, f"{case}: phases missing from trace: {missing}"


def check_metrics(path: Path, case: str) -> None:
    snap = json.loads(path.read_text())
    counters = snap["counters"]
    assert counters.get("pointer.propagations", 0) > 0, \
        f"{case}: no solver counters in metrics"
    solving = snap["timers"]["pointer.constraint_solving"]
    for field in ("count", "total", "p50", "p95", "max"):
        assert field in solving, f"{case}: timer summary missing {field}"
    assert snap["gauges"].get("memory.peak_bytes", 0) > 0, \
        f"{case}: no peak-memory gauge"


def check_audit(path: Path, case: str, expect_flows: bool) -> None:
    payload = json.loads(path.read_text())
    assert "flows" in payload and "rules_consulted" in payload, \
        f"{case}: malformed audit payload"
    if expect_flows:
        assert payload["flows"], f"{case}: expected a flow witness"
        for witness in payload["flows"]:
            assert witness["rule"], f"{case}: witness without a rule"
            assert "grouping" in witness, \
                f"{case}: witness without a grouping decision"


def run(max_cases: int = 0) -> int:
    cases = [(f"{category}/{name}", source)
             for category, members in CASES.items()
             for name, (source, _truth) in members.items()]
    if max_cases:
        cases = cases[:max_cases]
    failures = 0
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        tmpdir = Path(tmp)
        for index, (case, source) in enumerate(cases):
            app = tmpdir / f"case{index}.jlang"
            app.write_text(source)
            trace = tmpdir / f"trace{index}.json"
            metrics = tmpdir / f"metrics{index}.json"
            audit = tmpdir / f"audit{index}.json"
            # Exit code 1 just means "issues found" — not a failure.
            code = cli_main(["--trace", str(trace),
                             "--metrics", str(metrics),
                             "--audit", str(audit), str(app)])
            try:
                check_trace(trace, case)
                check_metrics(metrics, case)
                check_audit(audit, case, expect_flows=code == 1)
            except AssertionError as exc:
                print(f"FAIL {case}: {exc}")
                failures += 1
    print(f"obs smoke: {len(cases) - failures}/{len(cases)} cases ok")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate --trace/--metrics/--audit artifacts over "
                    "the securibench suite.")
    parser.add_argument("--max-cases", type=int, default=0,
                        help="only run the first N cases (0 = all)")
    args = parser.parse_args(argv)
    return run(max_cases=args.max_cases)


if __name__ == "__main__":
    sys.exit(main())

"""Summary-cache benchmark: cold vs warm vs cross-app taint sweeps.

Runs the summary engine (``repro.summaries``) over the library-heavy
generator corpus (``summary_corpus``: one deep shared pipeline, thin
servlets — the workload per-method summaries amortize) and records
three walls per corpus shape:

* **cold** — empty cache directory: full exploration plus harvest;
* **warm** — same app over the populated directory (fresh backend, the
  cross-process shape): cached regions seal instead of exploring;
* **cross** — a *different* app (renamed servlets, byte-identical
  shared library) over the same directory: library summaries hit,
  servlet summaries miss — the multi-app reuse case.

Timing discipline: every wall is best-of-``--repeats`` of
``backend.prepare(sdg) + engine.run()`` (key computation and cache load
are part of the price; pointer analysis and SDG construction are shared
and excluded).  Cold repeats get a fresh directory each; warm and cross
repeats re-copy the populated directory, so no repeat ever rides on a
cache state the label does not claim.  The headline gate is honesty,
then speed: all three runs must be flow-identical to the hybrid
reference, and ``--check`` additionally enforces warm wall >=
``MIN_WARM_SAVING`` below cold.  The saving is cache-vs-no-cache on one
core — unlike the parallel-scaling bar it does not depend on host
cores, so the gate always applies; the artifact still records the count.

Entry point (script only):

    PYTHONPATH=src python benchmarks/summary_cache.py
        [--shapes small large] [--repeats N] [--quick] [--check]
        [--out BENCH_solver.json]

Results merge into ``BENCH_solver.json`` under the ``summary_cache``
key, preserving everything already there.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script mode
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.generator import summary_corpus
from repro.bench.harness import write_bench_json
from repro.bounds import Budget
from repro.modeling import default_natives, prepare
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.summaries import SummaryBackend
from repro.taint import TaintEngine, default_rules

# (entrypoints, pipeline depth, statements per stage) per named shape.
SHAPES: Dict[str, Tuple[int, int, int]] = {
    "small": (24, 64, 8),
    "medium": (40, 80, 10),
    "large": (60, 96, 10),
}
REPEATS = 3
MIN_WARM_SAVING = 0.30          # warm wall must sit >= 30% below cold


def host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_pieces(app):
    prepared = prepare(app.sources)
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def run_engine(pieces, strategy: str, backend=None):
    """One timed sweep: prepare (keys + cache load) plus engine run."""
    sdg, direct, heap = pieces
    started = time.perf_counter()
    if backend is not None:
        backend.prepare(sdg)
    engine = TaintEngine(sdg, direct, heap, default_rules(), Budget(),
                         strategy=strategy, summary_backend=backend)
    result = engine.run()
    return result, time.perf_counter() - started


def flow_keys(result) -> List:
    return [flow.sort_key() for flow in result.flows]


def bench_shape(name: str, shape: Tuple[int, int, int],
                repeats: int) -> Dict[str, object]:
    entrypoints, depth, stmts = shape
    app = summary_corpus(entrypoints, depth, stmts)
    other = summary_corpus(entrypoints, depth, stmts, variant=1)
    pieces = build_pieces(app)
    pieces_other = build_pieces(other)

    ref, wall_hybrid = run_engine(pieces, "hybrid")
    ref_other, _ = run_engine(pieces_other, "hybrid")
    ref_keys = flow_keys(ref)

    workdir = tempfile.mkdtemp(prefix="summary-bench-")
    try:
        # Cold: a fresh directory per repeat — repeat 2 must not ride
        # on repeat 1's harvest.
        wall_cold = None
        misses_cold = entries = 0
        identical = True
        for i in range(repeats):
            backend = SummaryBackend(os.path.join(workdir, f"cold{i}"))
            result, wall = run_engine(pieces, "summary", backend)
            identical &= flow_keys(result) == ref_keys
            if wall_cold is None or wall < wall_cold:
                wall_cold = wall
                misses_cold = backend.misses
                entries = len(backend.cache.entries)
        populated = os.path.join(workdir, "cold0")

        # Warm: fresh backend over the populated directory (the
        # cross-process shape), copied per repeat so every repeat sees
        # the exact cold-run state.
        wall_warm = None
        hits_warm = 0
        for i in range(repeats):
            warm_dir = os.path.join(workdir, f"warm{i}")
            shutil.copytree(populated, warm_dir)
            backend = SummaryBackend(warm_dir)
            result, wall = run_engine(pieces, "summary", backend)
            identical &= flow_keys(result) == ref_keys
            if wall_warm is None or wall < wall_warm:
                wall_warm = wall
                hits_warm = backend.hits

        # Cross-app: the variant app (library identical, servlets
        # renamed) over a copy of the populated directory.
        wall_cross = None
        hits_cross = misses_cross = 0
        for i in range(repeats):
            cross_dir = os.path.join(workdir, f"cross{i}")
            shutil.copytree(populated, cross_dir)
            backend = SummaryBackend(cross_dir)
            result, wall = run_engine(pieces_other, "summary", backend)
            identical &= flow_keys(result) == flow_keys(ref_other)
            if wall_cross is None or wall < wall_cross:
                wall_cross = wall
                hits_cross = backend.hits
                misses_cross = backend.misses
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "shape": name,
        "entrypoints": entrypoints,
        "depth": depth,
        "stmts_per_stage": stmts,
        "source_lines": sum(len(s.splitlines()) for s in app.sources),
        "flows": len(ref.flows),
        "wall_hybrid_s": round(wall_hybrid, 4),
        "wall_cold_s": round(wall_cold, 4),
        "wall_warm_s": round(wall_warm, 4),
        "wall_cross_s": round(wall_cross, 4),
        "warm_saving_pct": round(100 * (1 - wall_warm / wall_cold), 1),
        "cross_saving_pct": round(100 * (1 - wall_cross / wall_cold), 1),
        "cache_entries": entries,
        "misses_cold": misses_cold,
        "hits_warm": hits_warm,
        "hits_cross": hits_cross,
        "misses_cross": misses_cross,
        "reports_identical": identical,
    }


def run_bench(shapes: List[str], repeats: int,
              quick: bool) -> Dict[str, object]:
    rows = [bench_shape(name, SHAPES[name], repeats) for name in shapes]
    return {
        "cores": host_cores(),
        "quick": quick,
        "repeats": repeats,
        "min_warm_saving": MIN_WARM_SAVING,
        "rows": rows,
    }


def format_summary(payload: Dict) -> str:
    lines = [f"host cores: {payload['cores']}",
             f"{'shape':>8}{'hybrid':>9}{'cold':>8}{'warm':>8}"
             f"{'cross':>8}{'warm%':>7}{'cross%':>8}{'entries':>9}"
             f"{'hits':>6}"]
    for row in payload["rows"]:
        lines.append(
            f"{row['shape']:>8}{row['wall_hybrid_s']:>9.3f}"
            f"{row['wall_cold_s']:>8.3f}{row['wall_warm_s']:>8.3f}"
            f"{row['wall_cross_s']:>8.3f}{row['warm_saving_pct']:>7.1f}"
            f"{row['cross_saving_pct']:>8.1f}{row['cache_entries']:>9}"
            f"{row['hits_warm']:>6}")
    return "\n".join(lines)


def check(payload: Dict) -> int:
    """The gate: identity always, then the warm amortization bar."""
    failures = []
    for row in payload["rows"]:
        if not row["reports_identical"]:
            failures.append(f"{row['shape']}: summary flows diverged "
                            f"from the hybrid reference")
        saving = 1 - row["wall_warm_s"] / row["wall_cold_s"]
        if saving < MIN_WARM_SAVING:
            failures.append(
                f"{row['shape']}: warm wall {row['wall_warm_s']:.3f}s "
                f"is only {saving:.0%} below cold "
                f"{row['wall_cold_s']:.3f}s "
                f"(need >= {MIN_WARM_SAVING:.0%})")
        if row["hits_warm"] == 0:
            failures.append(f"{row['shape']}: warm run never hit the "
                            f"cache — nothing was amortized")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: flows identical on every row; warm >= "
          f"{MIN_WARM_SAVING:.0%} below cold")
    return 0


def merge_artifact(path: str, payload: Dict) -> None:
    """Fold the rows into the solver artifact, keeping the suites
    already recorded there."""
    existing: Dict = {}
    target = Path(path)
    if target.exists():
        try:
            existing = json.loads(target.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
    existing["summary_cache"] = payload
    write_bench_json(path, existing)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Cold/warm/cross-app benchmark for the summary "
                    "cache.")
    parser.add_argument("--shapes", nargs="+", default=list(SHAPES),
                        choices=list(SHAPES),
                        help=f"corpus shapes (default: all of "
                             f"{list(SHAPES)})")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help=f"best-of-N timing (default {REPEATS})")
    parser.add_argument("--quick", action="store_true",
                        help="small shape only, 2 repeats (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail on flow divergence or a warm wall "
                             f"less than {MIN_WARM_SAVING:.0%} below "
                             f"cold")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_solver.json"),
                        help="artifact to merge rows into")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    shapes, repeats = args.shapes, args.repeats
    if args.quick:
        shapes, repeats = ["small"], 2

    payload = run_bench(shapes, repeats, args.quick)
    print(format_summary(payload))
    merge_artifact(args.out, payload)
    print(f"\nmerged summary_cache into {args.out}")

    if args.check:
        return check(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ground-truth cross-validation (extension bench).

Not a table from the paper: this regenerates the *soundness evidence*
behind our Figure 4 reproduction.  The concrete interpreter executes a
subset of the suite and confirms that the planted true positives the
static analysis is scored against are dynamically realizable, and that
sanitized plants never fire.
"""

from repro.bench import generate_suite
from repro.interp import run_dynamic

# Small/medium apps keep the concrete runs fast; thread plants are
# realizable because Thread.start runs inline.
APPS = ["I", "BlueBlog", "A", "Friki", "SBM"]


def _validate(suite_apps):
    rows = []
    for name in APPS:
        app = suite_apps[name]
        summary = run_dynamic(app.sources, app.deployment_descriptor)
        confirmed = missed = san_fired = 0
        for plant in app.planted:
            if plant.kind == "san":
                if summary.confirms(plant.rule, plant.sink_method):
                    san_fired += 1
            elif plant.is_true_positive:
                if summary.confirms(plant.rule, plant.sink_method):
                    confirmed += 1
                else:
                    missed += 1
        rows.append((name, confirmed, missed, san_fired,
                     len(summary.aborted)))
    return rows


def test_dynamic_ground_truth_validation(benchmark, suite_apps, capsys):
    rows = benchmark.pedantic(_validate, args=(suite_apps,), rounds=1,
                              iterations=1)
    with capsys.disabled():
        print()
        print("=" * 64)
        print("Dynamic validation of planted ground truth "
              "(concrete interpreter)")
        print("=" * 64)
        print(f"{'app':<10}{'TP confirmed':>14}{'unrealized':>12}"
              f"{'san fired':>11}{'aborted':>9}")
        for name, confirmed, missed, san_fired, aborted in rows:
            print(f"{name:<10}{confirmed:>14}{missed:>12}"
                  f"{san_fired:>11}{aborted:>9}")

    for name, confirmed, missed, san_fired, aborted in rows:
        # Sanitized plants must never fire dynamically.
        assert san_fired == 0, name
        # The sequential schedule realizes the overwhelming majority of
        # planted true positives (a few depend on catch paths or
        # cross-request order).
        assert confirmed >= max(1, (confirmed + missed) * 3 // 4), name

"""Figure 4 — classification of reported issues into true and false
positives on the nine key benchmarks (A, B, BlueBlog, Friki, GestCV, I,
S, SBM, Webgoat), plus the accuracy-score claims of §7.2.

Reproduced shapes:

* accuracy ordering CS > hybrid-unbounded > CI (paper: 0.54 / 0.35 /
  0.22; our clean synthetic apps sit higher in absolute terms but keep
  the ordering);
* hybrid-unbounded and CI agree on true positives everywhere (both
  sound);
* CS has false negatives on exactly BlueBlog (2), I (1), SBM (2) — the
  multithreading unsoundness;
* the prioritized budget loses true positives only on Webgoat, where
  the fully-optimized configuration recovers a large share of them;
* the fully-optimized configuration introduces exactly one new false
  negative (the deep-nested flow on BlueBlog) while cutting false
  positives well below the unbounded count.
"""

from repro.bench import FIGURE4_APPS, aggregate, format_figure4, run_suite


def _figure4_results(suite_apps):
    apps = {name: suite_apps[name] for name in FIGURE4_APPS}
    return run_suite(apps)


def test_figure4_tp_fp_breakdown(benchmark, suite_apps, capsys):
    results = benchmark.pedantic(_figure4_results, args=(suite_apps,),
                                 rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 124)
        print("Figure 4: True/False Positive Breakdown"
              " (9 key benchmarks)")
        print("=" * 124)
        print(format_figure4(results))

    def score(app, config):
        return results.cell(app, config).score

    def accuracy(config, apps=FIGURE4_APPS):
        return aggregate([score(a, config) for a in apps])["accuracy"]

    # -- soundness: hybrid and CI agree on TPs (paper §7.2) ------------
    for app in FIGURE4_APPS:
        assert score(app, "hybrid-unbounded").tp == score(app, "ci").tp
        assert score(app, "hybrid-unbounded").fn == 0
        assert score(app, "ci").fn == 0

    # -- CS false negatives: BlueBlog 2, I 1, SBM 2 --------------------
    assert score("BlueBlog", "cs").fn == 2
    assert score("I", "cs").fn == 1
    assert score("SBM", "cs").fn == 2

    # -- accuracy ordering: CS > hybrid > CI ---------------------------
    cs_apps = [a for a in FIGURE4_APPS
               if not results.cell(a, "cs").failed]
    acc_cs = accuracy("cs", cs_apps)
    acc_hybrid = accuracy("hybrid-unbounded")
    acc_ci = accuracy("ci")
    assert acc_cs > acc_hybrid > acc_ci
    with capsys.disabled():
        print(f"\naccuracy scores: cs={acc_cs:.2f} (on its "
              f"{len(cs_apps)} completed apps), "
              f"hybrid-unbounded={acc_hybrid:.2f}, ci={acc_ci:.2f}")
        print("paper's scores:  cs=0.54, hybrid=0.35, ci=0.22 "
              "(same ordering)")

    # -- prioritized budget: TP loss only on Webgoat -------------------
    for app in FIGURE4_APPS:
        fn = score(app, "hybrid-prioritized").fn
        if app == "Webgoat":
            assert fn > 0
        else:
            assert fn == 0, app

    # -- fully optimized: recovers Webgoat TPs, one new FN (BlueBlog) --
    assert score("Webgoat", "hybrid-optimized").tp > \
        score("Webgoat", "hybrid-prioritized").tp
    assert score("BlueBlog", "hybrid-optimized").fn == 1
    for app in FIGURE4_APPS:
        if app in ("Webgoat", "BlueBlog"):
            continue
        assert score(app, "hybrid-optimized").fn == 0, app

    # -- fully optimized cuts false positives --------------------------
    fp_unbounded = sum(score(a, "hybrid-unbounded").fp
                       for a in FIGURE4_APPS)
    fp_optimized = sum(score(a, "hybrid-optimized").fp
                       for a in FIGURE4_APPS)
    assert fp_optimized < fp_unbounded
    with capsys.disabled():
        print(f"false positives over the 9 benchmarks: "
              f"unbounded={fp_unbounded}, optimized={fp_optimized} "
              f"(paper: 556 -> 74 at its scale)")

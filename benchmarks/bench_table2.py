"""Table 2 — statistics on the applications used in the experiments.

The paper reports files / lines / classes / methods for 22 benchmarks,
application vs total (with supporting libraries).  Our suite mirrors the
relative sizes at ~1:100 scale; this bench regenerates the table from
the generated applications (class, method, and IR-instruction counts).
"""

from repro.bench import compute_stats, format_table2, suite_specs


def test_table2_application_statistics(benchmark, suite_apps, capsys):
    def build():
        return [compute_stats(suite_apps[name])
                for name in sorted(suite_apps)]

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 72)
        print("Table 2: Statistics on the Applications (scaled ~1:100)")
        print("=" * 72)
        print(format_table2(stats))

    by_name = {s.name: s for s in stats}
    assert len(stats) == 22
    # Relative-size shape from the paper's Table 2: GridSphere and ST are
    # the largest applications; I and BlueBlog the smallest.
    assert by_name["GridSphere"].app_methods == max(
        s.app_methods for s in stats)
    assert by_name["I"].app_methods <= min(
        by_name[n].app_methods for n in ("GridSphere", "ST", "MVNForum"))
    # Every app links the model library: total > app everywhere.
    for s in stats:
        assert s.total_methods > s.app_methods
        assert s.total_classes > s.app_classes

"""Parallel taint-sweep scaling benchmark: jobs × corpus scale.

Sweeps the persistent-worker-pool sweep (``repro.parallel``) over
generator corpora scaled 10–100× (``scaling_corpus``), at jobs ∈
{1, 2, 4, 8}, and records a per-phase breakdown of where the wall
clock went: snapshot serialization, pool startup (worker spawn +
snapshot deserialization), shard compute, and the deterministic merge.

The headline guarantee is byte-identity, not speed: every (jobs,
scale) cell's flows must match the serial reference exactly, and the
run aborts if they do not.  Speedup is reported honestly against the
host: the artifact records the core count, and the ``--check`` gate
only enforces the 2× bar at jobs=4 when the host actually has >= 4
cores — on a single-core box parallelism cannot pay by physics, and
the gate degrades to identity-plus-bookkeeping assertions with a
warning instead of a vacuous failure (or a dishonest pass).

Entry point (script only):

    PYTHONPATH=src python benchmarks/parallel_scaling.py
        [--scales 10 30] [--jobs 1 2 4 8] [--repeats N]
        [--quick] [--check] [--out BENCH_solver.json]

Results merge into ``BENCH_solver.json`` under the
``parallel_scaling`` key, preserving the solver rows already there.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script mode
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.generator import scaling_corpus
from repro.bench.harness import write_bench_json
from repro.bounds import Budget
from repro.modeling import default_natives, prepare
from repro.obs import Observability
from repro.pointer import ContextPolicy, PointerAnalysis
from repro.pointer.heapgraph import HeapGraph
from repro.sdg.hsdg import DirectEdges
from repro.sdg.noheap import NoHeapSDG
from repro.taint import TaintEngine, default_rules

SCALES = [10, 30]
JOBS = [1, 2, 4, 8]
REPEATS = 3
TARGET_SPEEDUP = 2.0            # at jobs=4, enforced when cores allow
MIN_CORES_FOR_BAR = 4


def host_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_pieces(scale: int):
    """Corpus -> solved pointer analysis -> SDG, shared across jobs."""
    app = scaling_corpus(scale)
    prepared = prepare(app.sources)
    analysis = PointerAnalysis(prepared.program, ContextPolicy(),
                               natives=default_natives())
    analysis.solve()
    sdg = NoHeapSDG(prepared.program, analysis.call_graph)
    return app, sdg, DirectEdges(sdg, analysis), HeapGraph(analysis)


def sweep(pieces, jobs: int, repeats: int,
          lease=None) -> Dict[str, object]:
    """Best-of-``repeats`` engine sweep; returns the timing cell.

    Observability is re-armed per repeat so the phase gauges belong to
    the best run's repeat, not an average across warm and cold pools.

    ``lease`` (a :class:`repro.parallel.PoolLease`, jobs > 1 only)
    makes every repeat after the first — and every later app on the
    same lease — reuse the live worker pool instead of respawning it;
    the cell then records the *amortized* startup (snapshot build +
    reload rendezvous) and a ``pool_reused`` flag.
    """
    _, sdg, direct, heap = pieces
    best: Optional[float] = None
    cell: Dict[str, object] = {}
    flows: List = []
    for _ in range(repeats):
        obs = Observability()
        engine = TaintEngine(sdg, direct, heap, default_rules(),
                             Budget(), jobs=jobs, obs=obs,
                             pool_lease=lease)
        t0 = time.perf_counter()
        result = engine.run()
        wall = time.perf_counter() - t0
        if best is not None and wall >= best:
            continue
        best = wall
        flows = result.flows
        metrics = obs.metrics
        shard_timer = metrics.timer_summary("taint.pool.shard_seconds")
        cell = {
            "jobs": jobs,
            "wall_s": round(wall, 4),
            "flows": len(result.flows),
            "shards": metrics.gauge_value("taint.pool.shards") or 0,
            "snapshot_bytes":
                metrics.gauge_value("taint.pool.snapshot_bytes") or 0,
            "snapshot_build_s": round(
                metrics.gauge_value(
                    "taint.pool.snapshot_build_seconds") or 0.0, 4),
            "startup_s": round(
                metrics.gauge_value(
                    "taint.pool.startup_seconds") or 0.0, 4),
            "shard_compute_s": round(
                shard_timer["total"] if shard_timer else 0.0, 4),
            "merge_s": round(
                metrics.gauge_value(
                    "taint.pool.merge_seconds") or 0.0, 4),
            "worker_inits":
                metrics.counter_value("taint.pool.worker_inits") or 0,
        }
        if lease is not None:
            cell["pool_reused"] = bool(
                metrics.gauge_value("taint.pool.reused"))
    cell["_flows"] = flows
    return cell


def run_scale(scale: int, jobs_list: List[int], repeats: int,
              leases: Optional[Dict] = None) -> Dict[str, object]:
    pieces = build_pieces(scale)
    app = pieces[0]
    row: Dict[str, object] = {
        "scale": scale,
        "source_lines": sum(len(s.splitlines()) for s in app.sources),
        "rules": len(list(default_rules())),
        "cells": [],
    }
    reference: Optional[List] = None
    serial_wall: Optional[float] = None
    for jobs in jobs_list:
        lease = None
        if leases is not None and jobs > 1:
            from repro.parallel import PoolLease
            lease = leases.setdefault(jobs, PoolLease(jobs))
        cell = sweep(pieces, jobs, repeats, lease)
        keys = [f.sort_key() for f in cell.pop("_flows")]
        if reference is None:
            reference = keys
        elif keys != reference:
            raise AssertionError(
                f"scale {scale} jobs={jobs}: parallel sweep diverged "
                f"from the serial reference")
        cell["reports_identical"] = True
        if jobs == 1:
            serial_wall = cell["wall_s"]
        if serial_wall:
            cell["speedup_vs_serial"] = round(
                serial_wall / cell["wall_s"], 2)
        row["cells"].append(cell)
    return row


def run_bench(scales: List[int], jobs_list: List[int], repeats: int,
              quick: bool) -> Dict[str, object]:
    cores = host_cores()
    # One PoolLease per jobs count, shared across every scale (app):
    # only the first (scale, jobs) cell pays worker startup; the rest
    # reload the live pool.  Closed before the payload is returned.
    leases: Dict[int, object] = {}
    try:
        rows = [run_scale(scale, jobs_list, repeats, leases)
                for scale in scales]
    finally:
        for lease in leases.values():
            lease.close()
    return {
        "cores": cores,
        "quick": quick,
        "repeats": repeats,
        "target_speedup": TARGET_SPEEDUP,
        "pool_reuse": {str(jobs): {"builds": lease.builds,
                                   "reloads": lease.reloads}
                       for jobs, lease in sorted(leases.items())},
        "rows": rows,
    }


def format_summary(payload: Dict) -> str:
    lines = [f"host cores: {payload['cores']}",
             f"{'scale':>6}{'jobs':>6}{'wall(s)':>9}{'startup':>9}"
             f"{'compute':>9}{'merge':>7}{'shards':>8}{'snap(KB)':>10}"
             f"{'speedup':>9}"]
    for row in payload["rows"]:
        for cell in row["cells"]:
            speedup = cell.get("speedup_vs_serial")
            lines.append(
                f"{row['scale']:>6}{cell['jobs']:>6}"
                f"{cell['wall_s']:>9.3f}{cell['startup_s']:>9.3f}"
                f"{cell['shard_compute_s']:>9.3f}{cell['merge_s']:>7.3f}"
                f"{cell['shards']:>8}"
                f"{cell['snapshot_bytes'] / 1024:>10.1f}"
                f"{'' if speedup is None else f'{speedup:.2f}x':>9}")
    return "\n".join(lines)


def check(payload: Dict) -> int:
    """The gate: identity always; the speedup bar only where it can
    physically be met."""
    cores = payload["cores"]
    failures = []
    for row in payload["rows"]:
        for cell in row["cells"]:
            if not cell["reports_identical"]:
                failures.append(f"scale {row['scale']} jobs="
                                f"{cell['jobs']}: reports diverged")
            if cell["jobs"] > 1 and cell["shards"]:
                if cell["worker_inits"] > min(cell["jobs"],
                                              cell["shards"]):
                    failures.append(
                        f"scale {row['scale']} jobs={cell['jobs']}: "
                        f"{cell['worker_inits']} worker inits for "
                        f"{cell['jobs']} workers — pool not persistent")
    if cores >= MIN_CORES_FOR_BAR:
        for row in payload["rows"]:
            for cell in row["cells"]:
                if cell["jobs"] != 4:
                    continue
                speedup = cell.get("speedup_vs_serial", 0.0)
                if speedup < TARGET_SPEEDUP:
                    failures.append(
                        f"scale {row['scale']} jobs=4: speedup "
                        f"{speedup:.2f}x < {TARGET_SPEEDUP:.1f}x "
                        f"on a {cores}-core host")
    else:
        print(f"WARNING: host has {cores} core(s) < "
              f"{MIN_CORES_FOR_BAR}; the {TARGET_SPEEDUP:.0f}x bar "
              f"cannot be met by physics — checking byte-identity and "
              f"pool persistence only")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: reports byte-identical across every jobs/scale cell"
          + (f"; >= {TARGET_SPEEDUP:.0f}x at jobs=4"
             if cores >= MIN_CORES_FOR_BAR else ""))
    return 0


def merge_artifact(path: str, payload: Dict) -> None:
    """Fold the scaling rows into the solver artifact, keeping the
    solver suites already recorded there."""
    existing: Dict = {}
    target = Path(path)
    if target.exists():
        try:
            existing = json.loads(target.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
    existing["parallel_scaling"] = payload
    write_bench_json(path, existing)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Scaling sweep for the parallel taint engine.")
    parser.add_argument("--scales", type=int, nargs="+", default=SCALES,
                        help=f"corpus scale factors (default {SCALES})")
    parser.add_argument("--jobs", type=int, nargs="+", default=JOBS,
                        help=f"jobs counts to sweep (default {JOBS})")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help=f"best-of-N timing (default {REPEATS})")
    parser.add_argument("--quick", action="store_true",
                        help="one small scale, jobs {1,4}, 1 repeat "
                             "(CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail on divergence, broken pool "
                             f"persistence, or (on >= "
                             f"{MIN_CORES_FOR_BAR}-core hosts) "
                             f"< {TARGET_SPEEDUP:.0f}x at jobs=4")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_solver.json"),
                        help="artifact to merge rows into")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if any(s < 1 for s in args.scales) or any(j < 1 for j in args.jobs):
        parser.error("--scales and --jobs must be >= 1")
    scales, jobs_list, repeats = args.scales, args.jobs, args.repeats
    if args.quick:
        scales, jobs_list, repeats = [10], [1, 4], 1

    payload = run_bench(scales, jobs_list, repeats, args.quick)
    print(format_summary(payload))
    merge_artifact(args.out, payload)
    print(f"\nmerged parallel_scaling into {args.out}")

    if args.check:
        return check(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
